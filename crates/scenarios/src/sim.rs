//! The simulated-clock execution model of the serving layer: a
//! deterministic discrete-event simulation — FIFO bounded queue, `W`
//! workers, the byte-accounted LRU cache and request coalescing — over
//! *modeled* service times (the profiled pipeline's own end-to-end
//! milliseconds plus a modeled build cost on cache misses).
//!
//! Everything here is pure `f64` arithmetic over a fixed iteration order:
//! the same request stream always yields the same per-request latencies,
//! the same hit/miss counters and the same eviction sequence, regardless
//! of host, core count or wall time — the property that makes
//! `gsuite-cli loadgen --clock sim` a *reproducible* benchmark rather
//! than a measurement of the load generator's machine.
//!
//! # Fault injection and resilience
//!
//! The simulation optionally executes under a seeded
//! [`FaultPlan`] and a
//! [`ResilienceConfig`]: per-attempt
//! slowdowns, transient failures, worker crashes, eviction storms and
//! degraded-interconnect inflation of the Exchange share, against
//! deadlines (with cooperative cancellation that reclaims the worker at
//! the deadline), bounded retries with seeded jittered backoff, a
//! per-config circuit breaker and graceful degradation (O0 compile
//! fallback, stale-but-valid serves past the soft TTL). Fault draws are
//! keyed on `(seed, request index, attempt)` only, so a faulted run is
//! exactly as replayable as a healthy one. With no plan and an inert
//! config, every code path below is numerically identical to the
//! fault-free model.

//! # Telemetry
//!
//! [`simulate_open_traced`] / [`simulate_closed_traced`] run the *same*
//! simulation while emitting a structured span stream on the sim clock
//! ([`gsuite_telemetry::Trace`], [`ClockDomain::Sim`]): one `request`
//! root per request with `queue` / `cache_lookup` / `build`
//! (`compile.{lower,optimize,decorate,schedule}`) / `service`
//! (`kernel`, `exchange`) children plus the resilience events `retry`,
//! `backoff`, `degrade` and `cancelled`. The traced variants return the
//! identical [`SimOutcome`] as their plain counterparts — tracing is
//! observation, never perturbation — and the span stream is as
//! deterministic as the simulation itself.
//!
//! Compile-phase spans inside a modeled `build` use the documented cost
//! split [`COMPILE_PHASE_SPLIT`]; the degraded O0 fallback path drops
//! the `compile.optimize` span, which by construction makes its build
//! span sum to exactly the `0.5 · build_ms` the simulation charges. A
//! template-served build ([`SimCosts::template`]) renders
//! `compile.{instantiate,schedule}` children instead ([`TEMPLATE_PHASE_SPLIT`]),
//! summing to the `TEMPLATE_BUILD_SHARE · build_ms` it was charged.

use crate::cache::{ByteLru, LruStats};
use crate::resilience::{CircuitBreaker, FaultDraw, FaultPlan, ResilienceConfig};
use gsuite_telemetry::{Attr, ClockDomain, SpanId, SpanSink, Trace};

/// How the serving layer satisfied a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Graph + pipeline came from the LRU cache.
    Hit,
    /// Graph + pipeline were built for this request (and cached).
    Miss,
    /// The request attached to an identical in-flight execution and
    /// shared its profile run.
    Coalesced,
}

impl CacheDisposition {
    /// Wire-format name (`hit`, `miss`, `coalesced`).
    pub fn name(self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Coalesced => "coalesced",
        }
    }
}

impl std::fmt::Display for CacheDisposition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The modeled execution costs of one distinct request configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimCosts {
    /// Modeled inference milliseconds (the profile's end-to-end time).
    pub service_ms: f64,
    /// Modeled graph-load + pipeline-build milliseconds paid on a cache
    /// miss.
    pub build_ms: f64,
    /// The interconnect-attributable share of
    /// [`SimCosts::service_ms`] (Exchange transfers on sharded runs;
    /// zero for single-device configs). A degraded-link fault with
    /// factor `f` inflates the attempt by `exchange_ms · (f − 1)`.
    pub exchange_ms: f64,
    /// Cache accounting bytes of the built entry.
    pub bytes: u64,
    /// Plan-template group of this configuration: configurations sharing
    /// a compile shape (same plan modulo the profiling axis) carry the
    /// same group id. After the group's first charged full build, later
    /// misses and refreshes pay only [`TEMPLATE_BUILD_SHARE`] of
    /// `build_ms` — the modeled instantiate + schedule fast path. `None`
    /// (the default everywhere but the load generator) disables the
    /// model and reproduces the historical costs exactly.
    pub template: Option<usize>,
    /// Cross-request batch-merge model of this configuration.
    /// Configurations sharing a [`SimBatch::group`] may be merged by
    /// [`simulate_open_batched`] into one batched Plan execution whose
    /// inference time is `max(fixed_ms) + Σ marginal_ms` over the
    /// members. `None` (the default everywhere but the batched load
    /// generator) excludes the configuration from merging: it always
    /// dispatches alone, under the full fault/resilience machinery, and
    /// reproduces the historical costs exactly.
    pub batch: Option<SimBatch>,
    /// `Some(msg)` when the configuration cannot build (the request
    /// completes as an error after paying the build cost).
    pub error: Option<String>,
}

/// The two-point cross-request batching cost model of one configuration
/// — see [`SimCosts::batch`]. The invariant `fixed_ms + marginal_ms ==
/// service_ms` makes a merged batch of one member cost exactly its solo
/// service time.
#[derive(Debug, Clone, PartialEq)]
pub struct SimBatch {
    /// Merge-class id: only configurations with equal `group` may share
    /// a batched Plan (the sim-side mirror of
    /// `plan::batchmerge::merge_class`).
    pub group: usize,
    /// The batch-invariant share of [`SimCosts::service_ms`] (op
    /// dispatch, framework wrapper overhead): a merged execution pays
    /// it once, as the max over its members.
    pub fixed_ms: f64,
    /// The per-member share of [`SimCosts::service_ms`] (the member's
    /// own rows of the block-diagonal batch): every merged member pays
    /// its own.
    pub marginal_ms: f64,
}

/// The modeled graph-load + pipeline-build cost charged on a cache miss in
/// sim-clock mode: a flat dispatch term plus ~2 ms per accounted MiB.
pub fn build_cost_ms(bytes: u64) -> f64 {
    0.2 + bytes as f64 / (512.0 * 1024.0)
}

/// Queue/worker/cache parameters of the simulated service, plus the
/// optional fault plan and resilience policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimParams {
    /// Simulated worker count.
    pub workers: usize,
    /// Bounded queue depth; arrivals beyond it are shed (open loop only).
    pub queue_cap: usize,
    /// LRU capacity in bytes.
    pub cache_bytes: u64,
    /// Seeded fault injection; `None` runs fault-free.
    pub fault: Option<FaultPlan>,
    /// Deadline/retry/breaker/degradation policy (inert by default).
    pub resilience: ResilienceConfig,
}

impl SimParams {
    /// Fault-free parameters with an inert resilience policy — the
    /// historical simulation model.
    pub fn new(workers: usize, queue_cap: usize, cache_bytes: u64) -> Self {
        SimParams {
            workers,
            queue_cap,
            cache_bytes,
            fault: None,
            resilience: ResilienceConfig::default(),
        }
    }
}

/// The cross-request batch-forming policy of [`simulate_open_batched`]:
/// how many compatible queued requests may merge into one batched Plan,
/// how long the head of a forming batch waits for company, and how many
/// batches may be forming at once before batch-opening arrivals are
/// shed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Maximum members per merged execution; a batch reaching it
    /// dispatches immediately. `1` disables merging entirely — every
    /// request dispatches alone at its own arrival time, reproducing
    /// the unbatched model byte-for-byte.
    pub max_batch: usize,
    /// Milliseconds the *first* member of a forming batch may wait
    /// before the batch dispatches regardless of fill.
    pub max_queue_delay_ms: f64,
    /// Admission bound on concurrently forming batches: an arrival that
    /// would need to *open* a new batch while this many are already
    /// forming is shed ([`SimDisposition::BatchShed`]). Arrivals that
    /// join an existing batch — and unmergeable singleton dispatches —
    /// are never subject to it. `0` means unbounded.
    pub max_backlog: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch: 8,
            max_queue_delay_ms: 2.0,
            max_backlog: 0,
        }
    }
}

/// What happened to one simulated request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimDisposition {
    /// Completed; how the cache satisfied it.
    Done(CacheDisposition),
    /// Completed as an error response (unbuildable configuration, or an
    /// injected transient failure that exhausted its retries).
    Error,
    /// Shed at arrival: queue full.
    Rejected,
    /// The per-request deadline expired (queued past it, or cancelled
    /// cooperatively mid-attempt).
    TimedOut,
    /// Shed at arrival: the config's circuit breaker was open.
    CircuitOpen,
    /// The executing worker crashed and retries (if any) were exhausted.
    Crashed,
    /// Shed at arrival by the batch former's admission control: the
    /// backlog of open (forming) batches exceeded
    /// [`BatchPolicy::max_backlog`].
    BatchShed,
}

/// One simulated request's timing record.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRecord {
    /// Index into the distinct-configuration table.
    pub key: usize,
    /// Simulated submission time (ms since sim start).
    pub submit_ms: f64,
    /// Milliseconds waited for a worker.
    pub queue_ms: f64,
    /// Milliseconds of (possibly shared) build + inference work.
    pub service_ms: f64,
    /// Submission-to-completion milliseconds (`0` for rejected requests).
    pub latency_ms: f64,
    /// Outcome.
    pub disposition: SimDisposition,
}

/// The full outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// One record per request, in stream order.
    pub records: Vec<SimRecord>,
    /// Cache counters after the run.
    pub cache: LruStats,
    /// Requests that shared an in-flight execution.
    pub coalesced: u64,
    /// Requests shed by the bounded queue.
    pub rejected: u64,
    /// Requests whose deadline expired.
    pub timeouts: u64,
    /// Requests shed by an open circuit breaker.
    pub circuit_open: u64,
    /// Injected worker crashes observed (each crashed attempt counts,
    /// retried or not).
    pub crashed: u64,
    /// Retry attempts performed.
    pub retries: u64,
    /// Circuit-breaker trips (closed/half-open → open transitions).
    pub breaker_trips: u64,
    /// Requests served degraded (O0 compile fallback).
    pub degraded: u64,
    /// Stale-but-valid cache entries served past the soft TTL under
    /// deadline pressure.
    pub stale_serves: u64,
    /// Charged builds served at the instantiate share because their
    /// plan-template group was already installed ([`SimCosts::template`]).
    /// Zero when no cost record carries a template group.
    pub template_hits: u64,
    /// Charged builds of template-carrying configurations that paid the
    /// full compile cost (and installed their group).
    pub template_misses: u64,
    /// Batches dispatched by [`simulate_open_batched`] (singleton
    /// dispatches included). Zero on the unbatched entry points.
    pub batches: u64,
    /// Requests that resolved through a dispatched batch.
    pub batched_requests: u64,
    /// Requests shed by the batch former's admission control
    /// ([`BatchPolicy::max_backlog`]).
    pub batch_shed: u64,
    /// `batch_size_hist[i]` = dispatched batches of size `i + 1`.
    /// Empty on the unbatched entry points.
    pub batch_size_hist: Vec<u64>,
    /// Last completion time (ms since sim start).
    pub makespan_ms: f64,
}

/// The modeled share of a full build each compile phase accounts for in
/// traced simulations: `lower` / `optimize` / `decorate` / `schedule`.
/// The split is a documented modeling constant (the sim clock has no
/// per-phase measurement); it is chosen so the non-`optimize` phases sum
/// to exactly `0.5` — the degraded O0 fallback's modeled build charge.
pub const COMPILE_PHASE_SPLIT: [(&str, f64); 4] = [
    ("compile.lower", 0.25),
    ("compile.optimize", 0.50),
    ("compile.decorate", 0.10),
    ("compile.schedule", 0.15),
];

/// The modeled share of a full build an instantiate-from-template build
/// charges ([`SimCosts::template`]): lower/optimize/decorate are skipped,
/// leaving the [`TEMPLATE_PHASE_SPLIT`] phases, which sum to exactly this
/// constant.
pub const TEMPLATE_BUILD_SHARE: f64 = 0.25;

/// The modeled share of each *additional* miss member's solo build cost
/// a merged batch build pays: merging K requests lowers and optimizes
/// one block-diagonal Plan, so the merged build is modeled as
/// `max(build_ms) + share · Σ build_ms(others)` rather than the full
/// sum. Once a merged shape (the ordered miss-member key list) has been
/// charged, later identical shapes pay [`TEMPLATE_BUILD_SHARE`] of that
/// — the batched template fast path.
pub const BATCH_MEMBER_BUILD_SHARE: f64 = 0.25;

/// Compile-phase spans of a traced instantiate-from-template build:
/// rebinding the cached plan (`compile.instantiate`) plus the address
/// assignment (`compile.schedule`, same share as in
/// [`COMPILE_PHASE_SPLIT`]). Shares are of the *full* build cost and sum
/// to [`TEMPLATE_BUILD_SHARE`].
pub const TEMPLATE_PHASE_SPLIT: [(&str, f64); 2] =
    [("compile.instantiate", 0.10), ("compile.schedule", 0.15)];

/// One kernel (or exchange) child of a traced `service` span: the
/// modeled per-launch breakdown of a distinct request configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpan {
    /// Table II taxonomy name (`sgemm`, `SpMM`, `exchange`, …).
    pub name: String,
    /// Modeled milliseconds of this launch.
    pub time_ms: f64,
    /// Exchange attribution: `(peer device, transferred bytes)`.
    /// `None` for compute kernels.
    pub exchange: Option<(u64, u64)>,
}

/// Per-configuration launch breakdown used by the traced simulations to
/// render `kernel`/`exchange` children under each `service` span.
/// Configurations without one (or an empty list) trace the service
/// envelope only.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanProfile {
    /// Launches in execution order.
    pub kernels: Vec<KernelSpan>,
}

/// The span recorder of a traced simulation: the sink plus the per-key
/// launch breakdowns. Lives outside [`ServiceSim`]'s numeric state; the
/// simulation never reads it back.
struct SimTracer<'a> {
    sink: SpanSink,
    profiles: &'a [SpanProfile],
}

/// An execution in flight: submitted (at or before the current clock,
/// since requests are fed in nondecreasing submission order), possibly
/// not yet dispatched to a worker.
struct InFlight {
    key: usize,
    start_ms: f64,
    finish_ms: f64,
    /// The worker executing it — coalesced requests' spans render on the
    /// leader's track.
    worker: usize,
    /// Whether this execution completes as an error response (coalesced
    /// requests share the outcome, error or not — exactly like the live
    /// server's shared `Completion`).
    error: bool,
}

/// How one attempt's cache interaction resolved.
#[derive(PartialEq, Clone, Copy)]
enum AttemptKind {
    Hit,
    /// Hit past the soft TTL, served stale under deadline pressure.
    HitStale,
    /// Hit past the soft TTL, rebuilt in line (pays the build cost).
    Refresh,
    Miss,
    /// Miss built with the O0 fallback under deadline pressure (cheaper,
    /// not cached).
    MissDegraded,
}

/// The simulation core: workers, queue accounting, cache, the coalescing
/// window, and the fault/resilience machinery. Requests are fed one at a
/// time in nondecreasing submission order.
struct ServiceSim<'a> {
    costs: &'a [SimCosts],
    params: SimParams,
    /// Per-worker next-free time.
    worker_free: Vec<f64>,
    /// Executions whose finish time is still ahead of the clock.
    in_flight: Vec<InFlight>,
    /// Cached entries map to their build-completion time (the soft-TTL
    /// clock).
    cache: ByteLru<usize, f64>,
    /// Plan-template groups whose full build has been charged: later
    /// builds of the same group pay only the instantiate share.
    installed_templates: std::collections::HashSet<usize>,
    /// Merged batch shapes (ordered miss-member key lists) whose full
    /// merged build has been charged: later identical shapes pay
    /// [`TEMPLATE_BUILD_SHARE`] of the merged build.
    installed_batch_shapes: std::collections::HashSet<Vec<usize>>,
    /// Per-config breakers, present only when the policy enables them.
    breakers: Option<Vec<CircuitBreaker>>,
    coalesced: u64,
    rejected: u64,
    timeouts: u64,
    circuit_open: u64,
    crashed: u64,
    retries: u64,
    degraded: u64,
    stale_serves: u64,
    template_hits: u64,
    template_misses: u64,
    makespan_ms: f64,
    /// Span recorder, present only in the `_traced` entry points. The
    /// numeric model never branches on it.
    tracer: Option<SimTracer<'a>>,
}

impl<'a> ServiceSim<'a> {
    fn new(costs: &'a [SimCosts], params: SimParams) -> Self {
        let breakers = params
            .resilience
            .breaker
            .map(|cfg| (0..costs.len()).map(|_| CircuitBreaker::new(cfg)).collect());
        ServiceSim {
            costs,
            worker_free: vec![0.0; params.workers.max(1)],
            in_flight: Vec::new(),
            cache: ByteLru::new(params.cache_bytes),
            installed_templates: std::collections::HashSet::new(),
            installed_batch_shapes: std::collections::HashSet::new(),
            breakers,
            coalesced: 0,
            rejected: 0,
            timeouts: 0,
            circuit_open: 0,
            crashed: 0,
            retries: 0,
            degraded: 0,
            stale_serves: 0,
            template_hits: 0,
            template_misses: 0,
            makespan_ms: 0.0,
            tracer: None,
            params,
        }
    }

    fn with_tracer(mut self, profiles: &'a [SpanProfile]) -> Self {
        self.tracer = Some(SimTracer {
            sink: SpanSink::new(),
            profiles,
        });
        self
    }

    /// The virtual admission lane (Chrome `tid`) for requests shed
    /// before any worker was elected.
    fn admission_track(&self) -> u32 {
        self.params.workers.max(1) as u32
    }

    /// Traces a request shed at admission (breaker open / queue full):
    /// a zero-duration `request` root on the admission lane.
    fn trace_shed(&mut self, key: usize, t: f64, disposition: &str) {
        let track = self.admission_track();
        if let Some(tr) = self.tracer.as_mut() {
            tr.sink.record(
                "request",
                None,
                track,
                t,
                0.0,
                vec![
                    Attr::u64("key", key as u64),
                    Attr::str("disposition", disposition),
                ],
            );
        }
    }

    /// Traces one attempt's spans: the `cache_lookup` event, the modeled
    /// `build` (with compile-phase children; the degraded path drops
    /// `compile.optimize`, a template-instantiated build renders
    /// [`TEMPLATE_PHASE_SPLIT`] instead) and the `service` envelope with
    /// its `kernel`/`exchange` children scaled to fill it.
    #[allow(clippy::too_many_arguments)]
    fn trace_attempt(
        &mut self,
        root: SpanId,
        track: u32,
        key: usize,
        attempt_start: f64,
        attempt_ms: f64,
        kind: AttemptKind,
        template_hit: bool,
        cost: &SimCosts,
        draw: &FaultDraw,
    ) {
        let Some(tr) = self.tracer.as_mut() else {
            return;
        };
        let result = match kind {
            AttemptKind::Hit => "hit",
            AttemptKind::HitStale => "stale-hit",
            AttemptKind::Refresh => "refresh",
            AttemptKind::Miss => "miss",
            AttemptKind::MissDegraded => "miss-degraded",
        };
        tr.sink.record(
            "cache_lookup",
            Some(root),
            track,
            attempt_start,
            0.0,
            vec![Attr::str("result", result)],
        );
        // The modeled build share of this attempt (zero on plain hits).
        let build_share = match kind {
            AttemptKind::Miss | AttemptKind::Refresh if template_hit => {
                TEMPLATE_BUILD_SHARE * cost.build_ms
            }
            AttemptKind::Miss | AttemptKind::Refresh => cost.build_ms,
            AttemptKind::MissDegraded => 0.5 * cost.build_ms,
            AttemptKind::Hit | AttemptKind::HitStale => 0.0,
        } * draw.slow_factor;
        let mut cursor = attempt_start;
        if build_share > 0.0 {
            let build = tr.sink.record(
                "build",
                Some(root),
                track,
                cursor,
                build_share,
                if kind == AttemptKind::MissDegraded {
                    vec![Attr::str("opt", "O0-fallback")]
                } else if template_hit {
                    vec![Attr::str("compile", "instantiate")]
                } else {
                    vec![]
                },
            );
            // Full builds charge build_ms across all four phases; the
            // degraded O0 fallback skips `compile.optimize` (the
            // remaining splits sum to the exact 0.5 · build_ms charged);
            // a template-instantiated build renders instantiate +
            // schedule, summing to the exact 0.25 · build_ms charged.
            let full_build = cost.build_ms * draw.slow_factor;
            let phases: &[(&str, f64)] = if template_hit {
                &TEMPLATE_PHASE_SPLIT
            } else {
                &COMPILE_PHASE_SPLIT
            };
            let mut phase_start = cursor;
            for &(phase, share) in phases {
                if kind == AttemptKind::MissDegraded && phase == "compile.optimize" {
                    continue;
                }
                let dur = full_build * share;
                tr.sink
                    .record(phase, Some(build), track, phase_start, dur, vec![]);
                phase_start += dur;
            }
            cursor += build_share;
        }
        let service_share = attempt_ms - build_share;
        let mut service_attrs = vec![Attr::f64("modeled_ms", cost.service_ms)];
        if draw.link_factor > 1.0 {
            service_attrs.push(Attr::f64("link_factor", draw.link_factor));
        }
        if draw.slow_factor > 1.0 {
            service_attrs.push(Attr::f64("slow_factor", draw.slow_factor));
        }
        let service = tr.sink.record(
            "service",
            Some(root),
            track,
            cursor,
            service_share,
            service_attrs,
        );
        // Kernel/exchange children laid out sequentially, scaled to fill
        // the service envelope (slow/link inflation spreads evenly; the
        // per-launch modeled_ms attribute keeps the unscaled figure).
        if let Some(profile) = tr.profiles.get(key) {
            let modeled_total: f64 = profile.kernels.iter().map(|k| k.time_ms).sum();
            if modeled_total > 0.0 {
                let scale = service_share / modeled_total;
                let mut k_start = cursor;
                for k in &profile.kernels {
                    let dur = k.time_ms * scale;
                    let mut attrs = vec![
                        Attr::str("kernel", k.name.clone()),
                        Attr::f64("modeled_ms", k.time_ms),
                    ];
                    let name = if let Some((peer, bytes)) = k.exchange {
                        attrs.push(Attr::u64("peer", peer));
                        attrs.push(Attr::u64("bytes", bytes));
                        "exchange"
                    } else {
                        "kernel"
                    };
                    tr.sink
                        .record(name, Some(service), track, k_start, dur, attrs);
                    k_start += dur;
                }
            }
        }
    }

    /// Records a `request` root under a reserved id.
    #[allow(clippy::too_many_arguments)]
    fn trace_root(
        &mut self,
        root: SpanId,
        track: u32,
        key: usize,
        t: f64,
        latency_ms: f64,
        disposition: &str,
        retries: u32,
    ) {
        if let Some(tr) = self.tracer.as_mut() {
            let mut attrs = vec![
                Attr::u64("key", key as u64),
                Attr::u64("worker", track as u64),
                Attr::str("disposition", disposition),
            ];
            if retries > 0 {
                attrs.push(Attr::u64("retries", retries as u64));
            }
            tr.sink
                .record_with_id(root, "request", None, track, t, latency_ms, attrs);
        }
    }

    fn record_breaker(&mut self, key: usize, now_ms: f64, success: bool) {
        if let Some(breakers) = &mut self.breakers {
            breakers[key].record(now_ms, success);
        }
    }

    fn finish(&mut self, record: SimRecord) -> SimRecord {
        self.makespan_ms = self.makespan_ms.max(record.submit_ms + record.latency_ms);
        record
    }

    /// Feeds request number `req` (the fault-draw key) for config `key`
    /// submitted at `t`; returns its record. `reject` enables the
    /// bounded-queue shed path (open loop).
    fn offer(&mut self, req: u64, key: usize, t: f64, reject: bool) -> SimRecord {
        // Retire executions that finished before `t`.
        self.in_flight.retain(|e| e.finish_ms > t);

        let shed = |key, t, disposition| SimRecord {
            key,
            submit_ms: t,
            queue_ms: 0.0,
            service_ms: 0.0,
            latency_ms: 0.0,
            disposition,
        };

        // Known-bad-config shed: the breaker is consulted before queueing
        // or coalescing, exactly like the live server's submit path.
        if let Some(breakers) = &mut self.breakers {
            if !breakers[key].admit(t) {
                self.circuit_open += 1;
                self.trace_shed(key, t, "circuit-open");
                return shed(key, t, SimDisposition::CircuitOpen);
            }
        }

        // Coalescing window: an identical configuration is in flight.
        if let Some(e) = self.in_flight.iter().find(|e| e.key == key) {
            self.coalesced += 1;
            let finish = e.finish_ms;
            let start = e.start_ms;
            let track = e.worker as u32;
            let disposition = if e.error {
                SimDisposition::Error
            } else {
                SimDisposition::Done(CacheDisposition::Coalesced)
            };
            if let Some(tr) = self.tracer.as_mut() {
                // The follower's tree: its own wait plus the shared
                // window of the leader's execution, on the leader's track.
                let root = tr.sink.reserve();
                tr.sink
                    .record("queue", Some(root), track, t, (start - t).max(0.0), vec![]);
                tr.sink.record(
                    "service",
                    Some(root),
                    track,
                    start.max(t),
                    finish - start.max(t),
                    vec![Attr::str("shared", "leader")],
                );
                tr.sink.record_with_id(
                    root,
                    "request",
                    None,
                    track,
                    t,
                    finish - t,
                    vec![
                        Attr::u64("key", key as u64),
                        Attr::u64("worker", track as u64),
                        Attr::str("disposition", if e.error { "error" } else { "coalesced" }),
                    ],
                );
            }
            return self.finish(SimRecord {
                key,
                submit_ms: t,
                queue_ms: (start - t).max(0.0),
                service_ms: finish - start.max(t),
                latency_ms: finish - t,
                disposition,
            });
        }

        // Backpressure: executions not yet started at `t` are the queue.
        if reject {
            let waiting = self.in_flight.iter().filter(|e| e.start_ms > t).count();
            if waiting >= self.params.queue_cap.max(1) {
                self.rejected += 1;
                self.trace_shed(key, t, "rejected");
                return shed(key, t, SimDisposition::Rejected);
            }
        }

        // Dispatch to the earliest-free worker (FIFO; ties to the lowest
        // index keep the schedule deterministic).
        let w = min_index(&self.worker_free);
        let start = t.max(self.worker_free[w]);
        let deadline = self.params.resilience.deadline_ms.map(|d| t + d);
        let root = self.tracer.as_mut().map(|tr| tr.sink.reserve());

        // Cooperative cancellation while queued: a request whose worker
        // only frees past the deadline is abandoned before any work runs
        // (the worker is untouched).
        if let Some(dl) = deadline {
            if start >= dl {
                self.timeouts += 1;
                if let (Some(root), Some(tr)) = (root, self.tracer.as_mut()) {
                    tr.sink
                        .record("queue", Some(root), w as u32, t, dl - t, vec![]);
                    tr.sink.record(
                        "cancelled",
                        Some(root),
                        w as u32,
                        dl,
                        0.0,
                        vec![Attr::str("reason", "queued-past-deadline")],
                    );
                }
                if let Some(root) = root {
                    self.trace_root(root, w as u32, key, t, dl - t, "timeout", 0);
                }
                return self.finish(SimRecord {
                    key,
                    submit_ms: t,
                    queue_ms: dl - t,
                    service_ms: 0.0,
                    latency_ms: dl - t,
                    disposition: SimDisposition::TimedOut,
                });
            }
        }
        if let (Some(root), Some(tr)) = (root, self.tracer.as_mut()) {
            tr.sink
                .record("queue", Some(root), w as u32, t, start - t, vec![]);
        }

        let cost = &self.costs[key];
        let mut clock = start;
        let mut attempt: u32 = 0;
        let mut retries_used: u32 = 0;
        let mut any_crash = false;
        loop {
            let draw = match &self.params.fault {
                Some(plan) => plan.draw(req, attempt),
                None => FaultDraw::healthy(),
            };
            if draw.evict > 0 {
                self.cache.evict_lru(draw.evict);
            }

            // Unbuildable configurations pay the build (discovery) cost
            // and complete as errors; nothing enters the cache and
            // retries cannot help.
            if cost.error.is_some() {
                self.cache.get(&key);
                let service = cost.build_ms * draw.slow_factor;
                if let Some(dl) = deadline {
                    if clock + service > dl {
                        return self.cancel_at(key, t, start, w, dl, root);
                    }
                }
                if let (Some(root), Some(tr)) = (root, self.tracer.as_mut()) {
                    tr.sink.record(
                        "cache_lookup",
                        Some(root),
                        w as u32,
                        clock,
                        0.0,
                        vec![Attr::str("result", "miss")],
                    );
                    // The discovery build that surfaces the error; no
                    // compile-phase children — lowering rejected it.
                    tr.sink.record(
                        "build",
                        Some(root),
                        w as u32,
                        clock,
                        service,
                        vec![Attr::str("outcome", "error")],
                    );
                }
                clock += service;
                self.worker_free[w] = clock;
                self.in_flight.push(InFlight {
                    key,
                    start_ms: start,
                    finish_ms: clock,
                    worker: w,
                    error: true,
                });
                self.record_breaker(key, clock, false);
                if let Some(root) = root {
                    self.trace_root(root, w as u32, key, t, clock - t, "error", retries_used);
                }
                return self.finish(SimRecord {
                    key,
                    submit_ms: t,
                    queue_ms: start - t,
                    service_ms: clock - start,
                    latency_ms: clock - t,
                    disposition: SimDisposition::Error,
                });
            }

            // The attempt's cache interaction and base cost. Degraded
            // interconnect inflates the Exchange share of the service
            // time. A build whose template group is installed pays only
            // the instantiate share of the build cost.
            let service_base = cost.service_ms + cost.exchange_ms * (draw.link_factor - 1.0);
            let template_hit = cost
                .template
                .is_some_and(|g| self.installed_templates.contains(&g));
            let build_charge = if template_hit {
                TEMPLATE_BUILD_SHARE * cost.build_ms
            } else {
                cost.build_ms
            };
            let (mut attempt_ms, mut kind) = match self.cache.get(&key).copied() {
                Some(built_at) => match self.params.resilience.stale_ttl_ms {
                    Some(ttl) if clock - built_at > ttl => {
                        (build_charge + service_base, AttemptKind::Refresh)
                    }
                    _ => (service_base, AttemptKind::Hit),
                },
                None => (build_charge + service_base, AttemptKind::Miss),
            };
            attempt_ms *= draw.slow_factor;

            // Graceful degradation under deadline pressure: serve the
            // stale entry instead of refreshing, or fall back to the O0
            // compile (skip optimize passes — modeled at half the build
            // cost; degraded builds are not cached).
            let mut degrade_mode = None;
            if let Some(dl) = deadline {
                if clock + attempt_ms > dl && self.params.resilience.degrade {
                    match kind {
                        AttemptKind::Refresh => {
                            attempt_ms = service_base * draw.slow_factor;
                            kind = AttemptKind::HitStale;
                            degrade_mode = Some("stale-serve");
                        }
                        // The O0 fallback only helps when it is cheaper
                        // than the pending build: an instantiate-served
                        // miss (0.25 · build) already undercuts it.
                        AttemptKind::Miss if !template_hit => {
                            attempt_ms = (0.5 * cost.build_ms + service_base) * draw.slow_factor;
                            kind = AttemptKind::MissDegraded;
                            degrade_mode = Some("o0-fallback");
                        }
                        _ => {}
                    }
                }
                if clock + attempt_ms > dl {
                    return self.cancel_at(key, t, start, w, dl, root);
                }
            }
            if let Some(root) = root {
                if let (Some(mode), Some(tr)) = (degrade_mode, self.tracer.as_mut()) {
                    tr.sink.record(
                        "degrade",
                        Some(root),
                        w as u32,
                        clock,
                        0.0,
                        vec![Attr::str("mode", mode)],
                    );
                }
                self.trace_attempt(
                    root,
                    w as u32,
                    key,
                    clock,
                    attempt_ms,
                    kind,
                    template_hit,
                    cost,
                    &draw,
                );
            }
            clock += attempt_ms;
            match kind {
                AttemptKind::Miss | AttemptKind::Refresh => {
                    self.cache.insert(key, clock, cost.bytes);
                    // The charged build installs the shape's template
                    // (mirroring the live server, the insert survives a
                    // later transient loss of the attempt's result).
                    if let Some(g) = cost.template {
                        if template_hit {
                            self.template_hits += 1;
                        } else {
                            self.template_misses += 1;
                        }
                        self.installed_templates.insert(g);
                    }
                }
                AttemptKind::MissDegraded => self.degraded += 1,
                AttemptKind::HitStale => self.stale_serves += 1,
                AttemptKind::Hit => {}
            }

            // Injected failures: the attempt's work is lost; retry with
            // seeded jittered backoff while the policy allows.
            if draw.crash || draw.transient {
                if draw.crash {
                    self.crashed += 1;
                    any_crash = true;
                }
                let cause = if draw.crash { "crash" } else { "transient" };
                if retries_used < self.params.resilience.retry.max_retries {
                    retries_used += 1;
                    self.retries += 1;
                    let jitter = self
                        .params
                        .fault
                        .as_ref()
                        .map_or(0.0, |plan| plan.jitter(req, attempt));
                    let backoff = self
                        .params
                        .resilience
                        .retry
                        .backoff_ms(retries_used, jitter);
                    if let (Some(root), Some(tr)) = (root, self.tracer.as_mut()) {
                        tr.sink.record(
                            "retry",
                            Some(root),
                            w as u32,
                            clock,
                            0.0,
                            vec![
                                Attr::u64("attempt", (attempt + 1) as u64),
                                Attr::str("cause", cause),
                            ],
                        );
                        tr.sink
                            .record("backoff", Some(root), w as u32, clock, backoff, vec![]);
                    }
                    clock += backoff;
                    attempt += 1;
                    continue;
                }
                self.worker_free[w] = clock;
                self.in_flight.push(InFlight {
                    key,
                    start_ms: start,
                    finish_ms: clock,
                    worker: w,
                    error: true,
                });
                self.record_breaker(key, clock, false);
                let disposition = if any_crash {
                    SimDisposition::Crashed
                } else {
                    SimDisposition::Error
                };
                if let Some(root) = root {
                    let name = if any_crash { "crashed" } else { "error" };
                    self.trace_root(root, w as u32, key, t, clock - t, name, retries_used);
                }
                return self.finish(SimRecord {
                    key,
                    submit_ms: t,
                    queue_ms: start - t,
                    service_ms: clock - start,
                    latency_ms: clock - t,
                    disposition,
                });
            }

            // Success.
            self.worker_free[w] = clock;
            self.in_flight.push(InFlight {
                key,
                start_ms: start,
                finish_ms: clock,
                worker: w,
                error: false,
            });
            self.record_breaker(key, clock, true);
            let cached = match kind {
                AttemptKind::Hit | AttemptKind::HitStale | AttemptKind::Refresh => {
                    CacheDisposition::Hit
                }
                AttemptKind::Miss | AttemptKind::MissDegraded => CacheDisposition::Miss,
            };
            if let Some(root) = root {
                self.trace_root(
                    root,
                    w as u32,
                    key,
                    t,
                    clock - t,
                    cached.name(),
                    retries_used,
                );
            }
            return self.finish(SimRecord {
                key,
                submit_ms: t,
                queue_ms: start - t,
                service_ms: clock - start,
                latency_ms: clock - t,
                disposition: SimDisposition::Done(cached),
            });
        }
    }

    /// Cooperative mid-attempt cancellation: the worker is reclaimed at
    /// the deadline (the next plan-phase checkpoint observes the expired
    /// budget) and the config's breaker records a failure.
    fn cancel_at(
        &mut self,
        key: usize,
        t: f64,
        start: f64,
        w: usize,
        dl: f64,
        root: Option<SpanId>,
    ) -> SimRecord {
        self.worker_free[w] = dl;
        self.timeouts += 1;
        self.record_breaker(key, dl, false);
        if let Some(root) = root {
            if let Some(tr) = self.tracer.as_mut() {
                tr.sink.record(
                    "cancelled",
                    Some(root),
                    w as u32,
                    dl,
                    0.0,
                    vec![Attr::str("reason", "deadline")],
                );
            }
            self.trace_root(root, w as u32, key, t, dl - t, "timeout", 0);
        }
        self.finish(SimRecord {
            key,
            submit_ms: t,
            queue_ms: start - t,
            service_ms: dl - start,
            latency_ms: dl - t,
            disposition: SimDisposition::TimedOut,
        })
    }

    fn into_outcome(self, records: Vec<SimRecord>) -> SimOutcome {
        SimOutcome {
            records,
            cache: self.cache.stats(),
            coalesced: self.coalesced,
            rejected: self.rejected,
            timeouts: self.timeouts,
            circuit_open: self.circuit_open,
            crashed: self.crashed,
            retries: self.retries,
            breaker_trips: self
                .breakers
                .as_ref()
                .map_or(0, |bs| bs.iter().map(CircuitBreaker::trips).sum()),
            degraded: self.degraded,
            stale_serves: self.stale_serves,
            template_hits: self.template_hits,
            template_misses: self.template_misses,
            batches: 0,
            batched_requests: 0,
            batch_shed: 0,
            batch_size_hist: Vec::new(),
            makespan_ms: self.makespan_ms,
        }
    }

    /// Executes a formed batch of `k ≥ 2` members as **one** merged
    /// Plan: one worker election, one amortized merged build over the
    /// leader members ([`BATCH_MEMBER_BUILD_SHARE`]; the instantiate
    /// share once the merged shape is installed), `max(fixed) +
    /// Σ marginal` inference, then per-member scatter of records.
    ///
    /// The merged path models the *healthy* fast path exactly like the
    /// wall server's: fault draws, deadlines, retries and circuit
    /// breakers apply only to singleton dispatches (and to admission,
    /// in the former), and the pipeline LRU is **skipped entirely** —
    /// a merged batch compiles its own combined plan whether or not
    /// member pipelines are cached, so cache counters never move here.
    /// Duplicate keys inside one batch coalesce onto their first
    /// occurrence, and every leader key is left in flight so later solo
    /// arrivals can coalesce onto the merged execution.
    fn offer_merged(&mut self, batch: &FormedBatch) -> Vec<SimRecord> {
        let t = batch.dispatch_ms;
        self.in_flight.retain(|e| e.finish_ms > t);

        // Backpressure sheds the batch as a unit: its members were
        // admitted by the former, but the execution queue is full.
        let waiting = self.in_flight.iter().filter(|e| e.start_ms > t).count();
        if waiting >= self.params.queue_cap.max(1) {
            let mut records = Vec::with_capacity(batch.members.len());
            for m in &batch.members {
                self.rejected += 1;
                self.trace_shed(m.key, m.at_ms, "rejected");
                records.push(SimRecord {
                    key: m.key,
                    submit_ms: m.at_ms,
                    queue_ms: 0.0,
                    service_ms: 0.0,
                    latency_ms: 0.0,
                    disposition: SimDisposition::Rejected,
                });
            }
            return records;
        }

        let w = min_index(&self.worker_free);
        let start = t.max(self.worker_free[w]);
        // First occurrence of each key leads; duplicates coalesce onto
        // their leader exactly like the in-flight window.
        let mut leaders: Vec<usize> = Vec::with_capacity(batch.members.len());
        let is_leader: Vec<bool> = batch
            .members
            .iter()
            .map(|m| {
                if leaders.contains(&m.key) {
                    false
                } else {
                    leaders.push(m.key);
                    true
                }
            })
            .collect();

        // One merged execution: the leaders share one amortized build
        // and one fixed-plus-marginals inference envelope — the LRU is
        // never consulted, exactly like the wall server's merged path.
        let mut fixed_max: f64 = 0.0;
        let mut marginal_sum = 0.0;
        let mut build_max: f64 = 0.0;
        let mut build_sum = 0.0;
        for &key in &leaders {
            let cost = &self.costs[key];
            let b = cost
                .batch
                .as_ref()
                .expect("merged members carry a batch cost model");
            fixed_max = fixed_max.max(b.fixed_ms);
            marginal_sum += b.marginal_ms;
            build_max = build_max.max(cost.build_ms);
            build_sum += cost.build_ms;
        }
        let mut batch_build = build_max + BATCH_MEMBER_BUILD_SHARE * (build_sum - build_max);
        if self.installed_batch_shapes.contains(&leaders) {
            batch_build *= TEMPLATE_BUILD_SHARE;
            self.template_hits += 1;
        } else {
            self.template_misses += 1;
            self.installed_batch_shapes.insert(leaders.clone());
        }
        let duration = batch_build + fixed_max + marginal_sum;
        let finish = start + duration;

        for (m, &lead) in batch.members.iter().zip(&is_leader) {
            if lead {
                self.in_flight.push(InFlight {
                    key: m.key,
                    start_ms: start,
                    finish_ms: finish,
                    worker: w,
                    error: false,
                });
            }
        }
        self.worker_free[w] = finish;

        let track = w as u32;
        let size = batch.members.len() as u64;
        if let Some(tr) = self.tracer.as_mut() {
            tr.sink.record(
                "batch.form",
                None,
                track,
                batch.head_ms,
                t - batch.head_ms,
                vec![Attr::u64("size", size)],
            );
        }
        let mut records = Vec::with_capacity(batch.members.len());
        for (m, &lead) in batch.members.iter().zip(&is_leader) {
            let disposition = if lead {
                SimDisposition::Done(CacheDisposition::Miss)
            } else {
                self.coalesced += 1;
                SimDisposition::Done(CacheDisposition::Coalesced)
            };
            if let Some(tr) = self.tracer.as_mut() {
                let name = match disposition {
                    SimDisposition::Done(d) => d.name(),
                    _ => unreachable!("merged members always complete"),
                };
                let root = tr.sink.reserve();
                tr.sink
                    .record("queue", Some(root), track, m.at_ms, start - m.at_ms, vec![]);
                tr.sink.record(
                    "service",
                    Some(root),
                    track,
                    start,
                    duration,
                    vec![Attr::str("shared", "batch")],
                );
                tr.sink.record_with_id(
                    root,
                    "request",
                    None,
                    track,
                    m.at_ms,
                    finish - m.at_ms,
                    vec![
                        Attr::u64("key", m.key as u64),
                        Attr::u64("worker", track as u64),
                        Attr::str("disposition", name),
                    ],
                );
            }
            records.push(self.finish(SimRecord {
                key: m.key,
                submit_ms: m.at_ms,
                queue_ms: start - m.at_ms,
                service_ms: duration,
                latency_ms: finish - m.at_ms,
                disposition,
            }));
        }
        if let Some(tr) = self.tracer.as_mut() {
            tr.sink.record(
                "batch.scatter",
                None,
                track,
                finish,
                0.0,
                vec![Attr::u64("size", size)],
            );
        }
        records
    }
}

/// Simulates an **open-loop** run: request `i` (a distinct-configuration
/// index in `keys`) is submitted at `arrivals[i]` milliseconds regardless
/// of completions; a full queue sheds arrivals.
///
/// # Panics
///
/// Panics if `keys` and `arrivals` differ in length or arrivals are not
/// nondecreasing.
pub fn simulate_open(
    keys: &[usize],
    arrivals: &[f64],
    costs: &[SimCosts],
    params: SimParams,
) -> SimOutcome {
    let (outcome, _) = run_open(keys, arrivals, costs, params, None);
    outcome
}

/// [`simulate_open`] with span recording: returns the identical
/// [`SimOutcome`] plus the sim-clock span stream (one `request` tree per
/// request). `profiles` supplies the per-key `kernel`/`exchange`
/// breakdown of each `service` span; pass `&[]` to trace envelopes only.
pub fn simulate_open_traced(
    keys: &[usize],
    arrivals: &[f64],
    costs: &[SimCosts],
    params: SimParams,
    profiles: &[SpanProfile],
) -> (SimOutcome, Trace) {
    let (outcome, trace) = run_open(keys, arrivals, costs, params, Some(profiles));
    (outcome, trace.expect("tracer was installed"))
}

fn run_open(
    keys: &[usize],
    arrivals: &[f64],
    costs: &[SimCosts],
    params: SimParams,
    profiles: Option<&[SpanProfile]>,
) -> (SimOutcome, Option<Trace>) {
    assert_eq!(keys.len(), arrivals.len(), "one arrival per request");
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be nondecreasing"
    );
    let mut sim = ServiceSim::new(costs, params);
    if let Some(profiles) = profiles {
        sim = sim.with_tracer(profiles);
    }
    let records = keys
        .iter()
        .zip(arrivals)
        .enumerate()
        .map(|(i, (&key, &t))| sim.offer(i as u64, key, t, true))
        .collect();
    let trace = sim.tracer.take().map(|tr| tr.sink.finish(ClockDomain::Sim));
    (sim.into_outcome(records), trace)
}

/// Simulates a **closed-loop** run: `clients` clients share the request
/// stream; each submits its next request the moment its previous one
/// completes (zero think time). The queue never exceeds the client count,
/// so nothing is shed.
pub fn simulate_closed(
    keys: &[usize],
    clients: usize,
    costs: &[SimCosts],
    params: SimParams,
) -> SimOutcome {
    let (outcome, _) = run_closed(keys, clients, costs, params, None);
    outcome
}

/// [`simulate_closed`] with span recording — see
/// [`simulate_open_traced`] for the contract.
pub fn simulate_closed_traced(
    keys: &[usize],
    clients: usize,
    costs: &[SimCosts],
    params: SimParams,
    profiles: &[SpanProfile],
) -> (SimOutcome, Trace) {
    let (outcome, trace) = run_closed(keys, clients, costs, params, Some(profiles));
    (outcome, trace.expect("tracer was installed"))
}

fn run_closed(
    keys: &[usize],
    clients: usize,
    costs: &[SimCosts],
    params: SimParams,
    profiles: Option<&[SpanProfile]>,
) -> (SimOutcome, Option<Trace>) {
    let clients = clients.max(1);
    let mut sim = ServiceSim::new(costs, params);
    if let Some(profiles) = profiles {
        sim = sim.with_tracer(profiles);
    }
    let mut available: Vec<f64> = vec![0.0; clients];
    let mut records = Vec::with_capacity(keys.len());
    for (i, &key) in keys.iter().enumerate() {
        let c = min_index(&available);
        let record = sim.offer(i as u64, key, available[c], false);
        available[c] += record.latency_ms.max(0.0);
        records.push(record);
    }
    let trace = sim.tracer.take().map(|tr| tr.sink.finish(ClockDomain::Sim));
    (sim.into_outcome(records), trace)
}

/// One request offered to the [`BatchFormer`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchArrival {
    /// Original request-stream index (also the fault-draw key).
    pub index: u64,
    /// Distinct-configuration index.
    pub key: usize,
    /// Merge-class id ([`SimBatch::group`]). `None` never merges: the
    /// arrival dispatches as an immediate singleton, bypassing both
    /// forming and the backlog bound.
    pub group: Option<usize>,
    /// Arrival time (ms since sim start).
    pub at_ms: f64,
}

/// A batch the [`BatchFormer`] decided to dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct FormedBatch {
    /// When the batch leaves the former: the arrival that filled it, or
    /// its head's arrival plus [`BatchPolicy::max_queue_delay_ms`].
    pub dispatch_ms: f64,
    /// The first member's arrival time.
    pub head_ms: f64,
    /// Members in arrival order (completion scatter preserves this
    /// FIFO-within-batch order).
    pub members: Vec<BatchArrival>,
}

/// What the [`BatchFormer`] emits while consuming an arrival stream.
#[derive(Debug, Clone, PartialEq)]
pub enum FormerEvent {
    /// A batch dispatched: by fill, by the head's delay budget
    /// expiring, or by [`BatchFormer::flush`].
    Dispatch(FormedBatch),
    /// An arrival shed by the backlog bound
    /// ([`BatchPolicy::max_backlog`]).
    Shed(BatchArrival),
}

/// The pure, streaming cross-request batch former: arrivals go in (in
/// nondecreasing time order), dispatch and shed decisions come out.
/// It holds only the currently forming batches — `O(max_backlog)` or
/// `O(live merge classes)` state, never the arrival history — so a
/// million-request stream forms batches in bounded memory.
///
/// Guarantees, for any arrival sequence and policy (property-tested
/// against a brute-force reference in `tests/batchserve.rs`):
///
/// - no batch exceeds [`BatchPolicy::max_batch`] members;
/// - no batch dispatches later than `head arrival +
///   max_queue_delay_ms` (no request starves in the former);
/// - members dispatch in arrival order within their batch, and the
///   emitted event stream is nondecreasing in time — an expiry that
///   ties an arrival dispatches *first*, without the arrival;
/// - every arrival resolves in exactly one event (a dispatch
///   membership, or a shed).
///
/// Formation is key-agnostic: duplicate keys consume member slots like
/// any other arrival (the simulation coalesces them at execution).
pub struct BatchFormer {
    policy: BatchPolicy,
    /// Forming batches in head-arrival order; heads — and therefore
    /// expiry deadlines — are nondecreasing.
    open: Vec<OpenBatch>,
}

struct OpenBatch {
    head_ms: f64,
    group: usize,
    members: Vec<BatchArrival>,
}

impl BatchFormer {
    /// An empty former under `policy`.
    pub fn new(policy: BatchPolicy) -> Self {
        BatchFormer {
            policy,
            open: Vec::new(),
        }
    }

    /// Number of currently forming batches (the admission-control
    /// backlog).
    pub fn backlog(&self) -> usize {
        self.open.len()
    }

    /// Feeds the next arrival (nondecreasing `at_ms`), emitting any
    /// batches whose delay budget expired first, then the arrival's own
    /// resolution if it has one now.
    pub fn offer(&mut self, arrival: BatchArrival, emit: &mut dyn FnMut(FormerEvent)) {
        let delay = self.policy.max_queue_delay_ms;
        // Expired batches form a prefix (heads are nondecreasing). A
        // tie dispatches without the arrival: the timer fired first.
        while self
            .open
            .first()
            .is_some_and(|b| b.head_ms + delay <= arrival.at_ms)
        {
            let b = self.open.remove(0);
            emit(FormerEvent::Dispatch(FormedBatch {
                dispatch_ms: b.head_ms + delay,
                head_ms: b.head_ms,
                members: b.members,
            }));
        }
        let singleton = |a: BatchArrival| {
            let t = a.at_ms;
            FormerEvent::Dispatch(FormedBatch {
                dispatch_ms: t,
                head_ms: t,
                members: vec![a],
            })
        };
        let Some(group) = arrival.group else {
            // Unmergeable configurations bypass forming entirely.
            emit(singleton(arrival));
            return;
        };
        // Join the oldest forming batch of the same class (all open
        // batches are non-full by construction).
        if let Some(i) = self.open.iter().position(|b| b.group == group) {
            self.open[i].members.push(arrival);
            if self.open[i].members.len() >= self.policy.max_batch {
                let b = self.open.remove(i);
                let filled_at = b.members.last().expect("non-empty batch").at_ms;
                emit(FormerEvent::Dispatch(FormedBatch {
                    dispatch_ms: filled_at,
                    head_ms: b.head_ms,
                    members: b.members,
                }));
            }
            return;
        }
        // Opening a new batch is what the backlog bound controls.
        if self.policy.max_backlog > 0 && self.open.len() >= self.policy.max_backlog {
            emit(FormerEvent::Shed(arrival));
            return;
        }
        if self.policy.max_batch <= 1 {
            emit(singleton(arrival));
            return;
        }
        self.open.push(OpenBatch {
            head_ms: arrival.at_ms,
            group,
            members: vec![arrival],
        });
    }

    /// Ends the stream: every still-forming batch dispatches at its
    /// head's delay deadline, in head order.
    pub fn flush(&mut self, emit: &mut dyn FnMut(FormerEvent)) {
        let delay = self.policy.max_queue_delay_ms;
        for b in self.open.drain(..) {
            emit(FormerEvent::Dispatch(FormedBatch {
                dispatch_ms: b.head_ms + delay,
                head_ms: b.head_ms,
                members: b.members,
            }));
        }
    }
}

/// Simulates an **open-loop** run with cross-request batching: the
/// arrival stream passes through a [`BatchFormer`] under `policy`.
/// Dispatched singletons execute exactly like [`simulate_open`]
/// requests — the full fault/resilience/template/cache machinery — at
/// their dispatch time, with the former wait folded into their queue
/// time. Merged batches (k ≥ 2) execute the modeled healthy fast path
/// ([`ServiceSim::offer_merged`]): one worker, one amortized merged
/// build, `max(fixed) + Σ marginal` inference, per-member scatter.
///
/// With `policy.max_batch == 1` the outcome is **byte-identical** to
/// [`simulate_open`] apart from the batch counters: every request
/// dispatches alone at its own arrival time.
pub fn simulate_open_batched(
    keys: &[usize],
    arrivals: &[f64],
    costs: &[SimCosts],
    params: SimParams,
    policy: BatchPolicy,
) -> SimOutcome {
    let (outcome, _) = run_open_batched(keys, arrivals, costs, params, policy, None);
    outcome
}

/// [`simulate_open_batched`] with span recording — the identical
/// [`SimOutcome`] plus the sim-clock span stream. Merged batches add a
/// `batch.form` span on the worker track (the forming window), one
/// `request` root per member sharing the batch `service` envelope, and
/// a zero-duration `batch.scatter` marker at completion.
pub fn simulate_open_batched_traced(
    keys: &[usize],
    arrivals: &[f64],
    costs: &[SimCosts],
    params: SimParams,
    policy: BatchPolicy,
    profiles: &[SpanProfile],
) -> (SimOutcome, Trace) {
    let (outcome, trace) = run_open_batched(keys, arrivals, costs, params, policy, Some(profiles));
    (outcome, trace.expect("tracer was installed"))
}

fn run_open_batched(
    keys: &[usize],
    arrivals: &[f64],
    costs: &[SimCosts],
    params: SimParams,
    policy: BatchPolicy,
    profiles: Option<&[SpanProfile]>,
) -> (SimOutcome, Option<Trace>) {
    assert_eq!(keys.len(), arrivals.len(), "one arrival per request");
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be nondecreasing"
    );
    let mut sim = ServiceSim::new(costs, params);
    if let Some(profiles) = profiles {
        sim = sim.with_tracer(profiles);
    }
    let mut former = BatchFormer::new(policy);
    let mut events: Vec<FormerEvent> = Vec::new();
    let mut slots: Vec<Option<SimRecord>> = vec![None; keys.len()];
    let mut batches: u64 = 0;
    let mut batched_requests: u64 = 0;
    let mut batch_shed: u64 = 0;
    let mut hist: Vec<u64> = Vec::new();

    fn handle(
        sim: &mut ServiceSim<'_>,
        slots: &mut [Option<SimRecord>],
        batches: &mut u64,
        batched_requests: &mut u64,
        batch_shed: &mut u64,
        hist: &mut Vec<u64>,
        ev: FormerEvent,
    ) {
        match ev {
            FormerEvent::Shed(a) => {
                *batch_shed += 1;
                sim.trace_shed(a.key, a.at_ms, "batch-shed");
                slots[a.index as usize] = Some(SimRecord {
                    key: a.key,
                    submit_ms: a.at_ms,
                    queue_ms: 0.0,
                    service_ms: 0.0,
                    latency_ms: 0.0,
                    disposition: SimDisposition::BatchShed,
                });
            }
            FormerEvent::Dispatch(b) => {
                *batches += 1;
                *batched_requests += b.members.len() as u64;
                let size = b.members.len();
                if hist.len() < size {
                    hist.resize(size, 0);
                }
                hist[size - 1] += 1;
                if size == 1 {
                    // The full solo machinery, dispatched at the
                    // former's release; time spent forming counts as
                    // queueing (a zero wait leaves the record — and
                    // the max_batch=1 differential — untouched).
                    let m = &b.members[0];
                    let mut r = sim.offer(m.index, m.key, b.dispatch_ms, true);
                    let wait = b.dispatch_ms - m.at_ms;
                    if wait > 0.0 {
                        r.submit_ms = m.at_ms;
                        r.queue_ms += wait;
                        r.latency_ms += wait;
                    }
                    slots[m.index as usize] = Some(r);
                } else {
                    let records = sim.offer_merged(&b);
                    for (m, r) in b.members.iter().zip(records) {
                        slots[m.index as usize] = Some(r);
                    }
                }
            }
        }
    }

    for (i, (&key, &t)) in keys.iter().zip(arrivals).enumerate() {
        let cost = &costs[key];
        let group = if cost.error.is_some() {
            // Unbuildable configurations must keep their solo error
            // path (and never waste a merged execution).
            None
        } else {
            cost.batch.as_ref().map(|b| b.group)
        };
        former.offer(
            BatchArrival {
                index: i as u64,
                key,
                group,
                at_ms: t,
            },
            &mut |e| events.push(e),
        );
        for ev in events.drain(..) {
            handle(
                &mut sim,
                &mut slots,
                &mut batches,
                &mut batched_requests,
                &mut batch_shed,
                &mut hist,
                ev,
            );
        }
    }
    former.flush(&mut |e| events.push(e));
    for ev in events.drain(..) {
        handle(
            &mut sim,
            &mut slots,
            &mut batches,
            &mut batched_requests,
            &mut batch_shed,
            &mut hist,
            ev,
        );
    }

    let trace = sim.tracer.take().map(|tr| tr.sink.finish(ClockDomain::Sim));
    let records = slots
        .into_iter()
        .map(|r| r.expect("every arrival resolves in exactly one event"))
        .collect();
    let mut outcome = sim.into_outcome(records);
    outcome.batches = batches;
    outcome.batched_requests = batched_requests;
    outcome.batch_shed = batch_shed;
    outcome.batch_size_hist = hist;
    (outcome, trace)
}

/// Index of the minimum element (first on ties) — worker/client election.
fn min_index(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resilience::{BreakerConfig, FaultSpec, RetryPolicy};

    fn costs(n: usize, service: f64, build: f64, bytes: u64) -> Vec<SimCosts> {
        (0..n)
            .map(|_| SimCosts {
                service_ms: service,
                build_ms: build,
                exchange_ms: 0.0,
                bytes,
                template: None,
                batch: None,
                error: None,
            })
            .collect()
    }

    fn params(workers: usize, queue: usize, cache: u64) -> SimParams {
        SimParams::new(workers, queue, cache)
    }

    #[test]
    fn single_worker_serializes_and_caches() {
        let costs = costs(1, 10.0, 5.0, 100);
        // Same key three times, back-to-back arrivals after completion.
        let out = simulate_open(&[0, 0, 0], &[0.0, 20.0, 40.0], &costs, params(1, 4, 1000));
        // First: miss (build + service = 15), later: hits (10 each).
        assert_eq!(out.records[0].latency_ms, 15.0);
        assert_eq!(out.records[1].latency_ms, 10.0);
        assert_eq!(out.records[2].latency_ms, 10.0);
        assert_eq!(out.cache.hits, 2);
        assert_eq!(out.cache.misses, 1);
        assert_eq!(out.coalesced, 0);
    }

    #[test]
    fn template_groups_pay_the_instantiate_share_after_first_build() {
        // Two distinct keys sharing one template group: the first miss
        // pays the full build, the second only the instantiate share.
        let mut costs = costs(2, 10.0, 8.0, 100);
        costs[0].template = Some(0);
        costs[1].template = Some(0);
        let out = simulate_open(&[0, 1], &[0.0, 20.0], &costs, params(1, 4, 1000));
        assert_eq!(out.records[0].latency_ms, 18.0, "full build + service");
        assert_eq!(
            out.records[1].latency_ms,
            10.0 + TEMPLATE_BUILD_SHARE * 8.0,
            "instantiate share + service"
        );
        assert_eq!((out.template_misses, out.template_hits), (1, 1));

        // `template: None` reproduces the historical costs exactly.
        let plain = costs_plain(&costs);
        let legacy = simulate_open(&[0, 1], &[0.0, 20.0], &plain, params(1, 4, 1000));
        assert_eq!(legacy.records[1].latency_ms, 18.0);
        assert_eq!((legacy.template_misses, legacy.template_hits), (0, 0));
    }

    fn costs_plain(costs: &[SimCosts]) -> Vec<SimCosts> {
        costs
            .iter()
            .map(|c| SimCosts {
                template: None,
                ..c.clone()
            })
            .collect()
    }

    #[test]
    fn overlapping_identical_requests_coalesce() {
        let costs = costs(1, 10.0, 5.0, 100);
        // Second arrives while the first is still executing.
        let out = simulate_open(&[0, 0], &[0.0, 3.0], &costs, params(2, 4, 1000));
        assert_eq!(out.coalesced, 1);
        assert_eq!(out.records[1].latency_ms, 12.0); // finishes at 15, arrived at 3
        assert_eq!(
            out.records[1].disposition,
            SimDisposition::Done(CacheDisposition::Coalesced)
        );
        // Only one real execution touched the cache.
        assert_eq!(out.cache.misses, 1);
        assert_eq!(out.cache.hits, 0);
    }

    #[test]
    fn bounded_queue_sheds_bursts() {
        let costs = costs(3, 100.0, 0.0, 1);
        // Three distinct configs at t=0 on one worker with queue depth 1:
        // first executes, second waits, third is shed.
        let out = simulate_open(&[0, 1, 2], &[0.0, 0.0, 0.0], &costs, params(1, 1, 1000));
        assert_eq!(out.rejected, 1);
        assert_eq!(out.records[2].disposition, SimDisposition::Rejected);
        assert_eq!(out.records[1].queue_ms, 100.0);
    }

    #[test]
    fn eviction_follows_lru_under_pressure() {
        // Cache fits two of three equally sized entries.
        let costs = costs(3, 1.0, 1.0, 100);
        let keys = [0, 1, 2, 0]; // 0 evicted by 2's insertion, so the last 0 misses again
        let arrivals = [0.0, 10.0, 20.0, 30.0];
        let out = simulate_open(&keys, &arrivals, &costs, params(1, 4, 200));
        assert_eq!(out.cache.misses, 4);
        assert_eq!(out.cache.evictions, 2);
        assert_eq!(out.cache.hits, 0);
    }

    #[test]
    fn closed_loop_keeps_clients_busy() {
        let costs = costs(2, 10.0, 0.0, 1);
        let keys = [0, 1, 0, 1, 0, 1];
        let out = simulate_closed(&keys, 2, &costs, params(2, 8, 1000));
        assert_eq!(out.rejected, 0);
        // Two clients, two workers, 10 ms each, 6 requests => 30 ms.
        assert_eq!(out.makespan_ms, 30.0);
        assert!(out.records.iter().all(|r| r.queue_ms == 0.0));
    }

    #[test]
    fn error_configs_complete_as_errors() {
        let mut c = costs(2, 10.0, 5.0, 100);
        c[1].error = Some("unsupported".to_string());
        let out = simulate_open(&[1, 1], &[0.0, 100.0], &c, params(1, 4, 1000));
        assert!(out
            .records
            .iter()
            .all(|r| r.disposition == SimDisposition::Error));
        // Errors never enter the cache: both pay the build cost.
        assert_eq!(out.records[0].latency_ms, 5.0);
        assert_eq!(out.records[1].latency_ms, 5.0);
        assert_eq!(out.cache.entries, 0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let costs = costs(4, 3.0, 1.5, 64);
        let keys: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let arrivals: Vec<f64> = (0..40).map(|i| i as f64 * 0.75).collect();
        let a = simulate_open(&keys, &arrivals, &costs, params(3, 8, 128));
        let b = simulate_open(&keys, &arrivals, &costs, params(3, 8, 128));
        assert_eq!(a, b);
        let c = simulate_closed(&keys, 5, &costs, params(3, 8, 128));
        let d = simulate_closed(&keys, 5, &costs, params(3, 8, 128));
        assert_eq!(c, d);
    }

    #[test]
    fn faulted_runs_replay_byte_identically() {
        let costs = costs(4, 3.0, 1.5, 64);
        let keys: Vec<usize> = (0..60).map(|i| i % 4).collect();
        let arrivals: Vec<f64> = (0..60).map(|i| i as f64 * 1.25).collect();
        let p = SimParams {
            fault: Some(FaultPlan::mixed(9, 0.3)),
            resilience: ResilienceConfig {
                deadline_ms: Some(40.0),
                retry: RetryPolicy::retries(2),
                breaker: Some(BreakerConfig::default()),
                degrade: true,
                stale_ttl_ms: Some(20.0),
            },
            ..params(2, 8, 256)
        };
        let a = simulate_open(&keys, &arrivals, &costs, p);
        let b = simulate_open(&keys, &arrivals, &costs, p);
        assert_eq!(a, b);
        // The fault mix actually fired something.
        assert!(a.retries + a.timeouts + a.crashed > 0);
    }

    #[test]
    fn transient_faults_retry_then_fail() {
        let costs = costs(1, 10.0, 0.0, 1);
        let always_transient = FaultPlan {
            seed: 1,
            spec: FaultSpec {
                transient_rate: 1.0,
                ..FaultSpec::none()
            },
        };
        let p = SimParams {
            fault: Some(always_transient),
            resilience: ResilienceConfig {
                retry: RetryPolicy {
                    max_retries: 2,
                    base_ms: 4.0,
                    cap_ms: 50.0,
                },
                ..ResilienceConfig::default()
            },
            ..params(1, 4, 100)
        };
        let out = simulate_open(&[0], &[0.0], &costs, p);
        assert_eq!(out.records[0].disposition, SimDisposition::Error);
        assert_eq!(out.retries, 2, "both retries spent");
        // 3 attempts x 10 ms plus two jittered backoffs in [2, 4) + [4, 8).
        assert!(out.records[0].latency_ms > 30.0);
        assert!(out.records[0].latency_ms < 42.0);
    }

    #[test]
    fn crashes_surface_as_crashed_and_are_retryable() {
        let costs = costs(1, 10.0, 0.0, 1);
        let always_crash = FaultPlan {
            seed: 5,
            spec: FaultSpec {
                crash_rate: 1.0,
                ..FaultSpec::none()
            },
        };
        let no_retry = SimParams {
            fault: Some(always_crash),
            ..params(1, 4, 100)
        };
        let out = simulate_open(&[0], &[0.0], &costs, no_retry);
        assert_eq!(out.records[0].disposition, SimDisposition::Crashed);
        assert_eq!(out.crashed, 1);
        let with_retry = SimParams {
            resilience: ResilienceConfig {
                retry: RetryPolicy::retries(3),
                ..ResilienceConfig::default()
            },
            ..no_retry
        };
        let out = simulate_open(&[0], &[0.0], &costs, with_retry);
        assert_eq!(out.crashed, 4, "initial attempt + 3 retries all crash");
        assert_eq!(out.records[0].disposition, SimDisposition::Crashed);
    }

    #[test]
    fn deadlines_cancel_cooperatively_and_free_the_worker() {
        let costs = costs(2, 100.0, 0.0, 1);
        let p = SimParams {
            resilience: ResilienceConfig {
                deadline_ms: Some(50.0),
                ..ResilienceConfig::default()
            },
            ..params(1, 4, 100)
        };
        let out = simulate_open(&[0, 1], &[0.0, 10.0], &costs, p);
        assert_eq!(out.records[0].disposition, SimDisposition::TimedOut);
        assert_eq!(out.records[0].latency_ms, 50.0);
        assert_eq!(out.timeouts, 2);
        // The worker was reclaimed at t=50, so the second request starts
        // there — and times out at its own deadline (10 + 50).
        assert_eq!(out.records[1].queue_ms, 40.0);
        assert_eq!(out.records[1].latency_ms, 50.0);
    }

    #[test]
    fn breaker_sheds_known_bad_configs() {
        let mut c = costs(1, 1.0, 1.0, 1);
        c[0].error = Some("always fails".to_string());
        let p = SimParams {
            resilience: ResilienceConfig {
                breaker: Some(BreakerConfig {
                    window: 4,
                    min_samples: 4,
                    fail_threshold: 0.5,
                    cooldown_ms: 1000.0,
                    half_open_probes: 1,
                }),
                ..ResilienceConfig::default()
            },
            ..params(1, 8, 100)
        };
        let keys = vec![0usize; 8];
        let arrivals: Vec<f64> = (0..8).map(|i| i as f64 * 10.0).collect();
        let out = simulate_open(&keys, &arrivals, &c, p);
        assert_eq!(out.breaker_trips, 1);
        assert_eq!(out.circuit_open, 4, "after 4 failures the rest are shed");
        assert!(out.records[7].disposition == SimDisposition::CircuitOpen);
    }

    #[test]
    fn degradation_falls_back_to_o0_when_the_build_misses_the_deadline() {
        // build 20 + service 10 = 30 > deadline 25, but the O0 fallback
        // (10 + 10 = 20) fits.
        let costs = costs(1, 10.0, 20.0, 5);
        let degrade = SimParams {
            resilience: ResilienceConfig {
                deadline_ms: Some(25.0),
                degrade: true,
                ..ResilienceConfig::default()
            },
            ..params(1, 4, 100)
        };
        let out = simulate_open(&[0, 0], &[0.0, 100.0], &costs, degrade);
        assert_eq!(
            out.records[0].disposition,
            SimDisposition::Done(CacheDisposition::Miss)
        );
        assert_eq!(out.records[0].latency_ms, 20.0);
        // Degraded builds are not cached: the second request degrades too.
        assert_eq!(out.cache.entries, 0);
        assert_eq!(out.degraded, 2);
        assert_eq!(out.timeouts, 0);

        // Refresh past the soft TTL happens in line when the budget
        // allows it.
        let warm = SimParams {
            resilience: ResilienceConfig {
                deadline_ms: Some(200.0),
                degrade: true,
                stale_ttl_ms: Some(50.0),
                ..ResilienceConfig::default()
            },
            ..params(1, 4, 100)
        };
        let out = simulate_open(&[0, 0], &[0.0, 100.0], &costs, warm);
        // Entry built at t=30; at t=100 it is 70 ms old (> 50 TTL) and the
        // refresh (30 ms) fits the 200 ms deadline: refreshed in line.
        assert_eq!(out.stale_serves, 0);
        assert_eq!(out.records[1].latency_ms, 30.0);
        assert_eq!(out.cache.hits, 1);
        assert_eq!(out.cache.insertions, 2, "the refresh re-inserts");
    }

    #[test]
    fn stale_entries_serve_under_pressure() {
        // Occupy the worker with a second config so the refresh budget
        // runs out while the stale serve still fits.
        let mut c = costs(1, 10.0, 20.0, 5);
        c.push(SimCosts {
            service_ms: 25.0,
            build_ms: 0.0,
            exchange_ms: 0.0,
            bytes: 1,
            template: None,
            batch: None,
            error: None,
        });
        let p = SimParams {
            resilience: ResilienceConfig {
                deadline_ms: Some(35.0),
                degrade: true,
                stale_ttl_ms: Some(50.0),
                ..ResilienceConfig::default()
            },
            ..params(1, 4, 100)
        };
        // t=0: build+serve config 0 (finish 30). t=90: config 1 occupies
        // the worker until 115. t=100: config 0 again — dispatches at
        // 115, budget left is 20 ms (deadline 135): the 30 ms refresh
        // does not fit, the 10 ms stale serve does.
        let out = simulate_open(&[0, 1, 0], &[0.0, 90.0, 100.0], &c, p);
        assert_eq!(out.stale_serves, 1);
        assert_eq!(
            out.records[2].disposition,
            SimDisposition::Done(CacheDisposition::Hit)
        );
        assert_eq!(out.records[2].latency_ms, 25.0); // 15 queued + 10 served
        assert_eq!(out.timeouts, 0);
    }

    #[test]
    fn degraded_links_inflate_the_exchange_share_only() {
        let mut c = costs(1, 10.0, 0.0, 1);
        c[0].exchange_ms = 2.0;
        let always_link = FaultPlan {
            seed: 2,
            spec: FaultSpec {
                link_rate: 1.0,
                link_factor: 4.0,
                ..FaultSpec::none()
            },
        };
        let p = SimParams {
            fault: Some(always_link),
            ..params(1, 4, 100)
        };
        let out = simulate_open(&[0], &[0.0], &c, p);
        // service 10 + exchange 2 x (4 - 1) = 16.
        assert_eq!(out.records[0].latency_ms, 16.0);
    }

    #[test]
    fn traced_runs_return_the_identical_outcome() {
        let costs = costs(4, 3.0, 1.5, 64);
        let keys: Vec<usize> = (0..60).map(|i| i % 4).collect();
        let arrivals: Vec<f64> = (0..60).map(|i| i as f64 * 1.25).collect();
        let p = SimParams {
            fault: Some(FaultPlan::mixed(9, 0.3)),
            resilience: ResilienceConfig {
                deadline_ms: Some(40.0),
                retry: RetryPolicy::retries(2),
                breaker: Some(BreakerConfig::default()),
                degrade: true,
                stale_ttl_ms: Some(20.0),
            },
            ..params(2, 8, 256)
        };
        let plain = simulate_open(&keys, &arrivals, &costs, p);
        let (traced, trace) = simulate_open_traced(&keys, &arrivals, &costs, p, &[]);
        assert_eq!(plain, traced, "tracing must never perturb the model");
        assert_eq!(trace.root_count(), keys.len(), "one request root each");
        let (closed_plain, closed_trace) =
            simulate_closed_traced(&keys, 5, &costs, params(3, 8, 128), &[]);
        assert_eq!(
            closed_plain,
            simulate_closed(&keys, 5, &costs, params(3, 8, 128))
        );
        assert_eq!(closed_trace.root_count(), keys.len());
    }

    #[test]
    fn traced_span_stream_is_byte_identical_across_runs() {
        let costs = costs(3, 2.0, 1.0, 32);
        let keys: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let arrivals: Vec<f64> = (0..30).map(|i| i as f64 * 0.5).collect();
        let profiles: Vec<SpanProfile> = (0..3)
            .map(|i| SpanProfile {
                kernels: vec![
                    KernelSpan {
                        name: "sgemm".to_string(),
                        time_ms: 1.25,
                        exchange: None,
                    },
                    KernelSpan {
                        name: "exchange".to_string(),
                        time_ms: 0.75,
                        exchange: Some((i as u64, 4096)),
                    },
                ],
            })
            .collect();
        let p = SimParams {
            fault: Some(FaultPlan::mixed(7, 0.25)),
            resilience: ResilienceConfig {
                deadline_ms: Some(25.0),
                retry: RetryPolicy::retries(1),
                degrade: true,
                ..ResilienceConfig::default()
            },
            ..params(2, 4, 128)
        };
        let (_, a) = simulate_open_traced(&keys, &arrivals, &costs, p, &profiles);
        let (_, b) = simulate_open_traced(&keys, &arrivals, &costs, p, &profiles);
        assert_eq!(a.to_chrome_json(), b.to_chrome_json());
        assert_eq!(a.render_tree(), b.render_tree());
        gsuite_telemetry::json::validate(&a.to_chrome_json()).expect("valid chrome JSON");
        // The taxonomy shows up: kernels, exchanges, builds with the
        // compile-phase split.
        for name in ["request", "queue", "cache_lookup", "build", "service"] {
            assert!(a.spans.iter().any(|s| s.name == name), "missing {name}");
        }
        assert!(a.spans.iter().any(|s| s.name == "compile.optimize"));
        assert!(a.spans.iter().any(|s| s.name == "exchange"));
    }

    #[test]
    fn degraded_builds_drop_the_optimize_span_and_sum_to_half() {
        // build 20 + service 10 > deadline 25 forces the O0 fallback.
        let costs = costs(1, 10.0, 20.0, 5);
        let degrade = SimParams {
            resilience: ResilienceConfig {
                deadline_ms: Some(25.0),
                degrade: true,
                ..ResilienceConfig::default()
            },
            ..params(1, 4, 100)
        };
        let (out, trace) = simulate_open_traced(&[0], &[0.0], &costs, degrade, &[]);
        assert_eq!(out.degraded, 1);
        assert!(trace.spans.iter().any(|s| s.name == "degrade"));
        let build: Vec<_> = trace.spans.iter().filter(|s| s.name == "build").collect();
        assert_eq!(build.len(), 1);
        assert_eq!(build[0].dur_ms, 10.0, "0.5 x build_ms");
        assert!(!trace.spans.iter().any(|s| s.name == "compile.optimize"));
        // The remaining phases tile the degraded build exactly.
        let phases: f64 = trace
            .spans
            .iter()
            .filter(|s| s.name.starts_with("compile."))
            .map(|s| s.dur_ms)
            .sum();
        assert!((phases - 10.0).abs() < 1e-9, "{phases}");
    }

    #[test]
    fn eviction_storms_drop_cached_entries() {
        let costs = costs(2, 1.0, 1.0, 10);
        let always_evict = FaultPlan {
            seed: 3,
            spec: FaultSpec {
                evict_rate: 1.0,
                evict_n: 8,
                ..FaultSpec::none()
            },
        };
        let p = SimParams {
            fault: Some(always_evict),
            ..params(1, 4, 1000)
        };
        // Every attempt's storm clears the cache first: all misses.
        let out = simulate_open(&[0, 0, 0], &[0.0, 10.0, 20.0], &costs, p);
        assert_eq!(out.cache.hits, 0);
        assert_eq!(out.cache.misses, 3);
        assert_eq!(out.cache.evictions, 2, "two cached entries were stormed");
    }

    /// Collects everything a former emits for an arrival sequence.
    fn form(policy: BatchPolicy, arrivals: &[(usize, Option<usize>, f64)]) -> Vec<FormerEvent> {
        let mut former = BatchFormer::new(policy);
        let mut events = Vec::new();
        for (i, &(key, group, at_ms)) in arrivals.iter().enumerate() {
            former.offer(
                BatchArrival {
                    index: i as u64,
                    key,
                    group,
                    at_ms,
                },
                &mut |e| events.push(e),
            );
        }
        former.flush(&mut |e| events.push(e));
        events
    }

    fn dispatched(events: &[FormerEvent]) -> Vec<(f64, Vec<u64>)> {
        events
            .iter()
            .filter_map(|e| match e {
                FormerEvent::Dispatch(b) => {
                    Some((b.dispatch_ms, b.members.iter().map(|m| m.index).collect()))
                }
                FormerEvent::Shed(_) => None,
            })
            .collect()
    }

    #[test]
    fn former_dispatches_on_fill_and_on_delay() {
        let policy = BatchPolicy {
            max_batch: 2,
            max_queue_delay_ms: 5.0,
            max_backlog: 0,
        };
        let g = Some(0);
        // 0 and 1 fill a batch at t=1; 2 waits out its delay.
        let events = form(policy, &[(0, g, 0.0), (1, g, 1.0), (2, g, 2.0)]);
        assert_eq!(dispatched(&events), vec![(1.0, vec![0, 1]), (7.0, vec![2])]);

        // An arrival landing exactly on the head's deadline does not
        // join: the timer fires first.
        let events = form(policy, &[(0, g, 0.0), (1, g, 5.0)]);
        assert_eq!(dispatched(&events), vec![(5.0, vec![0]), (10.0, vec![1])]);

        // max_batch=1 never forms: immediate singletons at arrival.
        let one = BatchPolicy {
            max_batch: 1,
            ..policy
        };
        let events = form(one, &[(0, g, 0.0), (1, g, 0.5)]);
        assert_eq!(dispatched(&events), vec![(0.0, vec![0]), (0.5, vec![1])]);
    }

    #[test]
    fn former_backlog_sheds_only_batch_opening_arrivals() {
        let policy = BatchPolicy {
            max_batch: 4,
            max_queue_delay_ms: 100.0,
            max_backlog: 1,
        };
        // 0 opens the only allowed batch; 1 (a new class) is shed; 2
        // joins 0's batch; 3 (unmergeable) bypasses the bound.
        let events = form(
            policy,
            &[
                (0, Some(0), 0.0),
                (1, Some(1), 1.0),
                (2, Some(0), 2.0),
                (3, None, 3.0),
            ],
        );
        assert!(matches!(&events[0], FormerEvent::Shed(a) if a.index == 1));
        assert_eq!(
            dispatched(&events),
            vec![(3.0, vec![3]), (100.0, vec![0, 2])]
        );
    }

    #[test]
    fn batched_with_max_batch_one_is_byte_identical_to_unbatched() {
        // Batch metadata present on every cost, full fault/resilience
        // machinery active: max_batch=1 must reduce to simulate_open
        // exactly (the differential anchor of the batched model).
        let mut costs = costs(4, 3.0, 1.5, 64);
        for (i, c) in costs.iter_mut().enumerate() {
            c.template = Some(i % 2);
            c.batch = Some(SimBatch {
                group: i % 2,
                fixed_ms: 2.0,
                marginal_ms: 1.0,
            });
        }
        let keys: Vec<usize> = (0..60).map(|i| i % 4).collect();
        let arrivals: Vec<f64> = (0..60).map(|i| i as f64 * 1.25).collect();
        let p = SimParams {
            fault: Some(FaultPlan::mixed(9, 0.3)),
            resilience: ResilienceConfig {
                deadline_ms: Some(40.0),
                retry: RetryPolicy::retries(2),
                breaker: Some(BreakerConfig::default()),
                degrade: true,
                stale_ttl_ms: Some(20.0),
            },
            ..params(2, 8, 256)
        };
        let unbatched = simulate_open(&keys, &arrivals, &costs, p);
        let policy = BatchPolicy {
            max_batch: 1,
            max_queue_delay_ms: 4.0,
            max_backlog: 2,
        };
        let batched = simulate_open_batched(&keys, &arrivals, &costs, p, policy);
        assert_eq!(batched.batches, 60);
        assert_eq!(batched.batched_requests, 60);
        assert_eq!(batched.batch_size_hist, vec![60]);
        assert_eq!(batched.batch_shed, 0);
        let mut stripped = batched.clone();
        stripped.batches = 0;
        stripped.batched_requests = 0;
        stripped.batch_size_hist = Vec::new();
        assert_eq!(
            stripped, unbatched,
            "max_batch=1 must reproduce simulate_open"
        );
    }

    #[test]
    fn merged_batches_amortize_fixed_and_build_costs() {
        // Two distinct keys of one merge class; a cache too small to
        // hold anything keeps every request on the miss path.
        let costs: Vec<SimCosts> = (0..2)
            .map(|_| SimCosts {
                service_ms: 10.0,
                build_ms: 4.0,
                exchange_ms: 0.0,
                bytes: 100,
                template: None,
                batch: Some(SimBatch {
                    group: 0,
                    fixed_ms: 8.0,
                    marginal_ms: 2.0,
                }),
                error: None,
            })
            .collect();
        let policy = BatchPolicy {
            max_batch: 2,
            max_queue_delay_ms: 5.0,
            max_backlog: 0,
        };
        let keys = [0, 1, 0, 1];
        let arrivals = [0.0, 0.5, 100.0, 100.5];
        let out = simulate_open_batched(&keys, &arrivals, &costs, params(2, 8, 1), policy);
        // First pair: filled at 0.5; merged build = 4 + 0.25·4 = 5,
        // inference = max(8, 8) + 2 + 2 = 12; finish = 17.5.
        assert_eq!(out.records[0].latency_ms, 17.5);
        assert_eq!(out.records[1].latency_ms, 17.0);
        assert_eq!(
            out.records[0].disposition,
            SimDisposition::Done(CacheDisposition::Miss)
        );
        // Second identical pair: the merged shape [0, 1] is installed,
        // so the build drops to the instantiate share (5 · 0.25 =
        // 1.25); finish = 100.5 + 13.25.
        assert_eq!(out.records[2].latency_ms, 13.75);
        assert_eq!((out.template_misses, out.template_hits), (1, 1));
        assert_eq!(out.batches, 2);
        assert_eq!(out.batched_requests, 4);
        assert_eq!(out.batch_size_hist, vec![0, 2]);

        // The same stream unbatched keeps full per-request costs: the
        // merged run strictly beats it on makespan.
        let unbatched = simulate_open(&keys, &arrivals, &costs, params(2, 8, 1));
        assert!(out.makespan_ms < unbatched.makespan_ms);
    }

    #[test]
    fn batch_backlog_sheds_and_unmergeable_requests_bypass_forming() {
        let mut costs = costs(3, 10.0, 4.0, 10);
        costs[0].batch = Some(SimBatch {
            group: 0,
            fixed_ms: 8.0,
            marginal_ms: 2.0,
        });
        costs[1].batch = Some(SimBatch {
            group: 1,
            fixed_ms: 8.0,
            marginal_ms: 2.0,
        });
        let policy = BatchPolicy {
            max_batch: 4,
            max_queue_delay_ms: 100.0,
            max_backlog: 1,
        };
        let out = simulate_open_batched(
            &[0, 1, 2],
            &[0.0, 1.0, 2.0],
            &costs,
            params(2, 8, 1000),
            policy,
        );
        // 0 opens the only allowed batch; 1 is shed; 2 (no batch
        // model) dispatches immediately as a plain miss.
        assert_eq!(out.records[1].disposition, SimDisposition::BatchShed);
        assert_eq!(out.records[1].latency_ms, 0.0);
        assert_eq!(out.batch_shed, 1);
        assert_eq!(out.records[2].submit_ms, 2.0);
        assert_eq!(out.records[2].latency_ms, 14.0);
        // 0's lonely batch dispatches as a singleton at its deadline;
        // the forming wait counts as queue time.
        assert_eq!(out.records[0].submit_ms, 0.0);
        assert_eq!(out.records[0].queue_ms, 100.0);
        assert_eq!(out.records[0].latency_ms, 114.0);
        assert_eq!(out.batches, 2);
    }

    #[test]
    fn later_arrivals_coalesce_onto_merged_executions() {
        let costs: Vec<SimCosts> = (0..2)
            .map(|_| SimCosts {
                service_ms: 10.0,
                build_ms: 4.0,
                exchange_ms: 0.0,
                bytes: 100,
                template: None,
                batch: Some(SimBatch {
                    group: 0,
                    fixed_ms: 8.0,
                    marginal_ms: 2.0,
                }),
                error: None,
            })
            .collect();
        let policy = BatchPolicy {
            max_batch: 2,
            max_queue_delay_ms: 1.0,
            max_backlog: 0,
        };
        // 0 and 1 merge (dispatch at 0.5, finish 17.5); a second key-0
        // request at t=3 finds the merged execution in flight and
        // coalesces onto it rather than re-executing.
        let out = simulate_open_batched(
            &[0, 1, 0],
            &[0.0, 0.5, 3.0],
            &costs,
            params(2, 8, 1000),
            policy,
        );
        assert_eq!(out.coalesced, 1);
        assert_eq!(
            out.records[2].disposition,
            SimDisposition::Done(CacheDisposition::Coalesced)
        );
        assert_eq!(out.records[2].latency_ms, 14.5, "finishes with the batch");
    }

    #[test]
    fn traced_batched_runs_match_and_emit_batch_spans() {
        let mut costs = costs(4, 3.0, 1.5, 64);
        for c in costs.iter_mut() {
            c.batch = Some(SimBatch {
                group: 0,
                fixed_ms: 2.0,
                marginal_ms: 1.0,
            });
        }
        let keys: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let arrivals: Vec<f64> = (0..40).map(|i| i as f64 * 0.6).collect();
        let policy = BatchPolicy {
            max_batch: 4,
            max_queue_delay_ms: 2.0,
            max_backlog: 0,
        };
        let p = params(2, 8, 256);
        let plain = simulate_open_batched(&keys, &arrivals, &costs, p, policy);
        let (traced, a) = simulate_open_batched_traced(&keys, &arrivals, &costs, p, policy, &[]);
        assert_eq!(plain, traced, "tracing must never perturb the model");
        assert!(
            plain.batch_size_hist.len() > 1,
            "some real merging happened"
        );
        let (_, b) = simulate_open_batched_traced(&keys, &arrivals, &costs, p, policy, &[]);
        assert_eq!(a.to_chrome_json(), b.to_chrome_json());
        gsuite_telemetry::json::validate(&a.to_chrome_json()).expect("valid chrome JSON");
        for name in ["batch.form", "batch.scatter", "request", "service"] {
            assert!(a.spans.iter().any(|s| s.name == name), "missing {name}");
        }
    }
}
