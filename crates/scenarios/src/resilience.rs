//! Deterministic fault injection and resilience policy primitives.
//!
//! The serving layer's failure semantics are built from four pieces that
//! all live here so the batch `chaos` scenario, the sim-clock load
//! generator and the live threaded server share one implementation:
//!
//! * [`FaultPlan`] — a seeded, declarative fault model. Every fault
//!   decision for `(request, attempt)` is drawn from a [`FaultRng`]
//!   keyed on `(seed, request, attempt)` alone, so draws are independent
//!   of thread interleaving and wall-clock timing: the same plan replays
//!   **byte-identically** under the sim clock and
//!   identically-in-distribution under the wall clock.
//! * [`RetryPolicy`] — bounded retries with seeded, jittered exponential
//!   backoff.
//! * [`CircuitBreaker`] — a per-config closed/open/half-open state
//!   machine over a sliding failure-rate window, driven by an explicit
//!   `now_ms` so the sim and wall clocks share the transition logic.
//! * [`RejectReason`] — the typed reject taxonomy surfaced as distinct
//!   protocol response codes.
//!
//! All policy defaults are **inert**: a default [`ResilienceConfig`] with
//! no [`FaultPlan`] leaves every fault-free code path bit-identical to a
//! build without this module.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Finalizes one splitmix64 mixing round (the standard finalizer used by
/// the vendored `SmallRng` seeding path as well).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded generator behind every fault decision: a `SmallRng` whose
/// seed mixes `(plan seed, request index, attempt)` through splitmix64,
/// so each `(request, attempt)` pair owns an independent, reproducible
/// stream regardless of scheduling order.
#[derive(Debug, Clone)]
pub struct FaultRng(SmallRng);

impl FaultRng {
    /// The generator for one `(request, attempt)` pair under `seed`.
    pub fn for_attempt(seed: u64, request: u64, attempt: u32) -> Self {
        let mixed = splitmix64(
            seed ^ splitmix64(request.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ splitmix64(u64::from(attempt).wrapping_mul(0xD134_2543_DE82_EF95)),
        );
        FaultRng(SmallRng::seed_from_u64(mixed))
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.0.gen::<f64>()
    }
}

/// The declarative fault mix: independent per-attempt probabilities for
/// each fault class, plus their severity knobs. All rates default to
/// zero (no faults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability that an attempt runs slowed by [`FaultSpec::slow_factor`].
    pub slow_rate: f64,
    /// Service-time multiplier for slowed attempts (≥ 1).
    pub slow_factor: f64,
    /// Probability that an attempt fails transiently (retryable).
    pub transient_rate: f64,
    /// Probability that the worker executing the attempt "crashes"
    /// (panic-unwind on the wall path; a lost, retryable attempt in the
    /// sim).
    pub crash_rate: f64,
    /// Probability of an eviction storm before the attempt's cache
    /// lookup: the [`FaultSpec::evict_n`] least-recently-used entries are
    /// poisoned and dropped.
    pub evict_rate: f64,
    /// Entries dropped per eviction storm.
    pub evict_n: usize,
    /// Probability that the attempt observes a degraded interconnect.
    pub link_rate: f64,
    /// α/β inflation factor for degraded-link attempts: latency is
    /// multiplied and bandwidth divided by this factor (≥ 1).
    pub link_factor: f64,
}

impl FaultSpec {
    /// No faults at all.
    pub fn none() -> Self {
        FaultSpec {
            slow_rate: 0.0,
            slow_factor: 1.0,
            transient_rate: 0.0,
            crash_rate: 0.0,
            evict_rate: 0.0,
            evict_n: 0,
            link_rate: 0.0,
            link_factor: 1.0,
        }
    }

    /// The canonical chaos mix at overall intensity `rate` ∈ [0, 1]:
    /// slowdowns are the most common fault, transient failures next,
    /// crashes and eviction storms rare, and every sharded attempt at
    /// this intensity sees some interconnect degradation.
    pub fn mixed(rate: f64) -> Self {
        FaultSpec {
            slow_rate: rate,
            slow_factor: 8.0,
            transient_rate: rate * 0.5,
            crash_rate: rate * 0.2,
            evict_rate: rate * 0.25,
            evict_n: 4,
            link_rate: rate,
            link_factor: 4.0,
        }
    }

    /// True when every rate is zero (the plan cannot fire).
    pub fn is_none(&self) -> bool {
        self.slow_rate == 0.0
            && self.transient_rate == 0.0
            && self.crash_rate == 0.0
            && self.evict_rate == 0.0
            && self.link_rate == 0.0
    }
}

/// A seeded fault model: `(seed, spec)` fully determines the fault drawn
/// for every `(request, attempt)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// The fault seed (independent of the workload seed).
    pub seed: u64,
    /// The fault mix.
    pub spec: FaultSpec,
}

/// The concrete faults one attempt experiences, fully determined by
/// `(plan, request, attempt)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultDraw {
    /// Service-time multiplier (1.0 = healthy).
    pub slow_factor: f64,
    /// The attempt fails transiently after doing its work.
    pub transient: bool,
    /// The worker crashes mid-attempt.
    pub crash: bool,
    /// LRU entries to drop before the attempt's cache lookup.
    pub evict: usize,
    /// Interconnect α/β inflation for the attempt (1.0 = healthy).
    pub link_factor: f64,
}

impl FaultDraw {
    /// A fault-free draw.
    pub fn healthy() -> Self {
        FaultDraw {
            slow_factor: 1.0,
            transient: false,
            crash: false,
            evict: 0,
            link_factor: 1.0,
        }
    }

    /// True when the draw injects nothing.
    pub fn is_healthy(&self) -> bool {
        *self == FaultDraw::healthy()
    }
}

impl FaultPlan {
    /// A plan with the canonical mix at `rate` (see [`FaultSpec::mixed`]).
    pub fn mixed(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            spec: FaultSpec::mixed(rate),
        }
    }

    /// Draws the faults for attempt `attempt` of request `request`.
    /// Field order of the draws is fixed — part of the replay contract.
    pub fn draw(&self, request: u64, attempt: u32) -> FaultDraw {
        if self.spec.is_none() {
            return FaultDraw::healthy();
        }
        let mut rng = FaultRng::for_attempt(self.seed, request, attempt);
        let slow = rng.unit() < self.spec.slow_rate;
        let transient = rng.unit() < self.spec.transient_rate;
        let crash = rng.unit() < self.spec.crash_rate;
        let evict = rng.unit() < self.spec.evict_rate;
        let link = rng.unit() < self.spec.link_rate;
        FaultDraw {
            slow_factor: if slow {
                self.spec.slow_factor.max(1.0)
            } else {
                1.0
            },
            transient,
            crash,
            evict: if evict { self.spec.evict_n } else { 0 },
            link_factor: if link {
                self.spec.link_factor.max(1.0)
            } else {
                1.0
            },
        }
    }

    /// The backoff jitter draw for retrying `(request, attempt)` — a
    /// dedicated stream so fault draws and jitter never alias.
    pub fn jitter(&self, request: u64, attempt: u32) -> f64 {
        FaultRng::for_attempt(self.seed ^ 0x6A09_E667_F3BC_C908, request, attempt).unit()
    }
}

/// Bounded retries with jittered exponential backoff. The default policy
/// retries nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before retry k is `base_ms · 2^k`, capped at
    /// [`RetryPolicy::cap_ms`], then scaled by jitter into
    /// `[0.5, 1.0) ×` that value.
    pub base_ms: f64,
    /// Upper bound on the un-jittered backoff.
    pub cap_ms: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_ms: 1.0,
            cap_ms: 50.0,
        }
    }

    /// `n` retries with the default 1 ms base / 50 ms cap.
    pub fn retries(n: u32) -> Self {
        RetryPolicy {
            max_retries: n,
            ..RetryPolicy::none()
        }
    }

    /// The backoff in ms before retry `attempt` (1-based: the delay
    /// between attempt `attempt - 1` failing and attempt `attempt`
    /// starting), given a jitter draw in `[0, 1)`.
    pub fn backoff_ms(&self, attempt: u32, jitter_unit: f64) -> f64 {
        let exp = self
            .base_ms
            .max(0.0)
            .mul_add(f64::from(1u32 << attempt.saturating_sub(1).min(20)), 0.0)
            .min(self.cap_ms.max(0.0));
        exp * (0.5 + 0.5 * jitter_unit)
    }
}

/// Circuit-breaker tuning. The window is a count-based sliding window of
/// recent attempt outcomes for one config.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding-window length in outcomes.
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may trip.
    pub min_samples: usize,
    /// Failure fraction (in the window) at which the breaker opens.
    pub fail_threshold: f64,
    /// How long an open breaker rejects before probing, in ms.
    pub cooldown_ms: f64,
    /// Probes admitted in half-open state; one success closes, one
    /// failure re-opens.
    pub half_open_probes: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            min_samples: 8,
            fail_threshold: 0.5,
            cooldown_ms: 100.0,
            half_open_probes: 2,
        }
    }
}

/// The breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all requests admitted, outcomes recorded.
    Closed,
    /// Tripped: all requests rejected until the cooldown elapses.
    Open,
    /// Probing: a bounded number of requests admitted; one success
    /// closes the breaker, one failure re-opens it.
    HalfOpen,
}

/// A closed/open/half-open circuit breaker over a sliding failure-rate
/// window. All transitions take an explicit `now_ms` so the same state
/// machine serves the sim clock, the wall clock and the chaos DES.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    window: VecDeque<bool>,
    opened_at_ms: f64,
    probes_admitted: usize,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            window: VecDeque::new(),
            opened_at_ms: 0.0,
            probes_admitted: 0,
            trips: 0,
        }
    }

    /// Current state, after applying any cooldown transition due at
    /// `now_ms`.
    pub fn state(&mut self, now_ms: f64) -> BreakerState {
        if self.state == BreakerState::Open && now_ms >= self.opened_at_ms + self.cfg.cooldown_ms {
            self.state = BreakerState::HalfOpen;
            self.probes_admitted = 0;
        }
        self.state
    }

    /// Whether a request for this config may proceed at `now_ms`.
    /// Half-open admission counts against the probe budget.
    pub fn admit(&mut self, now_ms: f64) -> bool {
        match self.state(now_ms) {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probes_admitted < self.cfg.half_open_probes {
                    self.probes_admitted += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records one attempt outcome at `now_ms` and applies any resulting
    /// transition.
    pub fn record(&mut self, now_ms: f64, success: bool) {
        match self.state(now_ms) {
            BreakerState::Closed => {
                self.window.push_back(success);
                while self.window.len() > self.cfg.window {
                    self.window.pop_front();
                }
                let samples = self.window.len();
                if samples >= self.cfg.min_samples.max(1) {
                    let failures = self.window.iter().filter(|ok| !**ok).count();
                    if failures as f64 / samples as f64 >= self.cfg.fail_threshold {
                        self.trip(now_ms);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if success {
                    self.state = BreakerState::Closed;
                    self.window.clear();
                } else {
                    self.trip(now_ms);
                }
            }
            // Outcomes of requests admitted before the trip may land
            // while open; they are stale — ignore them.
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now_ms: f64) {
        self.state = BreakerState::Open;
        self.opened_at_ms = now_ms;
        self.window.clear();
        self.probes_admitted = 0;
        self.trips += 1;
    }

    /// How many times this breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

/// The resilience policy bundle. The default is fully inert: no
/// deadline, no retries, no breaker, no degradation — the fault-free
/// code path is untouched.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResilienceConfig {
    /// Per-request deadline (sim/wall ms from submission). `None`
    /// disables deadline handling entirely.
    pub deadline_ms: Option<f64>,
    /// Retry policy for transient faults and crashes.
    pub retry: RetryPolicy,
    /// Per-config circuit breaker; `None` disables breaking.
    pub breaker: Option<BreakerConfig>,
    /// Graceful degradation on deadline pressure: fall back to an O0
    /// compile (skip optimize passes) when the remaining budget cannot
    /// cover a full build.
    pub degrade: bool,
    /// Soft TTL for cached profiles: entries older than this are
    /// refreshed off the hot path but may still be served
    /// stale-but-valid under deadline pressure. `None` disables TTLs.
    pub stale_ttl_ms: Option<f64>,
}

impl ResilienceConfig {
    /// True when every knob is off (the fault-free fast path).
    pub fn is_inert(&self) -> bool {
        *self == ResilienceConfig::default()
    }
}

/// Why a request was rejected or failed without a result — the typed
/// taxonomy the protocol surfaces as distinct response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded submission queue was full (load shed).
    QueueFull,
    /// The per-request deadline expired before a result was ready.
    DeadlineExceeded,
    /// The config's circuit breaker was open (known-bad config shed).
    CircuitOpen,
    /// The executing worker crashed (and retries, if any, were
    /// exhausted).
    Crashed,
    /// The cross-request batch former's backlog of open batches exceeded
    /// its admission bound (batched load shed).
    BatchBacklog,
}

impl RejectReason {
    /// The wire code for protocol `err` responses.
    pub fn code(&self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::DeadlineExceeded => "deadline-exceeded",
            RejectReason::CircuitOpen => "circuit-open",
            RejectReason::Crashed => "crashed",
            RejectReason::BatchBacklog => "batch-backlog",
        }
    }

    /// Parses a wire code back into the reason.
    pub fn parse(code: &str) -> Option<Self> {
        match code {
            "queue-full" => Some(RejectReason::QueueFull),
            "deadline-exceeded" => Some(RejectReason::DeadlineExceeded),
            "circuit-open" => Some(RejectReason::CircuitOpen),
            "crashed" => Some(RejectReason::Crashed),
            "batch-backlog" => Some(RejectReason::BatchBacklog),
            _ => None,
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_attempt_independent() {
        let plan = FaultPlan::mixed(7, 0.3);
        let a = plan.draw(12, 0);
        assert_eq!(a, plan.draw(12, 0), "same (request, attempt) replays");
        assert_eq!(a, FaultPlan::mixed(7, 0.3).draw(12, 0), "plan is pure");
        // Different attempts draw from independent streams.
        let draws: Vec<FaultDraw> = (0..4).map(|k| plan.draw(12, k)).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn zero_rate_plan_is_healthy() {
        let plan = FaultPlan {
            seed: 99,
            spec: FaultSpec::none(),
        };
        for r in 0..64 {
            assert!(plan.draw(r, 0).is_healthy());
        }
        assert!(FaultSpec::none().is_none());
        assert!(!FaultSpec::mixed(0.1).is_none());
    }

    #[test]
    fn mixed_rates_hit_roughly_in_proportion() {
        let plan = FaultPlan::mixed(3, 0.5);
        let n = 2000;
        let slow = (0..n)
            .filter(|r| plan.draw(*r, 0).slow_factor > 1.0)
            .count();
        let crash = (0..n).filter(|r| plan.draw(*r, 0).crash).count();
        let frac_slow = slow as f64 / n as f64;
        let frac_crash = crash as f64 / n as f64;
        assert!(
            (0.4..0.6).contains(&frac_slow),
            "slow ~0.5, got {frac_slow}"
        );
        assert!(
            (0.05..0.15).contains(&frac_crash),
            "crash ~0.1, got {frac_crash}"
        );
    }

    #[test]
    fn backoff_is_exponential_capped_and_jittered() {
        let p = RetryPolicy {
            max_retries: 5,
            base_ms: 2.0,
            cap_ms: 10.0,
        };
        assert_eq!(p.backoff_ms(1, 1.0), 2.0 * 1.0);
        assert_eq!(p.backoff_ms(2, 1.0), 4.0);
        assert_eq!(p.backoff_ms(3, 1.0), 8.0);
        assert_eq!(p.backoff_ms(4, 1.0), 10.0, "capped");
        assert_eq!(p.backoff_ms(1, 0.0), 1.0, "jitter floor is half");
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn breaker_trips_cools_down_and_recovers() {
        let cfg = BreakerConfig {
            window: 4,
            min_samples: 4,
            fail_threshold: 0.5,
            cooldown_ms: 10.0,
            half_open_probes: 1,
        };
        let mut b = CircuitBreaker::new(cfg);
        assert!(b.admit(0.0));
        for t in 0..4 {
            b.record(f64::from(t), t % 2 == 0); // 2/4 failures hits 0.5
        }
        assert_eq!(b.state(3.0), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.admit(5.0), "open rejects inside cooldown");
        assert!(b.admit(13.0), "half-open admits the probe");
        assert_eq!(b.state(13.0), BreakerState::HalfOpen);
        assert!(!b.admit(13.0), "probe budget is bounded");
        b.record(14.0, true);
        assert_eq!(b.state(14.0), BreakerState::Closed, "probe success closes");
        // Failure in half-open re-opens immediately.
        for t in 0..4 {
            b.record(20.0 + f64::from(t), false);
        }
        assert_eq!(b.state(24.0), BreakerState::Open);
        assert!(b.admit(40.0));
        b.record(41.0, false);
        assert_eq!(b.state(41.0), BreakerState::Open, "probe failure re-opens");
        assert_eq!(b.trips(), 3);
    }

    #[test]
    fn inert_config_is_detectable() {
        assert!(ResilienceConfig::default().is_inert());
        let with_deadline = ResilienceConfig {
            deadline_ms: Some(10.0),
            ..ResilienceConfig::default()
        };
        assert!(!with_deadline.is_inert());
    }

    #[test]
    fn reject_codes_round_trip() {
        for reason in [
            RejectReason::QueueFull,
            RejectReason::DeadlineExceeded,
            RejectReason::CircuitOpen,
            RejectReason::Crashed,
            RejectReason::BatchBacklog,
        ] {
            assert_eq!(RejectReason::parse(reason.code()), Some(reason));
        }
        assert_eq!(RejectReason::parse("nope"), None);
    }
}
