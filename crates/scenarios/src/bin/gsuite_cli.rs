//! The gSuite command-line interface — the paper's "pass a few parameters"
//! user surface (Fig. 1), plus the scenario registry.
//!
//! ```text
//! gsuite-cli [--config FILE] [--model gcn|gin|sag] [--comp mp|spmm]
//!            [--dataset cora|citeseer|pubmed|reddit|livejournal]
//!            [--scale F] [--layers N] [--hidden N]
//!            [--framework gsuite|pyg|dgl] [--seed N]
//!            [--backend hw|sim] [--sim-sms N] [--max-ctas N] [--quiet]
//!
//! gsuite-cli run-scenario --list [--filter STR]
//! gsuite-cli run-scenario NAME [--quick|--full] [--csv DIR]
//! ```
//!
//! Without a subcommand: builds the configured pipeline, runs it
//! functionally, profiles every kernel launch on the selected backend and
//! prints a characterization report. With `run-scenario`: executes a named
//! experiment grid from the scenario registry.

use std::process::ExitCode;

use gsuite_core::config::RunConfig;
use gsuite_core::pipeline::PipelineRun;
use gsuite_profile::{HwProfiler, Profiler, SimProfiler, TextTable};
use gsuite_scenarios::{registry, BenchOpts};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("run-scenario") {
        return match run_scenario_cmd(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("run with --help for usage");
                ExitCode::FAILURE
            }
        };
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run with --help for usage");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "gsuite-cli: framework-independent GNN inference benchmark\n\
         \n\
         pipeline flags (defaults in parentheses):\n\
           --config FILE          apply a key=value defaults file first\n\
           --model gcn|gin|sag    GNN model (gcn)\n\
           --comp mp|spmm         computational model (mp)\n\
           --dataset NAME         cora|citeseer|pubmed|reddit|livejournal (cora)\n\
           --scale F              dataset scale in (0,1] (1.0)\n\
           --layers N             GNN layers (2)\n\
           --hidden N             hidden width (16)\n\
           --framework NAME       gsuite|pyg|dgl (gsuite)\n\
           --seed N               weight seed (42)\n\
           --functional BOOL      compute real outputs host-side (true)\n\
         \n\
         measurement flags:\n\
           --backend hw|sim       analytical profiler or cycle simulator (hw)\n\
           --sim-sms N            simulated SM count for --backend sim (8)\n\
           --max-ctas N           CTA sampling cap for --backend sim (2048)\n\
           --quiet                print only the summary line\n\
         \n\
         scenario registry:\n\
           run-scenario --list [--filter STR]   list registered scenarios\n\
           run-scenario NAME [--quick|--full] [--csv DIR]\n\
                                  run one named experiment grid (the paper's\n\
                                  figures plus beyond-paper scenarios)"
    );
}

/// `gsuite-cli run-scenario ...`: list, filter or execute registry entries.
fn run_scenario_cmd(args: &[String]) -> Result<(), String> {
    let mut list = false;
    let mut filter: Option<String> = None;
    let mut name: Option<String> = None;
    let mut opt_args: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print_help();
                return Ok(());
            }
            "--list" => {
                list = true;
                i += 1;
            }
            "--filter" => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| "--filter needs a value".to_string())?;
                filter = Some(v.clone());
                i += 2;
            }
            flag if flag.starts_with("--") => {
                // Mode flags are shared with the figure binaries.
                opt_args.push(args[i].clone());
                if flag == "--csv" {
                    if let Some(v) = args.get(i + 1) {
                        opt_args.push(v.clone());
                        i += 1;
                    }
                }
                i += 1;
            }
            other => {
                if name.replace(other.to_string()).is_some() {
                    return Err(format!("unexpected extra scenario name {other:?}"));
                }
                i += 1;
            }
        }
    }
    let opts = BenchOpts::from_args(&opt_args)?;

    if let Some(n) = &name {
        if list || filter.is_some() {
            return Err(format!(
                "scenario name {n:?} conflicts with --list/--filter (run one or list, not both)"
            ));
        }
    }

    if list || filter.is_some() {
        let scenarios = match &filter {
            Some(f) => registry::matching(f),
            None => registry::all(),
        };
        if scenarios.is_empty() {
            return Err(format!(
                "no scenario matches filter {:?}",
                filter.as_deref().unwrap_or("")
            ));
        }
        println!(
            "registered scenarios ({} mode grid sizes):\n",
            mode_name(&opts)
        );
        println!("{}", registry::list_table(&scenarios, &opts).render());
        return Ok(());
    }

    let Some(name) = name else {
        return Err("run-scenario needs a scenario name (or --list)".to_string());
    };
    let scenario = registry::find(&name).ok_or_else(|| {
        let known: Vec<&str> = registry::all().iter().map(|s| s.name).collect();
        format!("unknown scenario {name:?} (registry: {})", known.join(", "))
    })?;
    let (_result, report) = scenario.run(&opts);
    report.emit(&opts);
    Ok(())
}

fn mode_name(opts: &BenchOpts) -> &'static str {
    if opts.full {
        "full"
    } else if opts.quick {
        "quick"
    } else {
        "default"
    }
}

fn run(args: &[String]) -> Result<(), String> {
    // Split measurement flags (handled here) from pipeline flags
    // (handled by RunConfig).
    let mut backend = "hw".to_string();
    let mut sim_sms: usize = 8;
    let mut max_ctas: u64 = 2048;
    let mut quiet = false;
    let mut config_file: Option<String> = None;
    let mut pipeline_args: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: usize| -> Result<String, String> {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("flag {} needs a value", args[i]))
        };
        match args[i].as_str() {
            "--backend" => {
                backend = take_value(i)?;
                i += 2;
            }
            "--sim-sms" => {
                sim_sms = take_value(i)?
                    .parse()
                    .map_err(|_| "--sim-sms expects an integer".to_string())?;
                i += 2;
            }
            "--max-ctas" => {
                max_ctas = take_value(i)?
                    .parse()
                    .map_err(|_| "--max-ctas expects an integer".to_string())?;
                i += 2;
            }
            "--config" => {
                config_file = Some(take_value(i)?);
                i += 2;
            }
            "--quiet" => {
                quiet = true;
                i += 1;
            }
            _ => {
                pipeline_args.push(args[i].clone());
                i += 1;
            }
        }
    }

    let mut config = RunConfig::default();
    if let Some(path) = config_file {
        let content = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read config file {path}: {e}"))?;
        config.apply_file(&content).map_err(|e| e.to_string())?;
    }
    let overrides = RunConfig::from_args(&pipeline_args).map_err(|e| e.to_string())?;
    // CLI flags win over file defaults: re-apply them on top.
    if !pipeline_args.is_empty() {
        config = merge(config, overrides, &pipeline_args);
    }

    let profiler: Box<dyn Profiler> = match backend.as_str() {
        "hw" => Box::new(HwProfiler::v100()),
        "sim" => Box::new(SimProfiler::scaled(sim_sms.clamp(1, 80)).max_ctas(Some(max_ctas))),
        other => return Err(format!("unknown backend {other:?} (expected hw|sim)")),
    };

    let graph = config.load_graph();
    if !quiet {
        println!("gSuite-rs | {}", config.label());
        let stats = graph.stats();
        println!(
            "graph: {} nodes, {} edges, {} features | layers={} hidden={}\n",
            stats.nodes, stats.edges, stats.feature_len, config.layers, config.hidden
        );
    }
    let run = PipelineRun::build(&graph, &config).map_err(|e| e.to_string())?;
    let profile = run.profile(profiler.as_ref());

    if !quiet {
        let mut table = TextTable::new(&[
            "#",
            "kernel",
            "time (ms)",
            "instr",
            "L1 hit",
            "L2 hit",
            "comp util",
            "mem util",
        ]);
        for (i, k) in profile.kernels.iter().enumerate() {
            table.row_owned(vec![
                (i + 1).to_string(),
                k.kernel.clone(),
                format!("{:.4}", k.time_ms),
                k.instr_mix.total().to_string(),
                format!("{:.1}%", k.l1.hit_rate() * 100.0),
                format!("{:.1}%", k.l2.hit_rate() * 100.0),
                format!("{:.1}%", k.compute_utilization * 100.0),
                format!("{:.1}%", k.memory_utilization * 100.0),
            ]);
        }
        println!("{}", table.render());
        println!(
            "host overhead: {:.2} ms ({} launches)",
            profile.host_overhead_ms,
            profile.kernels.len()
        );
    }
    println!(
        "{} | backend={} | device {:.3} ms | end-to-end {:.3} ms | output checksum {:.6}",
        config.label(),
        profiler.backend(),
        profile.device_time_ms(),
        profile.total_time_ms(),
        run.output.sum()
    );
    Ok(())
}

/// Re-applies CLI overrides on top of file defaults. `RunConfig::from_args`
/// already validated `overrides`; we only need to know which keys the user
/// actually passed.
fn merge(mut base: RunConfig, overrides: RunConfig, raw_flags: &[String]) -> RunConfig {
    let passed = |key: &str| {
        raw_flags
            .iter()
            .any(|a| a == &format!("--{key}") || a.starts_with(&format!("--{key}=")))
    };
    if passed("model") {
        base.model = overrides.model;
    }
    if passed("comp") || passed("computational-model") {
        base.comp = overrides.comp;
    }
    if passed("dataset") {
        base.dataset = overrides.dataset;
    }
    if passed("scale") {
        base.scale = overrides.scale;
    }
    if passed("layers") {
        base.layers = overrides.layers;
    }
    if passed("hidden") {
        base.hidden = overrides.hidden;
    }
    if passed("framework") {
        base.framework = overrides.framework;
    }
    if passed("seed") {
        base.seed = overrides.seed;
    }
    if passed("functional") || passed("functional-math") {
        base.functional_math = overrides.functional_math;
    }
    base
}
