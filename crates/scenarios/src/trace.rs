//! Trace construction for scenario runs and profiled pipelines: the
//! bridge from [`ScenarioResult`] / [`PipelineRun`] to the telemetry
//! layer's span stream.
//!
//! Scenario timestamps are *modeled* milliseconds on the sim clock —
//! cells are laid out sequentially at their cumulative modeled cost, so
//! the exported Chrome trace reads as "the grid, had it run
//! back-to-back on the modeled device". That keeps the export exactly
//! as deterministic as the profiles themselves.

use gsuite_core::pipeline::PipelineRun;
use gsuite_core::plan::OpSpec;
use gsuite_profile::PipelineProfile;
use gsuite_telemetry::{Attr, ClockDomain, SpanSink, Trace};

use crate::runner::ScenarioResult;
use crate::sim::{KernelSpan, SpanProfile};

/// The per-launch `kernel`/`exchange` breakdown of one built + profiled
/// pipeline — the [`SpanProfile`] traced simulations attach under each
/// `service` span. Sharded runs attribute each Exchange launch to its
/// peer device and transferred bytes (the same `rows · feat · 4`
/// pricing the profiler uses); single-device runs have no exchanges.
pub fn span_profile(run: &PipelineRun, profile: &PipelineProfile) -> SpanProfile {
    let mut kernels = Vec::with_capacity(profile.kernels.len());
    if let Some(sharded) = &run.sharding {
        let mut cursor = 0usize;
        for shard in &sharded.shards {
            let slice = &profile.kernels[cursor..cursor + shard.launches.len()];
            for (op, stats) in shard.plan.ops().iter().zip(slice) {
                let exchange = match &op.spec {
                    OpSpec::Exchange {
                        peer, rows, feat, ..
                    } => Some((*peer as u64, rows * *feat as u64 * 4)),
                    _ => None,
                };
                kernels.push(KernelSpan {
                    name: stats.kernel.clone(),
                    time_ms: stats.time_ms,
                    exchange,
                });
            }
            cursor += shard.launches.len();
        }
    } else {
        for stats in &profile.kernels {
            kernels.push(KernelSpan {
                name: stats.kernel.clone(),
                time_ms: stats.time_ms,
                exchange: None,
            });
        }
    }
    SpanProfile { kernels }
}

/// Renders an executed scenario as a sim-clock trace: one `cell` root
/// per grid cell (on its GPU axis's track) at the cells' cumulative
/// modeled times, with one `kernel`/`exchange` child per launch.
/// Unsupported cells render as zero-duration roots tagged with the
/// build error. Deterministic: byte-identical across runs and thread
/// counts, like the profiles it reads.
pub fn scenario_trace(result: &ScenarioResult) -> Trace {
    let mut sink = SpanSink::new();
    let mut t = 0.0f64;
    for (cell, outcome) in result.iter() {
        let track = cell.gpu_index as u32;
        let label = cell.config.label();
        match outcome.profile() {
            Some(profile) => {
                let total = profile.total_time_ms();
                let root = sink.record(
                    "cell",
                    None,
                    track,
                    t,
                    total,
                    vec![
                        Attr::str("label", label),
                        Attr::str("gpu", cell.gpu.label()),
                        Attr::f64("host_overhead_ms", profile.host_overhead_ms),
                        Attr::u64("peak_device_bytes", profile.peak_device_bytes),
                    ],
                );
                let mut k_start = t + profile.host_overhead_ms;
                for k in &profile.kernels {
                    let name = if k.kernel == "exchange" {
                        "exchange"
                    } else {
                        "kernel"
                    };
                    let mut attrs = vec![Attr::str("kernel", k.kernel.clone())];
                    if k.kernel == "exchange" {
                        attrs.push(Attr::u64("bytes", k.dram_bytes));
                    }
                    sink.record(name, Some(root), track, k_start, k.time_ms, attrs);
                    k_start += k.time_ms;
                }
                t += total;
            }
            None => {
                let error = match outcome {
                    crate::runner::CellOutcome::Unsupported(msg) => msg.clone(),
                    _ => String::new(),
                };
                sink.record(
                    "cell",
                    None,
                    track,
                    t,
                    0.0,
                    vec![
                        Attr::str("label", label),
                        Attr::str("gpu", cell.gpu.label()),
                        Attr::str("unsupported", error),
                    ],
                );
            }
        }
    }
    sink.finish(ClockDomain::Sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::BenchOpts;
    use crate::runner::run_scenario;
    use crate::spec::ScenarioSpec;
    use gsuite_core::config::{GnnModel, RunConfig};
    use gsuite_graph::datasets::Dataset;
    use gsuite_profile::HwProfiler;

    #[test]
    fn scenario_trace_covers_every_cell_deterministically() {
        let spec = ScenarioSpec {
            name: "trace-test",
            title: "trace unit grid",
            models: vec![GnnModel::Gcn, GnnModel::Sage],
            datasets: vec![Dataset::Cora],
            ..ScenarioSpec::default()
        };
        let result = run_scenario(&spec, &BenchOpts::golden());
        let trace = scenario_trace(&result);
        assert_eq!(trace.root_count(), result.cells.len());
        // Unsupported cells are tagged, profiled cells carry kernels.
        assert!(trace
            .spans
            .iter()
            .any(|s| s.attrs.iter().any(|a| a.key == "unsupported")));
        assert!(trace.spans.iter().any(|s| s.name == "kernel"));
        assert_eq!(
            trace.to_chrome_json(),
            scenario_trace(&run_scenario(&spec, &BenchOpts::golden())).to_chrome_json()
        );
    }

    #[test]
    fn span_profiles_attribute_exchanges_to_peers() {
        let cfg = RunConfig {
            scale: 0.02,
            hidden: 8,
            gpus_per_run: 2,
            functional_math: false,
            ..RunConfig::default()
        };
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        let profile = run.profile(&HwProfiler::v100());
        let sp = span_profile(&run, &profile);
        assert_eq!(sp.kernels.len(), profile.kernels.len());
        let exchanges: Vec<_> = sp.kernels.iter().filter(|k| k.exchange.is_some()).collect();
        assert!(!exchanges.is_empty(), "sharded runs exchange halos");
        for x in &exchanges {
            let (peer, bytes) = x.exchange.unwrap();
            assert!(peer < 2);
            assert!(bytes > 0);
            assert_eq!(x.name, "exchange");
        }
        // Single-device: no exchange attribution.
        let cfg1 = RunConfig {
            gpus_per_run: 1,
            ..cfg
        };
        let run1 = PipelineRun::build(&graph, &cfg1).unwrap();
        let p1 = run1.profile(&HwProfiler::v100());
        let sp1 = span_profile(&run1, &p1);
        assert!(sp1.kernels.iter().all(|k| k.exchange.is_none()));
    }
}
