//! The `chaos` scenario: the serving simulation under seeded fault
//! injection, swept across fault rate × resilience policy.
//!
//! The grid profiles the request universe (three paper models × two
//! citation datasets × both computational models, single-device and
//! 2-shard variants — the sharded cells give the degraded-link fault a
//! real Exchange share to inflate, and gSuite SAGE under SpMM supplies
//! persistent error traffic for the circuit breaker). The renderer then
//! replays one fixed seeded request stream through the deterministic
//! service simulation ([`crate::sim`]) under a sweep of
//! [`FaultPlan`]/[`ResilienceConfig`] pairs and reports goodput, tail
//! latency, SLO attainment and availability deltas against the
//! fault-free baseline.
//!
//! Everything is pure `f64` arithmetic over fixed iteration orders —
//! the report is byte-identical across runs, hosts and `--threads`
//! values, and is locked by a golden snapshot like every other registry
//! scenario.

use gsuite_core::config::GnnModel;
use gsuite_graph::datasets::Dataset;
use gsuite_profile::TextTable;

use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::opts::{ms, pct, BenchOpts};
use crate::report::Report;
use crate::resilience::{BreakerConfig, FaultPlan, ResilienceConfig, RetryPolicy};
use crate::runner::{CellOutcome, ScenarioResult};
use crate::sim::{build_cost_ms, simulate_open, SimCosts, SimDisposition, SimOutcome, SimParams};
use crate::spec::ScenarioSpec;

/// Seed of the synthetic request stream (key choices and arrival jitter).
const STREAM_SEED: u64 = 42;
/// Seed of every injected [`FaultPlan`] in the sweep.
const FAULT_SEED: u64 = 7;
/// Requests replayed per sweep row.
const REQUESTS: usize = 240;
/// Simulated worker threads.
const WORKERS: usize = 4;
/// Bounded queue depth.
const QUEUE_CAP: usize = 16;
/// Fault rates swept against the policies (the baseline row is 0).
const FAULT_RATES: [f64; 2] = [0.10, 0.25];

pub(crate) fn spec_chaos() -> ScenarioSpec {
    ScenarioSpec {
        name: "chaos",
        title: "resilience under seeded fault injection: goodput, tail latency and availability by policy",
        models: GnnModel::ALL.to_vec(),
        datasets: vec![Dataset::Cora, Dataset::CiteSeer],
        gpus_per_run: vec![1, 2],
        ..ScenarioSpec::default()
    }
}

/// One sweep row: a label, the injected fault rate (0 = fault-free) and
/// the resilience policy under test.
struct Policy {
    label: &'static str,
    rate: f64,
    retry: bool,
    breaker: bool,
}

/// The sweep: a fault-free baseline, then each fault rate against a
/// deadline-only policy, retries + graceful degradation, and the full
/// stack with the per-config circuit breaker.
fn policies() -> Vec<Policy> {
    let mut rows = vec![Policy {
        label: "baseline (no faults)",
        rate: 0.0,
        retry: false,
        breaker: false,
    }];
    for &rate in &FAULT_RATES {
        rows.push(Policy {
            label: "deadline only",
            rate,
            retry: false,
            breaker: false,
        });
        rows.push(Policy {
            label: "+retry+degrade",
            rate,
            retry: true,
            breaker: false,
        });
        rows.push(Policy {
            label: "+breaker",
            rate,
            retry: true,
            breaker: true,
        });
    }
    rows
}

/// Lowers the profiled grid into per-config simulation costs: the
/// profile's end-to-end time as the service time, the byte-accounted
/// cache entry (graph + per-launch descriptors) driving the modeled
/// cold-start cost — graph load + pipeline build *plus two warm-up
/// inference passes*, which is what a cache miss actually pays in the
/// serving layer and what the O0 degraded build gets to halve — and the
/// slowest shard's halo-exchange share as the degraded-link target.
/// Unsupported cells become error configs that pay the graph-load
/// discovery cost and feed the circuit breaker.
fn chaos_costs(result: &ScenarioResult) -> Vec<SimCosts> {
    result
        .iter()
        .map(|(cell, outcome)| {
            let s = result
                .graph(cell.config.dataset)
                .expect("every spec dataset is loaded")
                .stats();
            let graph_bytes = s.nodes * (s.feature_len * 4 + 8) + s.edges * 8;
            match outcome {
                CellOutcome::Profiled(p) => {
                    let bytes = (graph_bytes + p.kernels.len() * 512) as u64;
                    let exchange_ms = p.sharding.as_ref().map_or(0.0, |sh| {
                        sh.shards
                            .iter()
                            .map(|shard| shard.exchange_ms)
                            .fold(0.0, f64::max)
                    });
                    SimCosts {
                        service_ms: p.total_time_ms(),
                        build_ms: build_cost_ms(bytes) + 2.0 * p.total_time_ms(),
                        exchange_ms,
                        bytes,
                        template: None,
                        batch: None,
                        error: None,
                    }
                }
                CellOutcome::Unsupported(msg) => SimCosts {
                    service_ms: 0.0,
                    build_ms: build_cost_ms(graph_bytes as u64),
                    exchange_ms: 0.0,
                    bytes: 0,
                    template: None,
                    batch: None,
                    error: Some(msg.clone()),
                },
            }
        })
        .collect()
}

/// The per-row tallies extracted from one simulated run.
struct Tally {
    ok: usize,
    err: usize,
    shed: usize,
    timeouts: usize,
    goodput_rps: f64,
    p99_ms: f64,
    slo: f64,
    availability: f64,
}

fn tally(out: &SimOutcome, slo_ms: f64) -> Tally {
    let total = out.records.len().max(1);
    let mut ok = 0usize;
    let mut err = 0usize;
    let mut shed = 0usize;
    let mut timeouts = 0usize;
    let mut within_slo = 0usize;
    let mut ok_latencies: Vec<f64> = Vec::new();
    for r in &out.records {
        match r.disposition {
            SimDisposition::Done(_) => {
                ok += 1;
                ok_latencies.push(r.latency_ms);
                if r.latency_ms <= slo_ms {
                    within_slo += 1;
                }
            }
            SimDisposition::Error | SimDisposition::Crashed => err += 1,
            SimDisposition::Rejected | SimDisposition::CircuitOpen | SimDisposition::BatchShed => {
                shed += 1
            }
            SimDisposition::TimedOut => timeouts += 1,
        }
    }
    ok_latencies.sort_by(|a, b| a.total_cmp(b));
    let p99_ms = if ok_latencies.is_empty() {
        0.0
    } else {
        let rank = ((ok_latencies.len() - 1) as f64 * 0.99).ceil() as usize;
        ok_latencies[rank]
    };
    Tally {
        ok,
        err,
        shed,
        timeouts,
        goodput_rps: if out.makespan_ms > 0.0 {
            ok as f64 / out.makespan_ms * 1000.0
        } else {
            0.0
        },
        p99_ms,
        slo: within_slo as f64 / total as f64,
        availability: ok as f64 / total as f64,
    }
}

pub(crate) fn render_chaos(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Scenario chaos",
        "seeded fault injection vs resilience policy over the serving simulation",
    );

    let costs = chaos_costs(result);

    // One fixed request stream shared by every sweep row: uniformly
    // sampled configs, open-loop arrivals at ~70% of healthy capacity
    // with jittered gaps (pure arithmetic — no transcendentals — so the
    // report is bit-stable across hosts).
    let healthy: Vec<&SimCosts> = costs.iter().filter(|c| c.error.is_none()).collect();
    let mean_service =
        healthy.iter().map(|c| c.service_ms).sum::<f64>() / healthy.len().max(1) as f64;
    let gap_ms = mean_service / (WORKERS as f64 * 0.5);
    let deadline_ms = 6.0 * mean_service;
    let slo_ms = 4.0 * mean_service;
    let stale_ttl_ms = 16.0 * mean_service;
    let cache_bytes: u64 = costs.iter().map(|c| c.bytes).sum::<u64>() + 1;

    let mut rng = SmallRng::seed_from_u64(STREAM_SEED);
    let mut keys = Vec::with_capacity(REQUESTS);
    let mut arrivals = Vec::with_capacity(REQUESTS);
    let mut t = 0.0;
    for _ in 0..REQUESTS {
        keys.push(rng.gen_range(0..costs.len()));
        t += gap_ms * (0.5 + rng.gen::<f64>());
        arrivals.push(t);
    }

    let mut table = TextTable::new(&[
        "policy",
        "faults",
        "ok",
        "err",
        "shed",
        "timeo",
        "retry",
        "trips",
        "degr",
        "goodput (rps)",
        "p99 (ms)",
        "SLO",
        "avail",
        "d-avail",
    ]);
    let mut baseline_avail = None;
    for p in policies() {
        let params = SimParams {
            workers: WORKERS,
            queue_cap: QUEUE_CAP,
            cache_bytes,
            fault: (p.rate > 0.0).then(|| FaultPlan::mixed(FAULT_SEED, p.rate)),
            resilience: ResilienceConfig {
                deadline_ms: Some(deadline_ms),
                retry: if p.retry {
                    RetryPolicy::retries(3)
                } else {
                    RetryPolicy::none()
                },
                // Tighter than the default: the error configs each see
                // only ~10 requests over the stream, so the breaker must
                // trip on a few samples to shed anything.
                breaker: p.breaker.then_some(BreakerConfig {
                    window: 8,
                    min_samples: 5,
                    fail_threshold: 0.6,
                    cooldown_ms: 1500.0,
                    half_open_probes: 1,
                }),
                degrade: p.retry,
                stale_ttl_ms: p.retry.then_some(stale_ttl_ms),
            },
        };
        let out = simulate_open(&keys, &arrivals, &costs, params);
        let row = tally(&out, slo_ms);
        let base = *baseline_avail.get_or_insert(row.availability);
        table.row_owned(vec![
            p.label.to_string(),
            pct(p.rate),
            row.ok.to_string(),
            row.err.to_string(),
            row.shed.to_string(),
            row.timeouts.to_string(),
            out.retries.to_string(),
            out.breaker_trips.to_string(),
            (out.degraded + out.stale_serves).to_string(),
            format!("{:.1}", row.goodput_rps),
            ms(row.p99_ms),
            pct(row.slo),
            pct(row.availability),
            format!("{:+.1}%", (row.availability - base) * 100.0),
        ]);
    }
    report.table(
        "chaos",
        "Fault rate x resilience policy — goodput, tail latency, availability",
        table,
    );
    report.note(format!(
        "stream: {REQUESTS} requests over {} configs ({} buildable), seed {STREAM_SEED}; \
         fault seed {FAULT_SEED}",
        costs.len(),
        healthy.len(),
    ));
    report.note(format!(
        "policy: deadline {} ms, SLO {} ms, stale TTL {} ms, {WORKERS} workers, queue {QUEUE_CAP}",
        ms(deadline_ms),
        ms(slo_ms),
        ms(stale_ttl_ms),
    ));
    report.note(
        "(replayable: fault draws are keyed on (seed, request, attempt) — \
         byte-identical for every --threads value)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_scenario_threads;

    #[test]
    fn chaos_report_is_thread_count_invariant_and_faults_fire() {
        let opts = BenchOpts::golden();
        let spec = spec_chaos();
        let serial = run_scenario_threads(&spec, &opts, 1);
        let parallel = run_scenario_threads(&spec, &opts, 4);
        let a = render_chaos(&serial, &opts).render(&opts);
        let b = render_chaos(&parallel, &opts).render(&opts);
        assert_eq!(a, b);
        // SAGE under SpMM keeps the breaker fed with real error traffic.
        let costs = chaos_costs(&serial);
        assert!(costs.iter().any(|c| c.error.is_some()));
        assert!(costs.iter().any(|c| c.exchange_ms > 0.0), "sharded cells");
    }
}
