//! The scenario registry: every paper figure/table as a named
//! [`ScenarioSpec`] plus a renderer, and beyond-paper scenarios the
//! original evaluation never ran.
//!
//! The figure binaries (`fig3` … `table4`) are one-line delegations into
//! [`run_main`]; the CLI exposes the same registry as
//! `gsuite-cli run-scenario <name>` / `--list` / `--filter`.

use gsuite_core::config::{CompModel, FrameworkKind, GnnModel};
use gsuite_core::OptLevel;
use gsuite_gpu::StallReason;
use gsuite_graph::datasets::Dataset;
use gsuite_graph::{fanout_label, GraphFormat};
use gsuite_profile::{PipelineProfile, TextTable};

use crate::opts::{ms, pct, BenchOpts};
use crate::report::Report;
use crate::runner::{run_scenario, CellOutcome, ScenarioResult};
use crate::spec::{GpuSpec, ScenarioSpec};

/// A registered scenario: a named grid spec plus its report renderer.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Registry name (also the figure-binary name where one exists).
    pub name: &'static str,
    /// One-line description shown by `--list`.
    pub about: &'static str,
    spec_fn: fn() -> ScenarioSpec,
    render_fn: fn(&ScenarioResult, &BenchOpts) -> Report,
}

impl Scenario {
    /// The scenario's grid spec.
    pub fn spec(&self) -> ScenarioSpec {
        (self.spec_fn)()
    }

    /// Runs the grid and renders its report.
    pub fn run(&self, opts: &BenchOpts) -> (ScenarioResult, Report) {
        let result = run_scenario(&self.spec(), opts);
        let report = (self.render_fn)(&result, opts);
        (result, report)
    }

    /// [`Scenario::run`] with an explicit worker count (`1` forces a
    /// serial run); output is bit-identical for every thread count.
    pub fn run_threads(&self, opts: &BenchOpts, threads: usize) -> (ScenarioResult, Report) {
        let result = crate::runner::run_scenario_threads(&self.spec(), opts, threads);
        let report = (self.render_fn)(&result, opts);
        (result, report)
    }

    /// Renders a report from an already executed result.
    pub fn render(&self, result: &ScenarioResult, opts: &BenchOpts) -> Report {
        (self.render_fn)(result, opts)
    }
}

/// Every registered scenario, in the paper's figure order followed by the
/// beyond-paper entries.
pub fn all() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "fig3",
            about: "end-to-end execution time per framework, model and dataset",
            spec_fn: spec_fig3,
            render_fn: render_fig3,
        },
        Scenario {
            name: "fig4",
            about: "kernel execution-time distribution per framework / model / dataset",
            spec_fn: spec_fig4,
            render_fn: render_fig4,
        },
        Scenario {
            name: "fig5",
            about: "instruction breakdown of the core kernels (GCN-CR, GIN-LJ)",
            spec_fn: spec_fig5,
            render_fn: render_fig5,
        },
        Scenario {
            name: "fig6",
            about: "issue-stall distribution of core kernels (cycle simulator)",
            spec_fn: spec_fig6,
            render_fn: render_fig6,
        },
        Scenario {
            name: "fig7",
            about: "warp occupancy distribution of gSuite-MP kernels (cycle simulator)",
            spec_fn: spec_fig7,
            render_fn: render_fig7,
        },
        Scenario {
            name: "fig8",
            about: "L1/L2 hit rates: analytical profiler vs cycle simulator",
            spec_fn: spec_fig8,
            render_fn: render_fig8,
        },
        Scenario {
            name: "fig9",
            about: "compute/memory utilization of gSuite-MP kernels (cycle simulator)",
            spec_fn: spec_fig9,
            render_fn: render_fig9,
        },
        Scenario {
            name: "table2",
            about: "core MP and SpMM kernel inventory (paper Table II)",
            spec_fn: spec_table2,
            render_fn: render_table2,
        },
        Scenario {
            name: "table4",
            about: "evaluation datasets and generated instances (paper Table IV)",
            spec_fn: spec_table4,
            render_fn: render_table4,
        },
        Scenario {
            name: "xmodels",
            about: "beyond-paper: all 5 models x all 5 datasets x both formats on V100",
            spec_fn: spec_xmodels,
            render_fn: render_xmodels,
        },
        Scenario {
            name: "gpusweep",
            about: "beyond-paper: GCN-MP scaling across simulated GPU sizes (4..32 SMs)",
            spec_fn: spec_gpusweep,
            render_fn: render_gpusweep,
        },
        Scenario {
            name: "serve-mix",
            about: "beyond-paper: the serving workload mix driven by gsuite-cli loadgen",
            spec_fn: spec_servemix,
            render_fn: render_servemix,
        },
        Scenario {
            name: "planopt",
            about: "beyond-paper: plan-IR optimization deltas (O0 vs O2) per model/comp/dataset",
            spec_fn: spec_planopt,
            render_fn: render_planopt,
        },
        Scenario {
            name: "multigpu",
            about:
                "beyond-paper: graph-partitioned multi-GPU scaling (1/2/4/8 shards, halo exchange)",
            spec_fn: spec_multigpu,
            render_fn: render_multigpu,
        },
        Scenario {
            name: "minibatch",
            about: "beyond-paper: seed-deterministic neighbor-sampled mini-batch inference (batch x fanout sweep, O0 vs O2 weight sharing)",
            spec_fn: spec_minibatch,
            render_fn: render_minibatch,
        },
        Scenario {
            name: "hetero",
            about: "beyond-paper: heterogeneous ogbn-mag-like graph, RGCN with one aggregation chain per typed relation",
            spec_fn: spec_hetero,
            render_fn: render_hetero,
        },
        Scenario {
            name: "chaos",
            about: "beyond-paper: seeded fault injection vs resilience policy (deadlines, retries, breaker) over the serving simulation",
            spec_fn: crate::chaos::spec_chaos,
            render_fn: crate::chaos::render_chaos,
        },
        Scenario {
            name: "servebatch",
            about: "beyond-paper: cross-request batching vs unbatched serving (goodput, tail latency, SLO) by offered rate x batch policy over an ego-net request mix",
            spec_fn: crate::servebatch::spec_servebatch,
            render_fn: crate::servebatch::render_servebatch,
        },
    ]
}

/// Finds a scenario by registry name.
pub fn find(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

/// Scenarios whose name or description contains `filter`
/// (case-insensitive).
pub fn matching(filter: &str) -> Vec<Scenario> {
    let needle = filter.to_ascii_lowercase();
    all()
        .into_iter()
        .filter(|s| {
            s.name.to_ascii_lowercase().contains(&needle)
                || s.about.to_ascii_lowercase().contains(&needle)
        })
        .collect()
}

/// The `--list` table: name, grid size at the given mode, description.
pub fn list_table(scenarios: &[Scenario], opts: &BenchOpts) -> TextTable {
    let mut table = TextTable::new(&["scenario", "cells", "description"]);
    for s in scenarios {
        let cells = s.spec().expand(opts).len();
        table.row_owned(vec![
            s.name.to_string(),
            cells.to_string(),
            s.about.to_string(),
        ]);
    }
    table
}

/// Renders the generated scenario reference (`docs/SCENARIOS.md`): one
/// markdown table row per registry entry — name, axes, expanded cell
/// count at the default mode, golden snapshot path and description.
///
/// `gsuite-cli docs-scenarios` prints this; `--write` commits it to
/// `docs/SCENARIOS.md` and CI's `--check` fails when the committed file
/// drifts from the registry.
pub fn scenario_docs(opts: &BenchOpts) -> String {
    let mut out = String::new();
    out.push_str("# Scenario reference\n\n");
    out.push_str(
        "<!-- GENERATED by `gsuite-cli docs-scenarios --write` — do not edit by hand.\n     \
         CI runs `gsuite-cli docs-scenarios --check` and fails when this file\n     \
         drifts from the registry in crates/scenarios/src/registry.rs. -->\n\n",
    );
    out.push_str(
        "Every entry is runnable as `gsuite-cli run-scenario <name> [--quick|--full]`\n\
         and locked by a byte-exact golden snapshot (see `tests/golden.rs`).\n\
         Cell counts are the default-mode grid size; axes with a single value\n\
         are collapsed.\n\n",
    );
    out.push_str("| scenario | cells | axes | golden snapshot | description |\n");
    out.push_str("|---|---|---|---|---|\n");
    for s in all() {
        let spec = s.spec();
        let cells = spec.expand(opts).len();
        let mut axes: Vec<String> = Vec::new();
        let join = |items: Vec<String>| items.join("/");
        if !spec.models.is_empty() {
            axes.push(format!(
                "models: {}",
                join(spec.models.iter().map(|m| m.to_string()).collect())
            ));
        }
        if !spec.datasets.is_empty() {
            axes.push(format!(
                "datasets: {}",
                join(
                    spec.datasets
                        .iter()
                        .map(|d| d.short().to_string())
                        .collect()
                )
            ));
        }
        if spec.frameworks.len() > 1 {
            axes.push(format!(
                "frameworks: {}",
                join(spec.frameworks.iter().map(|f| f.to_string()).collect())
            ));
        }
        if !spec.comp_models.is_empty() {
            axes.push(format!(
                "comp: {}",
                join(spec.comp_models.iter().map(|c| c.to_string()).collect())
            ));
        }
        axes.push(format!(
            "gpus: {}",
            join(spec.gpus.iter().map(|g| g.label()).collect())
        ));
        if spec.gpus_per_run != vec![1] {
            axes.push(format!(
                "shards: {} ({})",
                join(spec.gpus_per_run.iter().map(|n| n.to_string()).collect()),
                spec.partitioner.name()
            ));
        }
        if spec.opt_levels != vec![OptLevel::O0] {
            axes.push(format!(
                "opt: {}",
                join(spec.opt_levels.iter().map(|o| o.to_string()).collect())
            ));
        }
        if spec.batch_sizes != vec![0] {
            axes.push(format!(
                "batch: {}",
                join(spec.batch_sizes.iter().map(|b| b.to_string()).collect())
            ));
        }
        if spec.fanouts != vec![Vec::new()] {
            axes.push(format!(
                "fanout: {}",
                join(spec.fanouts.iter().map(|f| fanout_label(f)).collect())
            ));
        }
        if spec.restrict.is_some() {
            axes.push("restricted subset".to_string());
        }
        out.push_str(&format!(
            "| `{}` | {} | {} | `tests/golden/{}.txt` | {} |\n",
            s.name,
            cells,
            axes.join("; "),
            s.name,
            s.about
        ));
    }
    out.push_str("\nRegenerate with:\n\n```bash\ncargo run --release --bin gsuite-cli -- docs-scenarios --write\n```\n");
    out
}

/// Entry point of the figure binaries: parse the standard flags, run the
/// named scenario, print its report (and CSVs with `--csv`).
///
/// # Panics
///
/// Panics on an unknown scenario name — figure binaries hard-code names
/// the registry must contain.
pub fn run_main(name: &str) {
    let opts = BenchOpts::from_env();
    let scenario = find(name).unwrap_or_else(|| {
        let names: Vec<&str> = all().iter().map(|s| s.name).collect();
        panic!("unknown scenario {name:?} (registry: {})", names.join(", "))
    });
    let (_result, report) = scenario.run(&opts);
    report.emit(&opts);
}

fn na() -> String {
    "n/a".to_string()
}

// ---------------------------------------------------------------------------
// Fig. 3 — end-to-end execution time.
// ---------------------------------------------------------------------------

/// The four framework variants of Figs. 3/4, in column order.
const VARIANTS: [(FrameworkKind, CompModel); 4] = [
    (FrameworkKind::PygLike, CompModel::Mp),
    (FrameworkKind::DglLike, CompModel::Spmm),
    (FrameworkKind::GSuite, CompModel::Mp),
    (FrameworkKind::GSuite, CompModel::Spmm),
];

fn framework_grid(name: &'static str, title: &'static str) -> ScenarioSpec {
    ScenarioSpec {
        name,
        title,
        models: GnnModel::ALL.to_vec(),
        datasets: Dataset::ALL.to_vec(),
        frameworks: vec![
            FrameworkKind::PygLike,
            FrameworkKind::DglLike,
            FrameworkKind::GSuite,
        ],
        ..ScenarioSpec::default()
    }
}

fn spec_fig3() -> ScenarioSpec {
    framework_grid(
        "fig3",
        "end-to-end execution time (ms) per framework, model and dataset",
    )
}

fn render_fig3(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Fig. 3",
        "end-to-end execution time (ms) per framework, model and dataset",
    );
    for model in GnnModel::ALL {
        let mut table = TextTable::new(&["Dataset", "PyG", "DGL", "gSuite-MP", "gSuite-SpMM"]);
        let mut device_table =
            TextTable::new(&["Dataset", "PyG", "DGL", "gSuite-MP", "gSuite-SpMM"]);
        for dataset in Dataset::ALL {
            let mut total = vec![dataset.short().to_string()];
            let mut device = vec![dataset.short().to_string()];
            for (fw, comp) in VARIANTS {
                match result.profile_at(0, |c| {
                    c.framework == fw && c.model == model && c.comp == comp && c.dataset == dataset
                }) {
                    Some(p) => {
                        total.push(ms(p.total_time_ms()));
                        device.push(ms(p.device_time_ms()));
                    }
                    None => {
                        total.push(na());
                        device.push(na());
                    }
                }
            }
            table.row_owned(total);
            device_table.row_owned(device);
        }
        report.table(
            format!("fig3_{}", model.name().to_lowercase()),
            format!("End-to-end execution time (ms) — {model}"),
            table,
        );
        report.table(
            format!("fig3_{}_device", model.name().to_lowercase()),
            format!("Device-only time (ms) — {model} (kernel growth across datasets)"),
            device_table,
        );
    }
    report.note("shape check: PyG > DGL > gSuite on every row (init-dominated small datasets);");
    report.note("             all frameworks converge toward kernel time on RD/LJ.");
    report
}

// ---------------------------------------------------------------------------
// Fig. 4 — kernel execution-time distribution.
// ---------------------------------------------------------------------------

const KERNEL_COLUMNS: [&str; 6] = ["sgemm", "scatter", "indexSelect", "SpMM", "SpGEMM", "other"];

fn spec_fig4() -> ScenarioSpec {
    framework_grid(
        "fig4",
        "kernel execution-time distribution (%) per framework / model / dataset",
    )
}

fn render_fig4(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Fig. 4",
        "kernel execution-time distribution (%) per framework / model / dataset",
    );
    let frameworks: [(&str, FrameworkKind, CompModel); 4] = [
        ("PyG", FrameworkKind::PygLike, CompModel::Mp),
        ("DGL", FrameworkKind::DglLike, CompModel::Spmm),
        ("gSuite-MP", FrameworkKind::GSuite, CompModel::Mp),
        ("gSuite-SpMM", FrameworkKind::GSuite, CompModel::Spmm),
    ];
    for (fw_label, fw, comp) in frameworks {
        for model in GnnModel::ALL {
            // gSuite-SpMM has no SAGE (paper §V-A).
            if fw == FrameworkKind::GSuite && comp == CompModel::Spmm && model == GnnModel::Sage {
                continue;
            }
            let mut table = TextTable::new(&[
                "Dataset",
                "sgemm",
                "scatter",
                "indexSelect",
                "SpMM",
                "SpGEMM",
                "other",
            ]);
            for dataset in Dataset::ALL {
                let Some(profile) = result.profile_at(0, |c| {
                    c.framework == fw && c.model == model && c.comp == comp && c.dataset == dataset
                }) else {
                    continue;
                };
                let shares = profile.kernel_time_shares();
                let share_of = |name: &str| -> String {
                    shares
                        .iter()
                        .find(|(k, _)| k == name)
                        .map(|&(_, s)| pct(s))
                        .unwrap_or_else(|| "-".to_string())
                };
                let mut row = vec![dataset.short().to_string()];
                row.extend(KERNEL_COLUMNS.iter().map(|k| share_of(k)));
                table.row_owned(row);
            }
            report.table(
                format!(
                    "fig4_{}_{}",
                    fw_label.to_lowercase().replace('-', "_"),
                    model.name().to_lowercase()
                ),
                format!("Kernel time distribution — {fw_label}, {model}"),
                table,
            );
        }
    }
    report
}

// ---------------------------------------------------------------------------
// Fig. 5 — instruction breakdown of the core kernels.
// ---------------------------------------------------------------------------

fn spec_fig5() -> ScenarioSpec {
    ScenarioSpec {
        name: "fig5",
        title: "instruction breakdown (%) of the core kernels",
        models: vec![GnnModel::Gcn, GnnModel::Gin],
        datasets: vec![Dataset::Cora, Dataset::LiveJournal],
        // The paper shows two showcase corners of the grid: GCN on the
        // smallest dataset and GIN on the largest.
        restrict: Some(|_, model, _, dataset| {
            matches!(
                (model, dataset),
                (GnnModel::Gcn, Dataset::Cora) | (GnnModel::Gin, Dataset::LiveJournal)
            )
        }),
        ..ScenarioSpec::default()
    }
}

fn render_fig5(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header("Fig. 5", "instruction breakdown (%) of the core kernels");
    let cases: [(&str, GnnModel, Dataset, CompModel, &[&str]); 4] = [
        (
            "gSuite-MP GCN-CR",
            GnnModel::Gcn,
            Dataset::Cora,
            CompModel::Mp,
            &["sgemm", "scatter", "indexSelect"],
        ),
        (
            "gSuite-MP GIN-LJ",
            GnnModel::Gin,
            Dataset::LiveJournal,
            CompModel::Mp,
            &["sgemm", "scatter", "indexSelect"],
        ),
        (
            "gSuite-SpMM GCN-CR",
            GnnModel::Gcn,
            Dataset::Cora,
            CompModel::Spmm,
            &["SpMM", "SpGEMM", "sgemm"],
        ),
        (
            "gSuite-SpMM GIN-LJ",
            GnnModel::Gin,
            Dataset::LiveJournal,
            CompModel::Spmm,
            &["SpMM", "sgemm"],
        ),
    ];
    for (label, model, dataset, comp, kernels) in cases {
        let Some(profile) = result.profile_at(0, |c| {
            c.model == model && c.dataset == dataset && c.comp == comp
        }) else {
            continue;
        };
        let merged = profile.merged_by_kernel();
        let mut table =
            TextTable::new(&["Kernel", "FP32", "INT", "Load/Store", "Control", "other"]);
        for kernel in kernels {
            let Some(k) = merged.iter().find(|k| k.kernel == *kernel) else {
                continue;
            };
            let f = k.instr_mix.fractions();
            table.row_owned(vec![
                kernel.to_string(),
                pct(f[0].1),
                pct(f[1].1),
                pct(f[2].1),
                pct(f[3].1),
                pct(f[4].1),
            ]);
        }
        report.table(
            format!("fig5_{}", label.to_lowercase().replace([' ', '-'], "_")),
            format!("Instruction breakdown — {label}"),
            table,
        );
    }
    report.note(
        "shape check: is/sc INT-heavy (address math), sgemm FP32-heavy, stable across cases.",
    );
    report
}

// ---------------------------------------------------------------------------
// Fig. 6 — issue-stall distribution (cycle simulator).
// ---------------------------------------------------------------------------

fn spec_fig6() -> ScenarioSpec {
    ScenarioSpec {
        name: "fig6",
        title: "issue-stall distribution (%) of core kernels (cycle simulator)",
        models: GnnModel::ALL.to_vec(),
        datasets: Dataset::ALL.to_vec(),
        gpus: vec![GpuSpec::SimAuto],
        ..ScenarioSpec::default()
    }
}

fn render_fig6(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Fig. 6",
        "issue-stall distribution (%) of core kernels (cycle simulator)",
    );
    let mp_kernels = ["sgemm", "scatter", "indexSelect"];
    let spmm_kernels = ["SpMM", "SpGEMM", "sgemm"];
    let mut memdep_sum = 0.0;
    let mut memdep_n = 0usize;
    for (comp, kernels, models) in [
        (CompModel::Mp, &mp_kernels[..], &GnnModel::ALL[..]),
        (
            CompModel::Spmm,
            &spmm_kernels[..],
            &[GnnModel::Gcn, GnnModel::Gin][..],
        ),
    ] {
        for &model in models {
            let mut table = TextTable::new(&[
                "Dataset",
                "Kernel",
                "MemoryDep",
                "ExecDep",
                "InstrIssued",
                "InstrFetch",
                "Sync",
                "NotSelected",
            ]);
            for dataset in Dataset::ALL {
                let Some(profile) = result.profile_at(0, |c| {
                    c.model == model && c.comp == comp && c.dataset == dataset
                }) else {
                    continue;
                };
                let merged = profile.merged_by_kernel();
                for kernel in kernels {
                    let Some(k) = merged.iter().find(|k| k.kernel == *kernel) else {
                        continue;
                    };
                    let stalls = k.stalls.expect("sim backend reports stalls");
                    let memdep = stalls.fraction(StallReason::MemoryDependency);
                    memdep_sum += memdep;
                    memdep_n += 1;
                    table.row_owned(vec![
                        dataset.short().to_string(),
                        kernel.to_string(),
                        pct(memdep),
                        pct(stalls.fraction(StallReason::ExecutionDependency)),
                        pct(stalls.fraction(StallReason::InstructionIssued)),
                        pct(stalls.fraction(StallReason::InstructionFetch)),
                        pct(stalls.fraction(StallReason::Synchronization)),
                        pct(stalls.fraction(StallReason::NotSelected)),
                    ]);
                }
            }
            report.table(
                format!(
                    "fig6_{}_{}",
                    comp.name().to_lowercase(),
                    model.name().to_lowercase()
                ),
                format!("Issue-stall distribution — gSuite-{comp} {model}"),
                table,
            );
        }
    }
    if memdep_n > 0 {
        report.note(format!(
            "average MemoryDependency share: {} (paper: 46.3%)",
            pct(memdep_sum / memdep_n as f64)
        ));
    }
    report
}

// ---------------------------------------------------------------------------
// Fig. 7 — warp occupancy distribution (cycle simulator).
// ---------------------------------------------------------------------------

fn mp_sim_grid(name: &'static str, title: &'static str) -> ScenarioSpec {
    ScenarioSpec {
        name,
        title,
        models: GnnModel::ALL.to_vec(),
        datasets: Dataset::ALL.to_vec(),
        comp_models: vec![CompModel::Mp],
        gpus: vec![GpuSpec::SimAuto],
        ..ScenarioSpec::default()
    }
}

fn spec_fig7() -> ScenarioSpec {
    mp_sim_grid(
        "fig7",
        "warp occupancy distribution (%) of gSuite-MP kernels (cycle simulator)",
    )
}

fn render_fig7(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Fig. 7",
        "warp occupancy distribution (%) of gSuite-MP kernels (cycle simulator)",
    );
    let kernels = ["sgemm", "scatter", "indexSelect"];
    for model in GnnModel::ALL {
        let mut table = TextTable::new(&["Dataset", "Kernel", "Stall", "Idle", "W8", "W20", "W32"]);
        for dataset in Dataset::ALL {
            let Some(profile) = result.profile_at(0, |c| c.model == model && c.dataset == dataset)
            else {
                continue;
            };
            let merged = profile.merged_by_kernel();
            for kernel in kernels {
                let Some(k) = merged.iter().find(|k| k.kernel == kernel) else {
                    continue;
                };
                let occ = k.occupancy.expect("sim backend reports occupancy");
                let f = occ.fractions();
                table.row_owned(vec![
                    dataset.short().to_string(),
                    kernel.to_string(),
                    pct(f[0].1),
                    pct(f[1].1),
                    pct(f[2].1),
                    pct(f[3].1),
                    pct(f[4].1),
                ]);
            }
        }
        report.table(
            format!("fig7_{}", model.name().to_lowercase()),
            format!("Warp occupancy — gSuite-MP {model}"),
            table,
        );
    }
    report
}

// ---------------------------------------------------------------------------
// Fig. 8 — L1/L2 hit rates, analytical profiler vs cycle simulator.
// ---------------------------------------------------------------------------

fn spec_fig8() -> ScenarioSpec {
    ScenarioSpec {
        gpus: vec![GpuSpec::HwV100, GpuSpec::SimAuto],
        ..mp_sim_grid(
            "fig8",
            "L1/L2 hit rates of gSuite-MP kernels: NVProf-like vs cycle sim",
        )
    }
}

fn render_fig8(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Fig. 8",
        "L1/L2 hit rates of gSuite-MP kernels: NVProf-like vs cycle sim",
    );
    let kernels = ["sgemm", "indexSelect", "scatter"];
    let mut l1_gap_sum = 0.0;
    let mut l2_gap_sum = 0.0;
    let mut n = 0usize;
    for model in GnnModel::ALL {
        let mut table = TextTable::new(&[
            "Dataset",
            "Kernel",
            "L1 (NVProf)",
            "L1 (Sim)",
            "L2 (NVProf)",
            "L2 (Sim)",
        ]);
        for dataset in Dataset::ALL {
            let probe =
                |c: &gsuite_core::config::RunConfig| c.model == model && c.dataset == dataset;
            let (Some(hw), Some(sim)) = (result.profile_at(0, probe), result.profile_at(1, probe))
            else {
                continue;
            };
            let hw_merged = hw.merged_by_kernel();
            let sim_merged = sim.merged_by_kernel();
            for kernel in kernels {
                let (Some(h), Some(s)) = (
                    hw_merged.iter().find(|k| k.kernel == kernel),
                    sim_merged.iter().find(|k| k.kernel == kernel),
                ) else {
                    continue;
                };
                l1_gap_sum += (h.l1.hit_rate() - s.l1.hit_rate()).abs();
                l2_gap_sum += (h.l2.hit_rate() - s.l2.hit_rate()).abs();
                n += 1;
                table.row_owned(vec![
                    dataset.short().to_string(),
                    kernel.to_string(),
                    pct(h.l1.hit_rate()),
                    pct(s.l1.hit_rate()),
                    pct(h.l2.hit_rate()),
                    pct(s.l2.hit_rate()),
                ]);
            }
        }
        report.table(
            format!("fig8_{}", model.name().to_lowercase()),
            format!("L1/L2 hit rates, NVProf vs Sim — gSuite-MP {model}"),
            table,
        );
    }
    if n > 0 {
        report.note(format!(
            "mean |NVProf - Sim| gap: L1 {} vs L2 {} (paper: L1 aligns better than L2)",
            pct(l1_gap_sum / n as f64),
            pct(l2_gap_sum / n as f64)
        ));
    }
    report
}

// ---------------------------------------------------------------------------
// Fig. 9 — compute/memory utilization (cycle simulator).
// ---------------------------------------------------------------------------

fn spec_fig9() -> ScenarioSpec {
    mp_sim_grid(
        "fig9",
        "compute/memory utilization (%) of gSuite-MP kernels (cycle simulator)",
    )
}

fn render_fig9(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Fig. 9",
        "compute/memory utilization (%) of gSuite-MP kernels (cycle simulator)",
    );
    let kernels = ["sgemm", "indexSelect", "scatter"];
    for model in GnnModel::ALL {
        let mut table = TextTable::new(&["Dataset", "Kernel", "Compute", "Memory"]);
        for dataset in Dataset::ALL {
            let Some(profile) = result.profile_at(0, |c| c.model == model && c.dataset == dataset)
            else {
                continue;
            };
            let merged = profile.merged_by_kernel();
            for kernel in kernels {
                let Some(k) = merged.iter().find(|k| k.kernel == kernel) else {
                    continue;
                };
                table.row_owned(vec![
                    dataset.short().to_string(),
                    kernel.to_string(),
                    pct(k.compute_utilization),
                    pct(k.memory_utilization),
                ]);
            }
        }
        report.table(
            format!("fig9_{}", model.name().to_lowercase()),
            format!("Compute/memory utilization — gSuite-MP {model}"),
            table,
        );
    }
    report
}

// ---------------------------------------------------------------------------
// Table II — kernel inventory (static; empty grid).
// ---------------------------------------------------------------------------

fn spec_table2() -> ScenarioSpec {
    ScenarioSpec {
        name: "table2",
        title: "core MP and SpMM kernels",
        models: vec![],
        datasets: vec![],
        ..ScenarioSpec::default()
    }
}

fn render_table2(_result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header("Table II", "core MP and SpMM kernels");
    let mut table = TextTable::new(&[
        "Kernel Name",
        "Computational Model",
        "Short Form",
        "Description",
    ]);
    table.row(&[
        "indexSelect",
        "MP",
        "is",
        "Indexes the input along specified dimension by using index entries.",
    ]);
    table.row(&[
        "scatter",
        "MP",
        "sc",
        "Reduces given input based-on index vector using entries.",
    ]);
    table.row(&[
        "sgemm/GEMM",
        "SpMM",
        "sg",
        "Generalized matrix multiplication of two given matrices.",
    ]);
    table.row(&[
        "SpGEMM/GEMM",
        "SpMM",
        "sp",
        "Matrix multiplication of two sparse matrices.",
    ]);
    report.table("table2", "Core MP and SpMM kernels (paper Table II)", table);

    // Cross-check: the implemented kernel taxonomy uses the same names.
    use gsuite_core::kernels::KernelKind;
    let implemented = [
        KernelKind::IndexSelect,
        KernelKind::Scatter,
        KernelKind::Sgemm,
        KernelKind::Spmm,
        KernelKind::Spgemm,
    ];
    report.note("implemented kernels:");
    for k in implemented {
        report.note(format!("  {:<12} (short: {})", k.name(), k.short()));
    }
    report
}

// ---------------------------------------------------------------------------
// Table IV — datasets (graph census; no pipeline cells).
// ---------------------------------------------------------------------------

fn spec_table4() -> ScenarioSpec {
    ScenarioSpec {
        name: "table4",
        title: "included datasets",
        models: vec![],
        datasets: Dataset::ALL.to_vec(),
        ..ScenarioSpec::default()
    }
}

fn render_table4(result: &ScenarioResult, opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header("Table IV", "included datasets");
    let mut spec_table =
        TextTable::new(&["Dataset", "Nodes", "Feature Length", "Edges", "Short Form"]);
    for d in Dataset::ALL {
        let s = d.spec();
        spec_table.row_owned(vec![
            s.name.to_string(),
            s.nodes.to_string(),
            s.feature_len.to_string(),
            s.edges.to_string(),
            s.short.to_string(),
        ]);
    }
    report.table(
        "table4_spec",
        "Dataset specifications (paper Table IV)",
        spec_table,
    );

    let mut gen_table = TextTable::new(&[
        "Dataset",
        "Scale",
        "Nodes",
        "Edges",
        "Feature Length",
        "Avg Degree",
        "Max Degree",
    ]);
    for d in Dataset::ALL {
        let scale = opts.scale_for(d);
        let g = result
            .graph(d)
            .expect("census scenario loads every dataset");
        let st = g.stats();
        gen_table.row_owned(vec![
            d.name().to_string(),
            format!("{scale}"),
            st.nodes.to_string(),
            st.edges.to_string(),
            st.feature_len.to_string(),
            format!("{:.2}", st.avg_degree),
            st.max_degree.to_string(),
        ]);
    }
    report.table(
        "table4_generated",
        "Generated instances at the configured scale",
        gen_table,
    );
    report
}

// ---------------------------------------------------------------------------
// xmodels — beyond-paper: the full extended-model grid.
// ---------------------------------------------------------------------------

fn spec_xmodels() -> ScenarioSpec {
    ScenarioSpec {
        name: "xmodels",
        title: "extended-model grid: 5 models x 5 datasets x both formats (V100)",
        models: GnnModel::EXTENDED.to_vec(),
        datasets: Dataset::ALL.to_vec(),
        ..ScenarioSpec::default()
    }
}

fn render_xmodels(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Scenario xmodels",
        "extended-model grid: 5 models x 5 datasets x both formats (V100)",
    );
    for comp in CompModel::ALL {
        let mut table = TextTable::new(&[
            "Model",
            "Dataset",
            "Format",
            "device (ms)",
            "end-to-end (ms)",
            "top kernel",
            "L1 hit",
        ]);
        for (cell, outcome) in result.iter() {
            if cell.config.comp != comp {
                continue;
            }
            let mut row = vec![
                cell.config.model.to_string(),
                cell.config.dataset.short().to_string(),
                cell.format.to_string(),
            ];
            match outcome {
                CellOutcome::Profiled(p) => {
                    let shares = p.kernel_time_shares();
                    let top = shares
                        .first()
                        .map(|(k, s)| format!("{k} ({})", pct(*s)))
                        .unwrap_or_else(na);
                    let l1 = merged_l1(p);
                    row.extend([ms(p.device_time_ms()), ms(p.total_time_ms()), top, pct(l1)]);
                }
                CellOutcome::Unsupported(_) => {
                    row.extend([na(), na(), na(), na()]);
                }
            }
            table.row_owned(row);
        }
        report.table(
            format!("xmodels_{}", comp.name().to_lowercase()),
            format!("Extended model grid — {comp}"),
            table,
        );
    }
    let unsupported = result.cells.len() - result.profiled_count();
    report.note(format!(
        "grid: {} cells, {} profiled, {} unsupported (SAGE/GAT have no SpMM lowering)",
        result.cells.len(),
        result.profiled_count(),
        unsupported
    ));
    report
}

/// Pipeline-wide L1 hit rate (merged over kernels).
fn merged_l1(p: &PipelineProfile) -> f64 {
    let (mut acc, mut hit) = (0u64, 0u64);
    for k in &p.kernels {
        acc += k.l1.accesses;
        hit += k.l1.hits;
    }
    if acc == 0 {
        0.0
    } else {
        hit as f64 / acc as f64
    }
}

// ---------------------------------------------------------------------------
// gpusweep — beyond-paper: GPU-config scaling study.
// ---------------------------------------------------------------------------

/// The simulated SM counts of the GPU-config sweep.
const SWEEP_SMS: [usize; 4] = [4, 8, 16, 32];

fn spec_gpusweep() -> ScenarioSpec {
    ScenarioSpec {
        name: "gpusweep",
        title: "GCN-MP across simulated GPU sizes (proportional V100 scale-downs)",
        models: vec![GnnModel::Gcn],
        datasets: vec![Dataset::Cora, Dataset::PubMed],
        comp_models: vec![CompModel::Mp],
        gpus: SWEEP_SMS.iter().map(|&sms| GpuSpec::SimSms(sms)).collect(),
        ..ScenarioSpec::default()
    }
}

fn render_gpusweep(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Scenario gpusweep",
        "GCN-MP across simulated GPU sizes (proportional V100 scale-downs)",
    );
    let mut table = TextTable::new(&[
        "Dataset",
        "SMs",
        "device (ms)",
        "comp util",
        "mem util",
        "L2 hit",
    ]);
    for dataset in [Dataset::Cora, Dataset::PubMed] {
        for (gpu_index, &sms) in SWEEP_SMS.iter().enumerate() {
            let Some(p) = result.profile_at(gpu_index, |c| c.dataset == dataset) else {
                continue;
            };
            let (mut acc, mut hit) = (0u64, 0u64);
            let (mut cu, mut mu, mut t) = (0.0, 0.0, 0.0);
            for k in &p.kernels {
                acc += k.l2.accesses;
                hit += k.l2.hits;
                cu += k.compute_utilization * k.time_ms;
                mu += k.memory_utilization * k.time_ms;
                t += k.time_ms;
            }
            let l2 = if acc == 0 {
                0.0
            } else {
                hit as f64 / acc as f64
            };
            table.row_owned(vec![
                dataset.short().to_string(),
                sms.to_string(),
                ms(p.device_time_ms()),
                pct(if t > 0.0 { cu / t } else { 0.0 }),
                pct(if t > 0.0 { mu / t } else { 0.0 }),
                pct(l2),
            ]);
        }
    }
    report.table(
        "gpusweep",
        "Device scaling — GCN-MP, cycle simulator at 4/8/16/32 SMs",
        table,
    );
    report.note("shape check: device time shrinks with SM count until the small grids stop filling the machine.");
    report
}

// ---------------------------------------------------------------------------
// serve-mix — beyond-paper: the serving-layer workload universe.
// ---------------------------------------------------------------------------

fn spec_servemix() -> ScenarioSpec {
    ScenarioSpec {
        name: "serve-mix",
        title: "serving workload mix: paper models x citation datasets x both comp models (V100)",
        models: GnnModel::ALL.to_vec(),
        datasets: vec![Dataset::Cora, Dataset::CiteSeer, Dataset::PubMed],
        ..ScenarioSpec::default()
    }
}

fn render_servemix(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Scenario serve-mix",
        "serving workload mix: paper models x citation datasets x both comp models (V100)",
    );
    let mut table = TextTable::new(&[
        "Model",
        "Comp",
        "Dataset",
        "device (ms)",
        "end-to-end (ms)",
        "launches",
    ]);
    for (cell, outcome) in result.iter() {
        let mut row = vec![
            cell.config.model.to_string(),
            cell.config.comp.to_string(),
            cell.config.dataset.short().to_string(),
        ];
        match outcome {
            CellOutcome::Profiled(p) => row.extend([
                ms(p.device_time_ms()),
                ms(p.total_time_ms()),
                p.kernels.len().to_string(),
            ]),
            CellOutcome::Unsupported(_) => row.extend([na(), na(), na()]),
        }
        table.row_owned(row);
    }
    report.table(
        "serve_mix",
        "Serving workload mix — per-configuration batch profile",
        table,
    );
    report.note(format!(
        "grid: {} configs, {} buildable — the default request universe of `gsuite-cli loadgen`",
        result.cells.len(),
        result.profiled_count()
    ));
    report.note("(serve-mode profiles are bit-identical to these cells; see gsuite-serve)");
    report
}

// ---------------------------------------------------------------------------
// planopt — beyond-paper: the kernel-dataflow IR's optimization deltas.
// ---------------------------------------------------------------------------

fn spec_planopt() -> ScenarioSpec {
    ScenarioSpec {
        name: "planopt",
        title: "plan-IR optimization: launches, device time and peak device bytes, O0 vs O2",
        models: GnnModel::EXTENDED.to_vec(),
        datasets: vec![Dataset::Cora, Dataset::PubMed],
        opt_levels: vec![OptLevel::O0, OptLevel::O2],
        ..ScenarioSpec::default()
    }
}

fn render_planopt(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Scenario planopt",
        "plan-IR optimization: launches, device time and peak device bytes, O0 vs O2",
    );
    let mut table = TextTable::new(&[
        "Model",
        "Comp",
        "Dataset",
        "launches O0",
        "launches O2",
        "Δlaunch",
        "device O0 (ms)",
        "device O2 (ms)",
        "peak O0 (KiB)",
        "peak O2 (KiB)",
        "Δpeak",
    ]);
    let kib = |bytes: u64| format!("{:.1}", bytes as f64 / 1024.0);
    let (mut launches_o0, mut launches_o2) = (0usize, 0usize);
    let (mut peak_o0_sum, mut peak_o2_sum) = (0u64, 0u64);
    // Walk the executed spec's own axes so the renderer can never drift
    // from the grid (adding a dataset or model to spec_planopt is enough).
    for &model in &result.spec.models {
        for &comp in &result.spec.comp_models {
            for &dataset in &result.spec.datasets {
                let probe = |opt: OptLevel| {
                    result.profile_at(0, |c| {
                        c.model == model && c.comp == comp && c.dataset == dataset && c.opt == opt
                    })
                };
                let mut row = vec![
                    model.to_string(),
                    comp.to_string(),
                    dataset.short().to_string(),
                ];
                match (probe(OptLevel::O0), probe(OptLevel::O2)) {
                    (Some(p0), Some(p2)) => {
                        launches_o0 += p0.kernels.len();
                        launches_o2 += p2.kernels.len();
                        peak_o0_sum += p0.peak_device_bytes;
                        peak_o2_sum += p2.peak_device_bytes;
                        let dpeak = if p0.peak_device_bytes > 0 {
                            format!(
                                "-{:.1}%",
                                (p0.peak_device_bytes - p2.peak_device_bytes) as f64
                                    / p0.peak_device_bytes as f64
                                    * 100.0
                            )
                        } else {
                            na()
                        };
                        let dlaunch = p0.kernels.len() - p2.kernels.len();
                        row.extend([
                            p0.kernels.len().to_string(),
                            p2.kernels.len().to_string(),
                            if dlaunch == 0 {
                                "0".to_string()
                            } else {
                                format!("-{dlaunch}")
                            },
                            ms(p0.device_time_ms()),
                            ms(p2.device_time_ms()),
                            kib(p0.peak_device_bytes),
                            kib(p2.peak_device_bytes),
                            dpeak,
                        ]);
                    }
                    _ => row.extend([na(), na(), na(), na(), na(), na(), na(), na()]),
                }
                table.row_owned(row);
            }
        }
    }
    report.table(
        "planopt",
        "Plan optimization deltas — O0 (golden-compatible) vs O2 (fusion + hoist + memory planning)",
        table,
    );
    report.note(format!(
        "totals: {launches_o0} launches at O0 vs {launches_o2} at O2; \
         summed peak device bytes {peak_o0_sum} vs {peak_o2_sum}"
    ));
    report.note("O2 passes: elementwise fusion into sgemm, hoist/CSE of layer-invariant");
    report.note("subgraphs (SpGEMM normalization chains, degree scatters, re-uploaded");
    report.note("aggregation matrices), dead-buffer elimination, liveness-planned reuse.");
    report
}

// ---------------------------------------------------------------------------
// multigpu — beyond-paper: graph-partitioned multi-GPU scaling.
// ---------------------------------------------------------------------------

/// The shard counts of the multi-GPU scaling sweep.
const MULTIGPU_SHARDS: [usize; 4] = [1, 2, 4, 8];

fn spec_multigpu() -> ScenarioSpec {
    ScenarioSpec {
        name: "multigpu",
        title: "graph-partitioned multi-GPU scaling: paper models across 1/2/4/8 shards",
        models: GnnModel::ALL.to_vec(),
        datasets: vec![Dataset::Cora, Dataset::PubMed],
        comp_models: vec![CompModel::Mp],
        formats: vec![GraphFormat::Coo],
        gpus_per_run: MULTIGPU_SHARDS.to_vec(),
        ..ScenarioSpec::default()
    }
}

fn render_multigpu(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Scenario multigpu",
        "graph-partitioned multi-GPU scaling: paper models across 1/2/4/8 shards",
    );
    let partitioner = result
        .cells
        .first()
        .map(|c| c.config.partitioner.name())
        .unwrap_or("hash");
    let kib = |bytes: u64| format!("{:.1}", bytes as f64 / 1024.0);
    let mut table = TextTable::new(&[
        "Model",
        "Dataset",
        "Shards",
        "edge-cut",
        "halo (KiB)",
        "device (ms)",
        "speedup",
        "efficiency",
        "shard peak (KiB)",
    ]);
    // Walk the shard counts that actually executed (the spec's axis, or
    // the single value a `--shards` override collapsed it to), so forced
    // axes still render their results; the scaling baseline is the
    // smallest executed shard count (1 in the registry grid).
    let mut shard_axis: Vec<usize> = Vec::new();
    for cell in &result.cells {
        if !shard_axis.contains(&cell.config.gpus_per_run) {
            shard_axis.push(cell.config.gpus_per_run);
        }
    }
    let base_shards = shard_axis.iter().copied().min().unwrap_or(1);
    // Walk the executed spec's model/dataset axes so the renderer can
    // never drift from the grid.
    for &model in &result.spec.models {
        for &dataset in &result.spec.datasets {
            let probe = |shards: usize| {
                result.profile_at(0, |c| {
                    c.model == model && c.dataset == dataset && c.gpus_per_run == shards
                })
            };
            let t1 = probe(base_shards).map(|p| p.parallel_time_ms());
            for &shards in &shard_axis {
                let mut row = vec![
                    model.to_string(),
                    dataset.short().to_string(),
                    shards.to_string(),
                ];
                match (probe(shards), t1) {
                    (Some(p), Some(t1)) => {
                        let tn = p.parallel_time_ms();
                        let speedup = if tn > 0.0 { t1 / tn } else { 0.0 };
                        let (cut, halo, peak) = match &p.sharding {
                            Some(s) => (
                                s.edge_cut_fraction(),
                                s.halo_bytes(),
                                s.max_shard_peak_bytes(),
                            ),
                            None => (0.0, 0, p.peak_device_bytes),
                        };
                        row.extend([
                            pct(cut),
                            kib(halo),
                            ms(tn),
                            format!("{speedup:.2}x"),
                            // Efficiency relative to the baseline shard
                            // count (speedup/shards when the base is 1).
                            pct(speedup * base_shards as f64 / shards as f64),
                            kib(peak),
                        ]);
                    }
                    _ => row.extend([na(), na(), na(), na(), na(), na()]),
                }
                table.row_owned(row);
            }
        }
    }
    report.table(
        "multigpu",
        format!("Strong scaling under graph partitioning — gSuite-MP, {partitioner} partitioner, NVLink-class interconnect"),
        table,
    );
    report.note("device (ms) is the bulk-synchronous makespan: the slowest shard's kernels");
    report.note("plus its halo transfers (alpha + bytes/beta per transfer); efficiency is");
    report.note("speedup/shards. 1-shard rows take the unsharded single-GPU path and");
    report.note("reproduce the golden launch stream byte-for-byte.");
    report
}

// ---------------------------------------------------------------------------
// minibatch — beyond-paper: neighbor-sampled mini-batch inference.
// ---------------------------------------------------------------------------

/// The mini-batch sizes of the sampled-inference sweep.
const MINIBATCH_SIZES: [usize; 2] = [32, 128];

fn spec_minibatch() -> ScenarioSpec {
    ScenarioSpec {
        name: "minibatch",
        title: "neighbor-sampled mini-batch inference: batch/fanout sweep, O0 vs O2 weight sharing",
        models: vec![GnnModel::Gcn, GnnModel::Sage],
        datasets: vec![Dataset::Cora, Dataset::PubMed],
        comp_models: vec![CompModel::Mp],
        formats: vec![GraphFormat::Coo],
        opt_levels: vec![OptLevel::O0, OptLevel::O2],
        batch_sizes: MINIBATCH_SIZES.to_vec(),
        fanouts: vec![vec![5, 5], vec![10, 5]],
        ..ScenarioSpec::default()
    }
}

/// Report label for a per-layer fanout vector (empty = the `RunConfig`
/// default of 10 per hop).
fn fanout_cell(fanout: &[usize]) -> String {
    if fanout.is_empty() {
        "10/hop".to_string()
    } else {
        fanout_label(fanout)
    }
}

fn render_minibatch(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Scenario minibatch",
        "neighbor-sampled mini-batch inference: batch/fanout sweep, O0 vs O2 weight sharing",
    );
    let kib = |bytes: u64| format!("{:.1}", bytes as f64 / 1024.0);
    let mut table = TextTable::new(&[
        "Model",
        "Dataset",
        "Batch",
        "Fanout",
        "launches O0",
        "launches O2",
        "device O2 (ms)",
        "peak O0 (KiB)",
        "peak O2 (KiB)",
        "Δpeak",
    ]);
    // Walk the batch/fanout values that actually executed (the spec's
    // axes, or the single values a `--batch-size`/`--fanout` override
    // collapsed them to), so forced axes still render their results.
    let mut batch_axis: Vec<usize> = Vec::new();
    let mut fanout_axis: Vec<Vec<usize>> = Vec::new();
    for cell in &result.cells {
        if !batch_axis.contains(&cell.config.batch_size) {
            batch_axis.push(cell.config.batch_size);
        }
        if !fanout_axis.contains(&cell.config.fanout) {
            fanout_axis.push(cell.config.fanout.clone());
        }
    }
    for &model in &result.spec.models {
        for &dataset in &result.spec.datasets {
            for &batch in &batch_axis {
                for fanout in &fanout_axis {
                    let probe = |opt: OptLevel| {
                        result.profile_at(0, |c| {
                            c.model == model
                                && c.dataset == dataset
                                && c.batch_size == batch
                                && c.fanout == *fanout
                                && c.opt == opt
                        })
                    };
                    let mut row = vec![
                        model.to_string(),
                        dataset.short().to_string(),
                        batch.to_string(),
                        fanout_cell(fanout),
                    ];
                    match (probe(OptLevel::O0), probe(OptLevel::O2)) {
                        (Some(p0), Some(p2)) => {
                            let dpeak = if p0.peak_device_bytes > 0 {
                                let delta =
                                    p0.peak_device_bytes as f64 - p2.peak_device_bytes as f64;
                                format!("{:.1}%", -delta / p0.peak_device_bytes as f64 * 100.0)
                            } else {
                                na()
                            };
                            row.extend([
                                p0.kernels.len().to_string(),
                                p2.kernels.len().to_string(),
                                ms(p2.device_time_ms()),
                                kib(p0.peak_device_bytes),
                                kib(p2.peak_device_bytes),
                                dpeak,
                            ]);
                        }
                        _ => row.extend([na(), na(), na(), na(), na(), na()]),
                    }
                    table.row_owned(row);
                }
            }
        }
    }
    report.table(
        "minibatch",
        "Neighbor-sampled mini-batch inference — every batch compiled into one combined plan",
        table,
    );
    report.note("every cell samples seeded fixed-fanout ego-nets over the shuffled node");
    report.note("set and compiles all batches into one plan; at O2 the content-identity");
    report.note("CSE keeps a single resident copy of each layer's weights across batches");
    report.note("(the Δpeak column) while per-batch adjacency/index uploads rebind, and");
    report.note("fusion trims per-batch launches. A served batch_size=/fanout= request");
    report.note("replays the same sampler and plan path, so its profile is bit-identical");
    report.note("to the matching cell here.");
    report
}

// ---------------------------------------------------------------------------
// hetero — beyond-paper: heterogeneous ogbn-mag-like inference.
// ---------------------------------------------------------------------------

fn spec_hetero() -> ScenarioSpec {
    ScenarioSpec {
        name: "hetero",
        title: "heterogeneous ogbn-mag-like inference: typed-relation RGCN vs homogeneous GCN",
        models: vec![GnnModel::Rgcn, GnnModel::Gcn],
        datasets: vec![Dataset::OgbnMag],
        comp_models: vec![CompModel::Mp],
        formats: vec![GraphFormat::Coo],
        ..ScenarioSpec::default()
    }
}

fn render_hetero(result: &ScenarioResult, _opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Scenario hetero",
        "heterogeneous ogbn-mag-like inference: typed-relation RGCN vs homogeneous GCN",
    );
    let kib = |bytes: u64| format!("{:.1}", bytes as f64 / 1024.0);
    let mut table = TextTable::new(&[
        "Model",
        "Dataset",
        "launches",
        "device (ms)",
        "end-to-end (ms)",
        "top kernel",
        "peak (KiB)",
    ]);
    for (cell, outcome) in result.iter() {
        let mut row = vec![
            cell.config.model.to_string(),
            cell.config.dataset.short().to_string(),
        ];
        match outcome {
            CellOutcome::Profiled(p) => {
                let top = p
                    .kernel_time_shares()
                    .first()
                    .map(|(k, s)| format!("{k} ({})", pct(*s)))
                    .unwrap_or_else(na);
                row.extend([
                    p.kernels.len().to_string(),
                    ms(p.device_time_ms()),
                    ms(p.total_time_ms()),
                    top,
                    kib(p.peak_device_bytes),
                ]);
            }
            CellOutcome::Unsupported(_) => row.extend([na(), na(), na(), na(), na()]),
        }
        table.row_owned(row);
    }
    report.table(
        "hetero",
        "ogbn-mag-like union graph (paper/author/institution/field nodes; cites/writes/affiliated/topic relations)",
        table,
    );
    report.note("RGC lowers one gather -> scatter-sum aggregation chain per typed relation");
    report.note("plus a per-layer self transform, accumulating relation messages with axpy;");
    report.note("GCN treats the same union graph homogeneously. Both read the seeded");
    report.note("128-wide ogbn-mag-like embeddings at the mode's dataset scale.");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multigpu_reports_scaling_for_every_shard_count() {
        let (result, report) = find("multigpu").unwrap().run(&BenchOpts::golden());
        // 3 models x 2 datasets x 4 shard counts.
        assert_eq!(result.cells.len(), 24);
        assert_eq!(result.profiled_count(), 24);
        for &shards in &MULTIGPU_SHARDS {
            let p = result
                .profile_at(0, |c| {
                    c.model == GnnModel::Gcn
                        && c.dataset == Dataset::Cora
                        && c.gpus_per_run == shards
                })
                .expect("every shard count profiles");
            if shards == 1 {
                assert!(p.sharding.is_none(), "1-shard cells are unsharded");
            } else {
                let s = p.sharding.as_ref().expect("sharded profile");
                assert_eq!(s.shards.len(), shards);
                assert!(s.cut_edges > 0);
            }
        }
        let text = report.render(&BenchOpts::golden());
        assert!(text.contains("speedup"));
        assert!(text.contains("efficiency"));
        assert!(text.contains("edge-cut"));
    }

    #[test]
    fn planopt_o2_strictly_improves_gcn_spmm_and_gin() {
        // The acceptance bar of the plan-IR refactor: at O2, GCN-SpMM and
        // GIN (both computational models) launch strictly fewer kernels
        // and peak strictly lower on both datasets of the grid.
        let (result, _) = find("planopt").unwrap().run(&BenchOpts::golden());
        for (model, comp) in [
            (GnnModel::Gcn, CompModel::Spmm),
            (GnnModel::Gin, CompModel::Mp),
            (GnnModel::Gin, CompModel::Spmm),
        ] {
            for dataset in [Dataset::Cora, Dataset::PubMed] {
                let probe = |opt: OptLevel| {
                    result
                        .profile_at(0, |c| {
                            c.model == model
                                && c.comp == comp
                                && c.dataset == dataset
                                && c.opt == opt
                        })
                        .unwrap_or_else(|| panic!("{model} {comp} {dataset} {opt} profiled"))
                };
                let (p0, p2) = (probe(OptLevel::O0), probe(OptLevel::O2));
                assert!(
                    p2.kernels.len() < p0.kernels.len(),
                    "{model}-{comp} on {dataset}: O2 launches {} !< O0 {}",
                    p2.kernels.len(),
                    p0.kernels.len()
                );
                assert!(
                    p2.peak_device_bytes < p0.peak_device_bytes,
                    "{model}-{comp} on {dataset}: O2 peak {} !< O0 {}",
                    p2.peak_device_bytes,
                    p0.peak_device_bytes
                );
            }
        }
    }

    #[test]
    fn minibatch_o2_shares_weights_and_profiles_every_cell() {
        let (result, report) = find("minibatch").unwrap().run(&BenchOpts::golden());
        // 2 models x 2 datasets x 2 batch sizes x 2 fanouts x 2 opt levels.
        assert_eq!(result.cells.len(), 32);
        assert_eq!(result.profiled_count(), 32);
        for model in [GnnModel::Gcn, GnnModel::Sage] {
            for dataset in [Dataset::Cora, Dataset::PubMed] {
                let probe = |opt: OptLevel| {
                    result
                        .profile_at(0, |c| {
                            c.model == model
                                && c.dataset == dataset
                                && c.batch_size == 32
                                && c.fanout == vec![5, 5]
                                && c.opt == opt
                        })
                        .expect("cell profiled")
                };
                let (p0, p2) = (probe(OptLevel::O0), probe(OptLevel::O2));
                // O2 plans the combined-plan memory and keeps one resident
                // copy of each layer's weights across every batch.
                assert!(
                    p2.peak_device_bytes < p0.peak_device_bytes,
                    "{model} on {dataset}: O2 peak {} !< O0 {}",
                    p2.peak_device_bytes,
                    p0.peak_device_bytes
                );
                assert!(p2.kernels.len() <= p0.kernels.len());
            }
        }
        let text = report.render(&BenchOpts::golden());
        assert!(text.contains("Δpeak"));
        assert!(text.contains("5x5"));
        assert!(text.contains("10x5"));
    }

    #[test]
    fn hetero_profiles_rgcn_and_gcn_on_the_union_graph() {
        let (result, report) = find("hetero").unwrap().run(&BenchOpts::golden());
        assert_eq!(result.cells.len(), 2);
        assert_eq!(result.profiled_count(), 2);
        let rgcn = result
            .profile_at(0, |c| c.model == GnnModel::Rgcn)
            .expect("RGCN profiled");
        let gcn = result
            .profile_at(0, |c| c.model == GnnModel::Gcn)
            .expect("GCN profiled");
        // One aggregation chain per typed relation launches more kernels
        // than the single homogeneous chain.
        assert!(rgcn.kernels.len() > gcn.kernels.len());
        let text = report.render(&BenchOpts::golden());
        assert!(text.contains("RGC"));
        assert!(text.contains("cites/writes/affiliated/topic"));
    }

    #[test]
    fn registry_names_are_unique_and_findable() {
        let names: Vec<&str> = all().iter().map(|s| s.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len(), "duplicate registry names");
        for name in ["fig3", "fig9", "table4", "xmodels", "gpusweep"] {
            assert!(find(name).is_some(), "{name} missing from registry");
        }
        assert!(find("fig99").is_none());
    }

    #[test]
    fn beyond_paper_scenarios_exist() {
        // The registry must carry at least two scenarios the paper never
        // ran (ISSUE 2 acceptance criterion).
        let beyond: Vec<&str> = all()
            .iter()
            .map(|s| s.name)
            .filter(|n| !n.starts_with("fig") && !n.starts_with("table"))
            .collect();
        assert!(beyond.len() >= 2, "beyond-paper entries: {beyond:?}");
    }

    #[test]
    fn matching_filters_by_name_and_description() {
        assert_eq!(matching("fig").len(), 7);
        assert!(matching("cycle simulator").len() >= 3);
        assert!(matching("no-such-scenario").is_empty());
    }

    #[test]
    fn scenario_docs_cover_every_registry_entry() {
        let docs = scenario_docs(&BenchOpts::default());
        for s in all() {
            assert!(docs.contains(&format!("| `{}` |", s.name)), "{}", s.name);
            assert!(docs.contains(&format!("tests/golden/{}.txt", s.name)));
        }
        assert!(docs.contains("GENERATED"));
        // The multigpu entry names its shard axis and partitioner.
        assert!(docs.contains("shards: 1/2/4/8 (hash)"));
        // The minibatch entry names its batch and fanout axes.
        assert!(docs.contains("batch: 32/128"));
        assert!(docs.contains("fanout: 5x5/10x5"));
        // Deterministic: the CI drift check depends on it.
        assert_eq!(docs, scenario_docs(&BenchOpts::default()));
    }

    #[test]
    fn list_table_reports_grid_sizes() {
        let table = list_table(&all(), &BenchOpts::quick());
        assert_eq!(table.len(), all().len());
        let rendered = table.render();
        assert!(rendered.contains("fig3"));
        assert!(rendered.contains("gpusweep"));
    }

    #[test]
    fn static_scenarios_render_without_cells() {
        let opts = BenchOpts::golden();
        let (result, report) = find("table2").unwrap().run(&opts);
        assert!(result.cells.is_empty());
        let text = report.render(&opts);
        assert!(text.contains("implemented kernels:"));
        let (result, report) = find("table4").unwrap().run(&opts);
        assert!(result.cells.is_empty());
        assert_eq!(result.graphs.len(), 5);
        assert!(report.render(&opts).contains("LiveJournal"));
    }
}
