//! The `servebatch` scenario: cross-request batching over the serving
//! simulation, swept across offered rate × batch policy.
//!
//! The workload is the serving shape the tentpole targets: **ego-net
//! requests** — every request asks for one seed node's sampled
//! neighborhood under one of three GNN models, so the key universe is
//! wide (models × seed nodes), identical in-flight requests are rare
//! (request coalescing cannot absorb the load the way it does for the
//! 18-config full-graph `serve-mix` universe) and each request pays its
//! own compile unless the batch former merges it with class-mates into
//! one combined block-diagonal Plan. Per-key costs are **measured, not
//! assumed**: each ego config is built and profiled solo, then merged
//! with itself, and the two-point difference splits its service time
//! into the shared `fixed` and per-member `marginal` share the DES
//! charges merged executions (`max(fixed) + Σ marginal`).
//!
//! The renderer replays one fixed seeded request stream through
//! [`crate::sim::simulate_open_batched`] for every rate × policy pair
//! and reports goodput, tail latency, SLO attainment and the realized
//! batch-size distribution. The pipeline LRU is held at one byte:
//! requests model *distinct users*, where caching one user's compiled
//! ego pipeline never serves the next — precisely the regime where
//! cross-request batching pays and per-key caching cannot.
//!
//! Everything is pure `f64` arithmetic over fixed iteration orders —
//! the report is byte-identical across runs, hosts and `--threads`
//! values, and is locked by a golden snapshot like every other registry
//! scenario.

use gsuite_core::config::{CompModel, GnnModel, RunConfig};
use gsuite_core::pipeline::PipelineRun;
use gsuite_core::plan::batchmerge::merge_class;
use gsuite_graph::datasets::Dataset;
use gsuite_profile::TextTable;

use rand::{rngs::SmallRng, Rng, SeedableRng};

use crate::opts::{ms, pct, BenchOpts};
use crate::report::Report;
use crate::runner::ScenarioResult;
use crate::sim::{
    build_cost_ms, simulate_open_batched, BatchPolicy, SimBatch, SimCosts, SimDisposition,
    SimOutcome, SimParams,
};
use crate::spec::ScenarioSpec;

/// Seed of the synthetic request stream (key choices and arrival jitter).
const STREAM_SEED: u64 = 42;
/// Requests replayed per sweep row.
const REQUESTS: usize = 360;
/// Simulated worker threads.
const WORKERS: usize = 4;
/// Bounded queue depth.
const QUEUE_CAP: usize = 32;
/// The model axis of the ego-net universe — one merge class per model.
const BASE_MODELS: [GnnModel; 3] = [GnnModel::Gcn, GnnModel::Gin, GnnModel::Sage];
/// Distinct seed nodes per model (profiled universe = models × seeds).
const SEEDS_PER_MODEL: usize = 8;
/// Virtual-user key space: the profiled shapes tiled so each request is
/// effectively a distinct user — duplicate in-flight keys (and with
/// them request coalescing) become negligible, which is the regime
/// cross-request batching exists for.
const VIRTUAL_USERS: usize = 1440;
/// Offered load as a multiple of the unbatched serving capacity.
const RATE_MULTS: [f64; 3] = [0.6, 1.2, 2.5];

pub(crate) fn spec_servebatch() -> ScenarioSpec {
    ScenarioSpec {
        name: "servebatch",
        title: "cross-request batching: goodput and tail latency by offered rate x batch policy (ego-net mix)",
        models: vec![GnnModel::Gcn],
        datasets: vec![Dataset::Cora],
        comp_models: vec![CompModel::Mp],
        ..ScenarioSpec::default()
    }
}

/// One sweep policy row; `max_batch == 1` is the unbatched baseline
/// (locked byte-identical to [`crate::sim::simulate_open`]).
struct Policy {
    label: &'static str,
    policy: BatchPolicy,
}

fn policies(delay_ms: f64) -> Vec<Policy> {
    vec![
        Policy {
            label: "unbatched",
            policy: BatchPolicy {
                max_batch: 1,
                max_queue_delay_ms: 0.0,
                max_backlog: 0,
            },
        },
        Policy {
            label: "batch<=4",
            policy: BatchPolicy {
                max_batch: 4,
                max_queue_delay_ms: delay_ms,
                max_backlog: 0,
            },
        },
        Policy {
            label: "batch<=8",
            policy: BatchPolicy {
                max_batch: 8,
                max_queue_delay_ms: delay_ms,
                max_backlog: 0,
            },
        },
        Policy {
            label: "batch<=8 backlog 2",
            policy: BatchPolicy {
                max_batch: 8,
                max_queue_delay_ms: delay_ms,
                max_backlog: 2,
            },
        },
    ]
}

/// Builds and profiles the ego-net key universe over the scenario's
/// loaded graph: one merge group per base model, [`SEEDS_PER_MODEL`]
/// distinct seed nodes each. The solo profile gives `service_ms`; the
/// self-pair merged profile gives the two-point `fixed`/`marginal`
/// split (identical to the loadgen probe in `gsuite-serve`).
fn ego_costs(result: &ScenarioResult, opts: &BenchOpts) -> Vec<SimCosts> {
    let graph = result
        .graph(Dataset::Cora)
        .expect("the spec grid loads Cora");
    let base = &result.iter().next().expect("grid is non-empty").0.config;
    let feature_len = graph.stats().feature_len;
    let profiler = opts.hw();
    let nodes = graph.num_nodes() as u32;
    let mut costs = Vec::with_capacity(BASE_MODELS.len() * SEEDS_PER_MODEL);
    for (group, &model) in BASE_MODELS.iter().enumerate() {
        for s in 0..SEEDS_PER_MODEL {
            // Seed nodes spread deterministically over the graph.
            let seed_node = (s as u32 * 37 + group as u32 * 11) % nodes;
            let config = RunConfig {
                model,
                hidden: 8,
                seed_node: Some(seed_node),
                fanout: vec![4, 4],
                ..base.clone()
            };
            assert!(merge_class(&config).is_some(), "ego configs must merge");
            let (solo, parts) =
                PipelineRun::build_merged(graph, std::slice::from_ref(&config)).expect("ego build");
            let alone_ms = solo.profile(&profiler).total_time_ms();
            let pair = [config.clone(), config.clone()];
            let (pair_run, _) = PipelineRun::build_merged(graph, &pair).expect("pair probe");
            let pair_ms = pair_run.profile(&profiler).total_time_ms();
            let marginal_ms = (pair_ms - alone_ms).clamp(0.0, alone_ms);
            let bytes = (parts[0].nodes * (feature_len * 4 + 8) + parts[0].edges * 8 + 512) as u64;
            costs.push(SimCosts {
                service_ms: alone_ms,
                build_ms: build_cost_ms(bytes) + 2.0 * alone_ms,
                exchange_ms: 0.0,
                bytes,
                template: None,
                batch: Some(SimBatch {
                    group,
                    fixed_ms: alone_ms - marginal_ms,
                    marginal_ms,
                }),
                error: None,
            });
        }
    }
    // Tile the profiled shapes across the virtual-user key space: same
    // measured costs and merge groups, but distinct simulation keys, so
    // two users asking for the same shape are separate requests (no
    // identical-key coalescing) that the former may still merge.
    (0..VIRTUAL_USERS)
        .map(|u| costs[u % costs.len()].clone())
        .collect()
}

/// The per-row tallies extracted from one simulated run.
struct Tally {
    ok: usize,
    shed: usize,
    goodput_rps: f64,
    p99_ms: f64,
    slo: f64,
}

fn tally(out: &SimOutcome, slo_ms: f64) -> Tally {
    let total = out.records.len().max(1);
    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut within_slo = 0usize;
    let mut ok_latencies: Vec<f64> = Vec::new();
    for r in &out.records {
        match r.disposition {
            SimDisposition::Done(_) => {
                ok += 1;
                ok_latencies.push(r.latency_ms);
                if r.latency_ms <= slo_ms {
                    within_slo += 1;
                }
            }
            SimDisposition::Rejected | SimDisposition::BatchShed => shed += 1,
            _ => {}
        }
    }
    ok_latencies.sort_by(|a, b| a.total_cmp(b));
    let p99_ms = if ok_latencies.is_empty() {
        0.0
    } else {
        let rank = ((ok_latencies.len() - 1) as f64 * 0.99).ceil() as usize;
        ok_latencies[rank]
    };
    Tally {
        ok,
        shed,
        goodput_rps: if out.makespan_ms > 0.0 {
            ok as f64 / out.makespan_ms * 1000.0
        } else {
            0.0
        },
        p99_ms,
        slo: within_slo as f64 / total as f64,
    }
}

pub(crate) fn render_servebatch(result: &ScenarioResult, opts: &BenchOpts) -> Report {
    let mut report = Report::new();
    report.header(
        "Scenario servebatch",
        "offered rate x batch policy over the ego-net serving simulation",
    );

    let costs = ego_costs(result, opts);

    // Unbatched capacity: every request pays its own cold build plus
    // inference (distinct users, one-byte LRU), spread over the pool.
    let mean_work_ms =
        costs.iter().map(|c| c.build_ms + c.service_ms).sum::<f64>() / costs.len() as f64;
    let capacity_rps = WORKERS as f64 / mean_work_ms * 1000.0;
    let slo_ms = 8.0 * mean_work_ms;
    let delay_ms = 2.0 * mean_work_ms;

    let mut table = TextTable::new(&[
        "rate (rps)",
        "policy",
        "ok",
        "shed",
        "batches",
        "avg-size",
        "goodput (rps)",
        "p99 (ms)",
        "SLO",
    ]);
    for mult in RATE_MULTS {
        let rate_rps = capacity_rps * mult;
        let gap_ms = 1000.0 / rate_rps;
        // One fixed request stream per rate, shared by every policy row:
        // uniformly sampled ego keys, jittered open-loop gaps (pure
        // arithmetic — no transcendentals — so the report is bit-stable
        // across hosts).
        let mut rng = SmallRng::seed_from_u64(STREAM_SEED);
        let mut keys = Vec::with_capacity(REQUESTS);
        let mut arrivals = Vec::with_capacity(REQUESTS);
        let mut t = 0.0;
        for _ in 0..REQUESTS {
            keys.push(rng.gen_range(0..costs.len()));
            t += gap_ms * (0.5 + rng.gen::<f64>());
            arrivals.push(t);
        }
        for p in policies(delay_ms) {
            let params = SimParams::new(WORKERS, QUEUE_CAP, 1);
            let out = simulate_open_batched(&keys, &arrivals, &costs, params, p.policy);
            let row = tally(&out, slo_ms);
            let avg_size = if out.batches == 0 {
                0.0
            } else {
                out.batched_requests as f64 / out.batches as f64
            };
            table.row_owned(vec![
                format!("{rate_rps:.1}"),
                p.label.to_string(),
                row.ok.to_string(),
                row.shed.to_string(),
                out.batches.to_string(),
                format!("{avg_size:.2}"),
                format!("{:.1}", row.goodput_rps),
                ms(row.p99_ms),
                pct(row.slo),
            ]);
        }
    }
    report.table(
        "servebatch",
        "Offered rate x batch policy — goodput, tail latency, batch sizes",
        table,
    );
    report.note(format!(
        "universe: {} profiled ego-net shapes ({} models x {SEEDS_PER_MODEL} seed nodes, \
         fanout 4x4) tiled over {VIRTUAL_USERS} virtual users; stream seed {STREAM_SEED}, \
         {REQUESTS} requests per row",
        BASE_MODELS.len() * SEEDS_PER_MODEL,
        BASE_MODELS.len(),
    ));
    report.note(format!(
        "capacity model: mean per-request work {} ms (cold build + inference) over {WORKERS} \
         workers -> {capacity_rps:.1} rps unbatched; SLO {}, former delay {}",
        ms(mean_work_ms),
        ms(slo_ms),
        ms(delay_ms),
    ));
    report.note(
        "(distinct-user regime: the pipeline LRU is held at one byte, so solo requests pay \
         their own compile while merged batches share one amortized build — replayable, \
         byte-identical for every --threads value)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_scenario_threads;

    #[test]
    fn servebatch_report_is_thread_count_invariant_and_batching_wins() {
        let opts = BenchOpts::golden();
        let spec = spec_servebatch();
        let serial = run_scenario_threads(&spec, &opts, 1);
        let parallel = run_scenario_threads(&spec, &opts, 4);
        let a = render_servebatch(&serial, &opts).render(&opts);
        let b = render_servebatch(&parallel, &opts).render(&opts);
        assert_eq!(a, b);

        // The acceptance shape, asserted directly on the outcomes: at
        // the top offered rate the batch<=8 policy must at least double
        // the unbatched goodput and hold p99 within the SLO the
        // unbatched path violates.
        let costs = ego_costs(&serial, &opts);
        let mean_work_ms =
            costs.iter().map(|c| c.build_ms + c.service_ms).sum::<f64>() / costs.len() as f64;
        let capacity_rps = WORKERS as f64 / mean_work_ms * 1000.0;
        let slo_ms = 8.0 * mean_work_ms;
        let rate_rps = capacity_rps * RATE_MULTS[RATE_MULTS.len() - 1];
        let gap_ms = 1000.0 / rate_rps;
        let mut rng = SmallRng::seed_from_u64(STREAM_SEED);
        let mut keys = Vec::with_capacity(REQUESTS);
        let mut arrivals = Vec::with_capacity(REQUESTS);
        let mut t = 0.0;
        for _ in 0..REQUESTS {
            keys.push(rng.gen_range(0..costs.len()));
            t += gap_ms * (0.5 + rng.gen::<f64>());
            arrivals.push(t);
        }
        let rows = policies(2.0 * mean_work_ms);
        let solo = simulate_open_batched(
            &keys,
            &arrivals,
            &costs,
            SimParams::new(WORKERS, QUEUE_CAP, 1),
            rows[0].policy,
        );
        let batched = simulate_open_batched(
            &keys,
            &arrivals,
            &costs,
            SimParams::new(WORKERS, QUEUE_CAP, 1),
            rows[2].policy,
        );
        let (solo_t, batched_t) = (tally(&solo, slo_ms), tally(&batched, slo_ms));
        assert!(
            batched_t.goodput_rps >= 2.0 * solo_t.goodput_rps,
            "batched {:.1} rps vs unbatched {:.1} rps",
            batched_t.goodput_rps,
            solo_t.goodput_rps,
        );
        assert!(solo_t.slo < 0.99, "unbatched must miss the SLO at overload");
        assert!(batched_t.slo >= 0.99, "batched must hold the SLO");
    }
}
