//! The declarative scenario grid: a [`ScenarioSpec`] names the axes of an
//! experiment (models × datasets × formats × computational models × GPU
//! configs × frameworks) and expands into the cross-product of concrete
//! [`RunConfig`]s, applying the suite's validity rules in one place.

use gsuite_core::config::{CompModel, FrameworkKind, GnnModel, RunConfig};
use gsuite_core::OptLevel;
use gsuite_graph::datasets::Dataset;
use gsuite_graph::{GraphFormat, PartitionStrategy};
use gsuite_profile::{Profiler, SimProfiler};

use crate::opts::BenchOpts;

/// The GPU/backend configuration axis of a scenario — which device model
/// measures each cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuSpec {
    /// The analytical V100 model (the `nvprof` stand-in), CTA cap from the
    /// mode policy.
    HwV100,
    /// The cycle simulator under the per-dataset device policy
    /// ([`BenchOpts::sim_for`]): full 80-SM V100 for the citation graphs,
    /// a 16-SM proportional scale-down for Reddit/LiveJournal.
    SimAuto,
    /// The cycle simulator on a V100 proportionally scaled to a fixed SM
    /// count — the GPU-config sweep axis.
    SimSms(usize),
}

impl GpuSpec {
    /// Short label used in reports (e.g. `"V100-hw"`, `"sim-8sm"`).
    pub fn label(self) -> String {
        match self {
            GpuSpec::HwV100 => "V100-hw".to_string(),
            GpuSpec::SimAuto => "sim-auto".to_string(),
            GpuSpec::SimSms(sms) => format!("sim-{sms}sm"),
        }
    }

    /// Wire-format name used by the serving protocol (`"hw"`, `"sim"`,
    /// `"sim:8"`) — the inverse of [`GpuSpec::parse`].
    pub fn proto_name(self) -> String {
        match self {
            GpuSpec::HwV100 => "hw".to_string(),
            GpuSpec::SimAuto => "sim".to_string(),
            GpuSpec::SimSms(sms) => format!("sim:{sms}"),
        }
    }

    /// Parses a backend name: `hw`/`v100` → the analytical V100,
    /// `sim`/`auto` → the per-dataset simulator policy, `sim:<sms>` (or
    /// the report label `sim-<sms>sm`) → a fixed-size simulated device.
    pub fn parse(s: &str) -> Option<GpuSpec> {
        match s.to_ascii_lowercase().as_str() {
            "hw" | "v100" | "v100-hw" => Some(GpuSpec::HwV100),
            "sim" | "auto" | "sim-auto" => Some(GpuSpec::SimAuto),
            other => {
                let sms = other.strip_prefix("sim:").or_else(|| {
                    other
                        .strip_prefix("sim-")
                        .and_then(|r| r.strip_suffix("sm"))
                })?;
                sms.parse().ok().filter(|&n| n > 0).map(GpuSpec::SimSms)
            }
        }
    }

    /// Instantiates the backend for one cell (the dataset steers the
    /// [`GpuSpec::SimAuto`] device policy).
    pub fn profiler(self, opts: &BenchOpts, dataset: Dataset) -> Box<dyn Profiler + Send + Sync> {
        match self {
            GpuSpec::HwV100 => Box::new(opts.hw()),
            GpuSpec::SimAuto => Box::new(opts.sim_for(dataset)),
            GpuSpec::SimSms(sms) => {
                let max_ctas = opts.cap_ctas(if opts.quick { 256 } else { 4096 });
                Box::new(SimProfiler::scaled(sms.clamp(1, 80)).max_ctas(Some(max_ctas)))
            }
        }
    }
}

/// How a scenario picks per-dataset scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScalePolicy {
    /// The mode-dependent policy of [`BenchOpts::scale_for`] (the paper's
    /// methodology: citation graphs full-size, Reddit/LiveJournal sampled).
    Paper,
    /// One fixed scale for every dataset.
    Fixed(f64),
}

/// An optional cell filter: scenarios whose figures run a *subset* of the
/// cross-product (e.g. Fig. 5's two showcase corners) restrict expansion
/// with a plain predicate over the cell coordinates.
pub type CellFilter = fn(FrameworkKind, GnnModel, CompModel, Dataset) -> bool;

/// A declarative experiment grid.
///
/// Expansion walks the axes in a fixed nested order — GPU config, model,
/// framework, computational model (with its graph formats), dataset — so
/// cell order is deterministic and independent of how the spec was built.
/// Two validity rules apply during expansion:
///
/// * a framework with a forced computational model (PyG → MP, DGL → SpMM)
///   contributes cells only under that model;
/// * a computational model only pairs with graph formats it can consume
///   (MP reads the COO edge index; SpMM reads CSR/CSC adjacency).
///
/// Combinations the suite cannot build (gSuite SAGE/GAT under SpMM) stay
/// in the grid and surface as [`crate::runner::CellOutcome::Unsupported`],
/// so renderers can print `n/a` exactly where the paper's figures do.
///
/// # Example
///
/// ```
/// use gsuite_core::config::{CompModel, FrameworkKind, GnnModel};
/// use gsuite_graph::datasets::Dataset;
/// use gsuite_scenarios::{BenchOpts, GpuSpec, ScenarioSpec};
///
/// // Two models × two datasets × both computational models on the
/// // analytical V100 — 8 coordinate tuples, 8 cells (gSuite supports
/// // every pair here).
/// let spec = ScenarioSpec {
///     name: "example",
///     title: "doc example",
///     models: vec![GnnModel::Gcn, GnnModel::Gin],
///     datasets: vec![Dataset::Cora, Dataset::PubMed],
///     ..ScenarioSpec::default()
/// };
/// let cells = spec.expand(&BenchOpts::quick());
/// assert_eq!(cells.len(), 8);
/// assert!(cells.iter().all(|c| c.config.framework == FrameworkKind::GSuite));
/// // MP cells carry the COO edge-index format, SpMM cells CSR.
/// assert!(cells.iter().any(|c| c.config.comp == CompModel::Spmm));
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Registry name (`"fig3"`, `"xmodels"`, ...).
    pub name: &'static str,
    /// Human title used in the report header.
    pub title: &'static str,
    /// GNN model axis.
    pub models: Vec<GnnModel>,
    /// Dataset axis (Table IV).
    pub datasets: Vec<Dataset>,
    /// Graph-format axis; each computational model pairs only with the
    /// formats it consumes (MP ↔ COO, SpMM ↔ CSR/CSC).
    pub formats: Vec<GraphFormat>,
    /// Computational-model axis (paper §II-A).
    pub comp_models: Vec<CompModel>,
    /// GPU/backend axis.
    pub gpus: Vec<GpuSpec>,
    /// Dataset scale policy.
    pub scale: ScalePolicy,
    /// Hidden width of every layer.
    pub hidden: usize,
    /// GNN layer count.
    pub layers: usize,
    /// Executing-framework axis.
    pub frameworks: Vec<FrameworkKind>,
    /// Weight seed shared by every cell.
    pub seed: u64,
    /// Plan-optimization-level axis (default `[O0]`, the
    /// golden-compatible mode; the `planopt` scenario sweeps O0 vs O2).
    /// [`crate::BenchOpts::opt_override`] (the CLI's `--opt`) replaces
    /// the whole axis.
    pub opt_levels: Vec<OptLevel>,
    /// Modeled-device (shard) count axis (default `[1]`, the single-GPU
    /// golden-compatible path; the `multigpu` scenario sweeps 1/2/4/8).
    /// [`crate::BenchOpts::shards_override`] (the CLI's `--shards`)
    /// replaces the whole axis.
    pub gpus_per_run: Vec<usize>,
    /// Graph-partition strategy for sharded cells (default hash;
    /// [`crate::BenchOpts::partitioner_override`], the CLI's
    /// `--partitioner`, overrides it).
    pub partitioner: PartitionStrategy,
    /// Mini-batch-size axis (default `[0]` — full-graph inference, the
    /// golden-compatible path; the `minibatch` scenario sweeps real batch
    /// sizes). [`crate::BenchOpts::batch_size_override`] (the CLI's
    /// `--batch-size`) replaces the whole axis.
    pub batch_sizes: Vec<usize>,
    /// Per-layer neighbor-fanout axis for sampled cells (default
    /// `[vec![]]` — the `RunConfig` default of 10 per hop; ignored by
    /// full-graph cells). [`crate::BenchOpts::fanout_override`] (the
    /// CLI's `--fanout`) replaces the whole axis.
    pub fanouts: Vec<Vec<usize>>,
    /// Optional restriction to a subset of the cross-product.
    pub restrict: Option<CellFilter>,
}

impl Default for ScenarioSpec {
    /// A single-axis default: gSuite on the analytical V100, both
    /// computational models with their canonical formats, paper scale
    /// policy, 2×16 layers — mirroring [`crate::opts::sweep_config`].
    fn default() -> Self {
        ScenarioSpec {
            name: "unnamed",
            title: "unnamed scenario",
            models: vec![GnnModel::Gcn],
            datasets: vec![Dataset::Cora],
            formats: vec![GraphFormat::Coo, GraphFormat::Csr],
            comp_models: vec![CompModel::Mp, CompModel::Spmm],
            gpus: vec![GpuSpec::HwV100],
            scale: ScalePolicy::Paper,
            hidden: 16,
            layers: 2,
            frameworks: vec![FrameworkKind::GSuite],
            seed: 42,
            opt_levels: vec![OptLevel::O0],
            gpus_per_run: vec![1],
            partitioner: PartitionStrategy::Hash,
            batch_sizes: vec![0],
            fanouts: vec![Vec::new()],
            restrict: None,
        }
    }
}

/// One expanded grid cell: the coordinates plus the concrete [`RunConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioCell {
    /// Index into [`ScenarioSpec::gpus`].
    pub gpu_index: usize,
    /// The GPU/backend coordinate.
    pub gpu: GpuSpec,
    /// The graph format this cell's pipeline consumes.
    pub format: GraphFormat,
    /// The fully resolved run configuration.
    pub config: RunConfig,
}

impl ScenarioCell {
    /// A compact cell label for generic reports, e.g.
    /// `"GCN SpMM/CSR on Cora [V100-hw]"`.
    pub fn label(&self) -> String {
        format!(
            "{} {}/{} on {} [{}]",
            self.config.model,
            self.config.comp.name(),
            self.format,
            self.config.dataset,
            self.gpu.label()
        )
    }
}

/// Whether a computational model can consume a graph format (paper §II-D:
/// MP reads the COO edge index, SpMM reads compressed sparse adjacency).
pub fn format_feeds_comp(format: GraphFormat, comp: CompModel) -> bool {
    match comp {
        CompModel::Mp => format == GraphFormat::Coo,
        CompModel::Spmm => matches!(format, GraphFormat::Csr | GraphFormat::Csc),
    }
}

impl ScenarioSpec {
    /// The optimization levels this expansion walks: the CLI's `--opt`
    /// override when present, the spec's axis otherwise.
    fn opt_axis(&self, opts: &BenchOpts) -> Vec<OptLevel> {
        match opts.opt_override {
            Some(level) => vec![level],
            None => self.opt_levels.clone(),
        }
    }

    /// The shard counts this expansion walks: the CLI's `--shards`
    /// override when present, the spec's axis otherwise.
    fn shards_axis(&self, opts: &BenchOpts) -> Vec<usize> {
        match opts.shards_override {
            Some(shards) => vec![shards],
            None => self.gpus_per_run.clone(),
        }
    }

    /// The mini-batch sizes this expansion walks: the CLI's
    /// `--batch-size` override when present, the spec's axis otherwise.
    fn batch_axis(&self, opts: &BenchOpts) -> Vec<usize> {
        match opts.batch_size_override {
            Some(batch) => vec![batch],
            None => self.batch_sizes.clone(),
        }
    }

    /// The fanout vectors this expansion walks: the CLI's `--fanout`
    /// override when present, the spec's axis otherwise.
    fn fanout_axis(&self, opts: &BenchOpts) -> Vec<Vec<usize>> {
        match &opts.fanout_override {
            Some(fanout) => vec![fanout.clone()],
            None => self.fanouts.clone(),
        }
    }

    /// Expands the spec into its ordered cell grid (see the type-level
    /// docs for the walk order and validity rules).
    pub fn expand(&self, opts: &BenchOpts) -> Vec<ScenarioCell> {
        let partitioner = opts.partitioner_override.unwrap_or(self.partitioner);
        let mut cells = Vec::new();
        for (gpu_index, &gpu) in self.gpus.iter().enumerate() {
            for &opt in &self.opt_axis(opts) {
                for &shards in &self.shards_axis(opts) {
                    for &batch_size in &self.batch_axis(opts) {
                        for fanout in &self.fanout_axis(opts) {
                            for &model in &self.models {
                                for &framework in &self.frameworks {
                                    for &comp in &self.comp_models {
                                        if let Some(forced) = framework.forced_comp() {
                                            if comp != forced {
                                                continue;
                                            }
                                        }
                                        for &format in &self.formats {
                                            if !format_feeds_comp(format, comp) {
                                                continue;
                                            }
                                            for &dataset in &self.datasets {
                                                if let Some(keep) = self.restrict {
                                                    if !keep(framework, model, comp, dataset) {
                                                        continue;
                                                    }
                                                }
                                                let scale = match self.scale {
                                                    ScalePolicy::Paper => opts.scale_for(dataset),
                                                    ScalePolicy::Fixed(s) => s,
                                                };
                                                cells.push(ScenarioCell {
                                                    gpu_index,
                                                    gpu,
                                                    format,
                                                    config: RunConfig {
                                                        model,
                                                        comp,
                                                        dataset,
                                                        scale,
                                                        layers: self.layers,
                                                        hidden: self.hidden,
                                                        framework,
                                                        seed: self.seed,
                                                        functional_math: false,
                                                        opt,
                                                        gpus_per_run: shards.max(1),
                                                        partitioner,
                                                        batch_size,
                                                        fanout: fanout.clone(),
                                                        seed_node: None,
                                                    },
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }

    /// The unique `(dataset, scale)` pairs the grid touches, in first-seen
    /// order — the keys of the runner's memoized graph cache. Includes
    /// every spec dataset even when the model axis is empty (the
    /// dataset-census scenarios, e.g. Table IV, have no pipeline cells but
    /// still need their graphs).
    pub fn graph_keys(&self, opts: &BenchOpts) -> Vec<(Dataset, f64)> {
        let mut keys: Vec<(Dataset, f64)> = Vec::new();
        for &dataset in &self.datasets {
            let scale = match self.scale {
                ScalePolicy::Paper => opts.scale_for(dataset),
                ScalePolicy::Fixed(s) => s,
            };
            if !keys
                .iter()
                .any(|&(d, s)| d == dataset && s.to_bits() == scale.to_bits())
            {
                keys.push((dataset, scale));
            }
        }
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_spec() -> ScenarioSpec {
        ScenarioSpec {
            models: vec![GnnModel::Gcn, GnnModel::Sage],
            datasets: vec![Dataset::Cora, Dataset::PubMed],
            frameworks: vec![
                FrameworkKind::PygLike,
                FrameworkKind::DglLike,
                FrameworkKind::GSuite,
            ],
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn forced_comp_prunes_baseline_cells() {
        let cells = grid_spec().expand(&BenchOpts::quick());
        // Per model/dataset: PyG-MP, DGL-SpMM, gSuite-MP, gSuite-SpMM = 4.
        assert_eq!(cells.len(), 2 * 2 * 4);
        assert!(!cells.iter().any(|c| {
            c.config.framework == FrameworkKind::PygLike && c.config.comp == CompModel::Spmm
        }));
        assert!(!cells.iter().any(|c| {
            c.config.framework == FrameworkKind::DglLike && c.config.comp == CompModel::Mp
        }));
    }

    #[test]
    fn formats_pair_with_their_comp_model() {
        let cells = grid_spec().expand(&BenchOpts::quick());
        for c in &cells {
            assert!(format_feeds_comp(c.format, c.config.comp), "{}", c.label());
        }
        // Restricting the format axis restricts the comp axis with it.
        let csr_only = ScenarioSpec {
            formats: vec![GraphFormat::Csr],
            ..grid_spec()
        };
        let cells = csr_only.expand(&BenchOpts::quick());
        assert!(cells.iter().all(|c| c.config.comp == CompModel::Spmm));
    }

    #[test]
    fn expansion_order_is_deterministic() {
        let opts = BenchOpts::quick();
        assert_eq!(grid_spec().expand(&opts), grid_spec().expand(&opts));
    }

    #[test]
    fn scale_policies_resolve() {
        let opts = BenchOpts::quick();
        let paper = grid_spec().expand(&opts);
        assert!(paper
            .iter()
            .all(|c| c.config.scale == opts.scale_for(c.config.dataset)));
        let fixed = ScenarioSpec {
            scale: ScalePolicy::Fixed(0.25),
            ..grid_spec()
        }
        .expand(&opts);
        assert!(fixed.iter().all(|c| c.config.scale == 0.25));
    }

    #[test]
    fn restrict_filters_the_cross_product() {
        let spec = ScenarioSpec {
            restrict: Some(|_, model, _, dataset| {
                (model, dataset) == (GnnModel::Gcn, Dataset::Cora)
            }),
            ..grid_spec()
        };
        let cells = spec.expand(&BenchOpts::quick());
        assert!(!cells.is_empty());
        assert!(cells
            .iter()
            .all(|c| c.config.model == GnnModel::Gcn && c.config.dataset == Dataset::Cora));
    }

    #[test]
    fn graph_keys_dedup_and_cover_empty_grids() {
        let opts = BenchOpts::quick();
        let keys = grid_spec().graph_keys(&opts);
        assert_eq!(keys.len(), 2);
        // A census spec (no models) still lists its graphs.
        let census = ScenarioSpec {
            models: vec![],
            datasets: Dataset::ALL.to_vec(),
            ..ScenarioSpec::default()
        };
        assert!(census.expand(&opts).is_empty());
        assert_eq!(census.graph_keys(&opts).len(), 5);
    }

    #[test]
    fn gpu_labels() {
        assert_eq!(GpuSpec::HwV100.label(), "V100-hw");
        assert_eq!(GpuSpec::SimSms(8).label(), "sim-8sm");
        assert_eq!(GpuSpec::SimAuto.label(), "sim-auto");
    }

    #[test]
    fn gpu_parse_round_trips() {
        for gpu in [GpuSpec::HwV100, GpuSpec::SimAuto, GpuSpec::SimSms(8)] {
            assert_eq!(GpuSpec::parse(&gpu.proto_name()), Some(gpu));
            assert_eq!(GpuSpec::parse(&gpu.label()), Some(gpu));
        }
        assert_eq!(GpuSpec::parse("V100"), Some(GpuSpec::HwV100));
        assert_eq!(GpuSpec::parse("sim:16"), Some(GpuSpec::SimSms(16)));
        assert_eq!(GpuSpec::parse("sim:0"), None);
        assert_eq!(GpuSpec::parse("tpu"), None);
        assert_eq!(GpuSpec::parse("sim:x"), None);
    }
}
