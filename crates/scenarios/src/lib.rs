//! # gsuite-scenarios
//!
//! The scenario engine: the paper's central claim — *any* GNN layer ×
//! dataset × graph format × GPU configuration is a runnable inference
//! experiment — as a first-class, data-driven subsystem.
//!
//! A [`ScenarioSpec`] declares the axes of an experiment grid; the runner
//! expands it into the cross-product of concrete `RunConfig`s, loads each
//! distinct graph once (memoized cache), builds each distinct pipeline
//! once, and fans the profiling grid across CPU cores with bit-identical,
//! thread-count-independent results. The [`registry`] names one spec +
//! renderer per paper figure (`fig3` … `fig9`, `table2`, `table4`) plus
//! beyond-paper scenarios (`xmodels`, `gpusweep`), and every figure binary
//! in `gsuite-bench` is a one-line delegation into it.
//!
//! ```text
//! gsuite-cli run-scenario --list          # what's in the registry
//! gsuite-cli run-scenario fig5 --quick    # one figure, tiny scales
//! gsuite-cli run-scenario xmodels --csv out/
//! ```
//!
//! The golden-profile regression suite (`tests/golden.rs` at the workspace
//! root) renders every registry scenario in a fixed small mode
//! ([`BenchOpts::golden`]) and diffs the reports against committed
//! snapshots, locking the reproduction's numbers against drift.
//!
//! # Example
//!
//! ```
//! use gsuite_core::config::GnnModel;
//! use gsuite_graph::datasets::Dataset;
//! use gsuite_scenarios::{run_scenario, BenchOpts, ScenarioSpec};
//!
//! let spec = ScenarioSpec {
//!     name: "doc",
//!     title: "GCN across two datasets",
//!     models: vec![GnnModel::Gcn],
//!     datasets: vec![Dataset::Cora, Dataset::CiteSeer],
//!     ..ScenarioSpec::default()
//! };
//! let result = run_scenario(&spec, &BenchOpts::golden());
//! assert_eq!(result.cells.len(), 4); // 2 datasets x {MP/COO, SpMM/CSR}
//! assert_eq!(result.profiled_count(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod chaos;
mod opts;
pub mod registry;
mod report;
pub mod resilience;
mod runner;
mod servebatch;
pub mod sim;
mod spec;
pub mod trace;

pub use cache::{ByteLru, LruStats};
pub use opts::{gsuite_pairs, ms, par_sweep, pct, profile_pipeline, sweep_config, BenchOpts};
pub use report::{Report, ReportItem};
pub use runner::{run_scenario, run_scenario_threads, CellOutcome, ScenarioResult};
pub use sim::CacheDisposition;
pub use spec::{format_feeds_comp, CellFilter, GpuSpec, ScalePolicy, ScenarioCell, ScenarioSpec};
