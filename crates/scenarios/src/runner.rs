//! The scenario runner: expands a spec, builds every distinct graph and
//! pipeline exactly once (memoized caches), and fans the profiling grid
//! across CPU cores through the deterministic `gsuite-par` primitives.

use std::sync::Arc;

use gsuite_core::config::RunConfig;
use gsuite_core::pipeline::PipelineRun;
use gsuite_core::plan::template::TemplateCache;
use gsuite_core::CoreError;
use gsuite_graph::datasets::Dataset;
use gsuite_graph::Graph;
use gsuite_profile::PipelineProfile;

use crate::opts::BenchOpts;
use crate::spec::{ScenarioCell, ScenarioSpec};

/// What happened to one grid cell.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// The cell ran; its profile.
    Profiled(PipelineProfile),
    /// The suite cannot build this combination (e.g. gSuite SAGE under
    /// SpMM, paper §V-A); the build error message.
    Unsupported(String),
}

impl CellOutcome {
    /// The profile, if the cell ran.
    pub fn profile(&self) -> Option<&PipelineProfile> {
        match self {
            CellOutcome::Profiled(p) => Some(p),
            CellOutcome::Unsupported(_) => None,
        }
    }
}

/// A fully executed scenario: the ordered cells, one outcome per cell, and
/// the shared graph cache (kept so dataset-census renderers like Table IV
/// can report graph statistics without reloading).
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The spec that produced this run.
    pub spec: ScenarioSpec,
    /// Expanded cells, in expansion order.
    pub cells: Vec<ScenarioCell>,
    /// One outcome per cell, same order.
    pub outcomes: Vec<CellOutcome>,
    /// The memoized `(dataset, scale) -> graph` cache, in first-load order.
    pub graphs: Vec<((Dataset, f64), Arc<Graph>)>,
}

impl ScenarioResult {
    /// The cached graph of `dataset` (first matching scale), if loaded.
    pub fn graph(&self, dataset: Dataset) -> Option<&Graph> {
        self.graphs
            .iter()
            .find(|((d, _), _)| *d == dataset)
            .map(|(_, g)| g.as_ref())
    }

    /// Looks up the outcome of the cell with the given coordinates on GPU
    /// axis `gpu_index`.
    pub fn outcome_at(
        &self,
        gpu_index: usize,
        probe: impl Fn(&RunConfig) -> bool,
    ) -> Option<&CellOutcome> {
        self.cells
            .iter()
            .position(|c| c.gpu_index == gpu_index && probe(&c.config))
            .map(|i| &self.outcomes[i])
    }

    /// The profile of the first cell matching `probe` on GPU axis
    /// `gpu_index`, or `None` when absent or unsupported.
    pub fn profile_at(
        &self,
        gpu_index: usize,
        probe: impl Fn(&RunConfig) -> bool,
    ) -> Option<&PipelineProfile> {
        self.outcome_at(gpu_index, probe).and_then(|o| o.profile())
    }

    /// Iterates `(cell, outcome)` pairs in grid order.
    pub fn iter(&self) -> impl Iterator<Item = (&ScenarioCell, &CellOutcome)> {
        self.cells.iter().zip(self.outcomes.iter())
    }

    /// Number of cells that actually profiled.
    pub fn profiled_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.profile().is_some())
            .count()
    }
}

/// Runs a scenario with the default worker count (`GSUITE_THREADS`
/// overrides; see [`gsuite_par::default_threads`]).
pub fn run_scenario(spec: &ScenarioSpec, opts: &BenchOpts) -> ScenarioResult {
    run_scenario_threads(spec, opts, gsuite_par::default_threads())
}

/// [`run_scenario`] with an explicit worker count (`1` forces a serial
/// run). Output is **bit-identical** for every thread count — graph loads,
/// pipeline builds and profiles all flow through order-preserving
/// [`gsuite_par::par_map_threads`] — a property `tests/determinism.rs`
/// locks in.
pub fn run_scenario_threads(
    spec: &ScenarioSpec,
    opts: &BenchOpts,
    threads: usize,
) -> ScenarioResult {
    let cells = spec.expand(opts);

    // Phase 1 — graph cache: load each unique (dataset, scale) once, in
    // parallel. Every cell of the grid shares these instances.
    let graph_keys = spec.graph_keys(opts);
    let graphs: Vec<((Dataset, f64), Arc<Graph>)> = graph_keys
        .iter()
        .zip(gsuite_par::par_map_threads(
            &graph_keys,
            threads,
            |_, &(d, s)| Arc::new(d.load_scaled(s)),
        ))
        .map(|(&key, graph)| (key, graph))
        .collect();
    let graph_for = |cfg: &RunConfig| -> &Graph {
        graphs
            .iter()
            .find(|((d, s), _)| *d == cfg.dataset && s.to_bits() == cfg.scale.to_bits())
            .map(|(_, g)| g.as_ref())
            .expect("expansion only references spec datasets")
    };

    // Phase 2 — pipeline cache: cells differing only in GPU config share
    // one build. Key = the full RunConfig (everything the build consumes).
    let mut pipe_keys: Vec<RunConfig> = Vec::new();
    let cell_pipe: Vec<usize> = cells
        .iter()
        .map(
            |cell| match pipe_keys.iter().position(|k| *k == cell.config) {
                Some(i) => i,
                None => {
                    pipe_keys.push(cell.config.clone());
                    pipe_keys.len() - 1
                }
            },
        )
        .collect();
    // A scenario-wide plan-template cache: builds that share a compile
    // shape (e.g. cells differing only in the profiled GPU or the
    // sampling axis) lower/optimize/decorate once and instantiate the
    // cached plan thereafter — bit-identical by construction.
    let templates = TemplateCache::new();
    let pipelines: Vec<Result<Arc<PipelineRun>, String>> =
        gsuite_par::par_map_threads(&pipe_keys, threads, |_, cfg| {
            match PipelineRun::build_with_templates(graph_for(cfg), cfg, &templates) {
                Ok(run) => Ok(Arc::new(run)),
                // Known suite boundary (e.g. gSuite SAGE/GAT under SpMM):
                // the cell stays in the grid and renders as `n/a`.
                Err(e @ CoreError::UnsupportedCombination { .. }) => Err(e.to_string()),
                // Anything else is a real regression — fail as loudly as
                // the pre-refactor harness did.
                Err(e) => panic!("cannot build {}: {e}", cfg.label()),
            }
        });

    // Phase 3 — profile every cell in parallel, results in grid order.
    let indexed: Vec<(usize, &ScenarioCell)> = cell_pipe.iter().copied().zip(&cells).collect();
    let outcomes = gsuite_par::par_map_threads(&indexed, threads, |_, &(pipe, cell)| {
        match &pipelines[pipe] {
            Ok(run) => {
                let profiler = cell.gpu.profiler(opts, cell.config.dataset);
                CellOutcome::Profiled(run.profile(profiler.as_ref()))
            }
            Err(msg) => CellOutcome::Unsupported(msg.clone()),
        }
    });

    ScenarioResult {
        spec: spec.clone(),
        cells,
        outcomes,
        graphs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;
    use gsuite_core::config::{CompModel, FrameworkKind, GnnModel};

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "tiny",
            title: "runner unit grid",
            models: vec![GnnModel::Gcn, GnnModel::Sage],
            datasets: vec![Dataset::Cora],
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn unsupported_cells_survive_as_outcomes() {
        let result = run_scenario(&tiny_spec(), &BenchOpts::golden());
        // GCN-MP, GCN-SpMM, SAGE-MP profiled; SAGE-SpMM unsupported.
        assert_eq!(result.cells.len(), 4);
        assert_eq!(result.profiled_count(), 3);
        let sage_spmm = result
            .outcome_at(0, |c| {
                c.model == GnnModel::Sage && c.comp == CompModel::Spmm
            })
            .unwrap();
        assert!(matches!(sage_spmm, CellOutcome::Unsupported(_)));
    }

    #[test]
    fn graphs_are_loaded_once_per_key() {
        let result = run_scenario(&tiny_spec(), &BenchOpts::golden());
        assert_eq!(result.graphs.len(), 1);
        assert!(result.graph(Dataset::Cora).is_some());
        assert!(result.graph(Dataset::PubMed).is_none());
    }

    #[test]
    fn gpu_axis_reuses_one_pipeline_build() {
        // Same config on two GPU axes: outcomes must both profile, and
        // the hw/sim backends disagree (different models) while the
        // underlying launches agree (shared build).
        let spec = ScenarioSpec {
            gpus: vec![GpuSpec::HwV100, GpuSpec::SimSms(4)],
            models: vec![GnnModel::Gcn],
            comp_models: vec![CompModel::Mp],
            ..tiny_spec()
        };
        let result = run_scenario(&spec, &BenchOpts::golden());
        assert_eq!(result.cells.len(), 2);
        let hw = result.profile_at(0, |_| true).unwrap();
        let sim = result.profile_at(1, |_| true).unwrap();
        assert_eq!(hw.kernels.len(), sim.kernels.len());
        assert!(hw
            .kernels
            .iter()
            .zip(&sim.kernels)
            .all(|(a, b)| a.kernel == b.kernel));
    }

    #[test]
    fn baseline_frameworks_profile() {
        let spec = ScenarioSpec {
            frameworks: vec![FrameworkKind::PygLike, FrameworkKind::GSuite],
            models: vec![GnnModel::Gcn],
            ..tiny_spec()
        };
        let result = run_scenario(&spec, &BenchOpts::golden());
        // PyG contributes only its forced MP cell: 1 + 2 gSuite cells.
        assert_eq!(result.cells.len(), 3);
        assert_eq!(result.profiled_count(), 3);
    }
}
