//! Figure reports as data: renderers build a [`Report`] (header, tables,
//! free-form note lines) and the harness either prints it — byte-identical
//! to the historical per-figure binaries — or snapshots it for the
//! golden-profile regression suite.

use gsuite_profile::TextTable;

use crate::opts::BenchOpts;

/// One element of a rendered report.
#[derive(Debug, Clone)]
pub enum ReportItem {
    /// The standard reproducibility header (`=== gSuite-rs :: ...`).
    Header {
        /// Figure name, e.g. `"Fig. 3"`.
        figure: String,
        /// One-line description.
        description: String,
    },
    /// A named, titled table (the name keys the optional CSV file).
    Table {
        /// CSV/golden key, e.g. `"fig3_gcn"`.
        name: String,
        /// Printed title.
        title: String,
        /// The rendered table.
        table: TextTable,
    },
    /// One verbatim output line (the figures' shape-check trailers).
    Note(String),
}

/// An ordered report — what one scenario prints.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Items in print order.
    pub items: Vec<ReportItem>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends the standard header.
    pub fn header(&mut self, figure: impl Into<String>, description: impl Into<String>) {
        self.items.push(ReportItem::Header {
            figure: figure.into(),
            description: description.into(),
        });
    }

    /// Appends a titled table.
    pub fn table(&mut self, name: impl Into<String>, title: impl Into<String>, table: TextTable) {
        self.items.push(ReportItem::Table {
            name: name.into(),
            title: title.into(),
            table,
        });
    }

    /// Appends one verbatim line.
    pub fn note(&mut self, line: impl Into<String>) {
        self.items.push(ReportItem::Note(line.into()));
    }

    /// Renders the report to text exactly as the figure binaries print it
    /// (without `[csv]` side-effect lines) — the golden-profile snapshot
    /// format.
    pub fn render(&self, opts: &BenchOpts) -> String {
        let mut out = String::new();
        for item in &self.items {
            match item {
                ReportItem::Header {
                    figure,
                    description,
                } => {
                    out.push_str(&opts.header_text(figure, description));
                    out.push_str("\n\n");
                }
                ReportItem::Table { title, table, .. } => {
                    out.push_str(&format!("## {title}\n\n"));
                    out.push_str(&table.render());
                    out.push('\n');
                }
                ReportItem::Note(line) => {
                    out.push_str(line);
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Prints the report to stdout and, with `--csv`, writes each table as
    /// `<name>.csv` (announcing each file on its own `[csv]` line, exactly
    /// like the historical binaries).
    pub fn emit(&self, opts: &BenchOpts) {
        for item in &self.items {
            match item {
                ReportItem::Header {
                    figure,
                    description,
                } => opts.header(figure, description),
                ReportItem::Table { name, title, table } => opts.emit(name, title, table),
                ReportItem::Note(line) => println!("{line}"),
            }
        }
    }

    /// The tables of the report, in order (name, title, table).
    pub fn tables(&self) -> impl Iterator<Item = (&str, &str, &TextTable)> {
        self.items.iter().filter_map(|i| match i {
            ReportItem::Table { name, title, table } => {
                Some((name.as_str(), title.as_str(), table))
            }
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_matches_print_format() {
        let mut r = Report::new();
        r.header("Fig. X", "demo");
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["1", "2"]);
        r.table("x_t", "Demo table", t);
        r.note("trailer line");
        let opts = BenchOpts::quick();
        let s = r.render(&opts);
        assert!(s.starts_with("=== gSuite-rs :: Fig. X — demo\nmode=quick | scales: "));
        assert!(s.contains("\n\n## Demo table\n\n"));
        // Table render ends with \n, emit adds a blank line after it.
        assert!(s.contains("1  2\n\ntrailer line\n"));
        assert_eq!(r.tables().count(), 1);
    }
}
