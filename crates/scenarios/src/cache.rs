//! A byte-accounted LRU cache with hit/miss/eviction counters — the
//! serving layer's graph + pipeline cache.
//!
//! Capacity is expressed in *bytes*, not entries: every insertion carries
//! an explicit byte cost (the serving layer's `entry_bytes` models the
//! cost of cached pipelines) and eviction walks entries from
//! least-recently-used to most-recently-used until the new entry fits.
//! Entries larger than the whole capacity are rejected (and counted)
//! rather than thrashing the cache.
//!
//! The implementation is a slab of slots threaded by an intrusive
//! doubly-linked recency list (LRU at the head, MRU at the tail) plus a
//! key-hash → slot index, so `get`/`contains`/`insert` resolve a key in
//! `O(1)` instead of scanning the recency order. Keys only need
//! `PartialEq + Hash` (not `Eq`): the index buckets by hash and resolves
//! collisions with `PartialEq`, which keeps float-bearing keys (the
//! serving layer's request configurations carry an `f64` scale) usable
//! without pretending they are `Eq`. The LRU semantics — promotion on
//! hit, replacement releasing bytes, front-first eviction — are exactly
//! the historical ordered-`Vec` behavior, locked by the property-test
//! suite against a brute-force oracle.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A snapshot of the cache's accounting counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LruStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Successful insertions (including same-key replacements).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Insertions refused because the entry alone exceeds the capacity.
    pub rejected: u64,
    /// Bytes currently accounted to live entries.
    pub bytes_in_use: u64,
    /// Configured capacity in bytes.
    pub capacity_bytes: u64,
    /// Live entry count.
    pub entries: usize,
}

impl LruStats {
    /// Hit fraction over all lookups (`0.0` before the first lookup).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// Linked-list sentinel ("no slot").
const NIL: usize = usize::MAX;

/// One occupied cache slot: the entry plus its recency-list links and the
/// key's cached hash (so removal finds its index bucket without
/// re-hashing).
#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: K,
    value: V,
    bytes: u64,
    hash: u64,
    prev: usize,
    next: usize,
}

/// A byte-accounted LRU map from `K` to `V`.
///
/// # Example
///
/// ```
/// use gsuite_scenarios::ByteLru;
///
/// let mut cache: ByteLru<&str, u32> = ByteLru::new(100);
/// cache.insert("a", 1, 60);
/// cache.insert("b", 2, 60); // evicts "a": 120 > 100
/// assert_eq!(cache.get(&"a"), None);
/// assert_eq!(cache.get(&"b"), Some(&2));
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct ByteLru<K, V> {
    /// Slot slab; `None` slots are free and listed in `free`.
    slots: Vec<Option<Slot<K, V>>>,
    /// Free slot ids available for reuse.
    free: Vec<usize>,
    /// Key-hash → occupied slot ids; collisions resolved by `PartialEq`.
    index: HashMap<u64, Vec<usize>>,
    /// LRU end of the recency list (next eviction victim).
    head: usize,
    /// MRU end of the recency list.
    tail: usize,
    len: usize,
    capacity: u64,
    used: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    rejected: u64,
}

fn hash_of<K: Hash>(key: &K) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

impl<K: PartialEq + Hash, V> ByteLru<K, V> {
    /// An empty cache holding at most `capacity_bytes` of accounted entries.
    pub fn new(capacity_bytes: u64) -> Self {
        ByteLru {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            len: 0,
            capacity: capacity_bytes,
            used: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            rejected: 0,
        }
    }

    /// The slot holding `key`, via the hash index.
    fn find(&self, key: &K) -> Option<usize> {
        let bucket = self.index.get(&hash_of(key))?;
        bucket
            .iter()
            .copied()
            .find(|&i| self.slots[i].as_ref().is_some_and(|s| s.key == *key))
    }

    /// Unlinks slot `i` from the recency list (it stays in the slab).
    fn detach(&mut self, i: usize) {
        let (prev, next) = {
            let s = self.slots[i].as_ref().expect("detach of live slot");
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("live prev").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("live next").prev = prev,
        }
    }

    /// Links slot `i` at the MRU end of the recency list.
    fn attach_mru(&mut self, i: usize) {
        let old_tail = self.tail;
        {
            let s = self.slots[i].as_mut().expect("attach of live slot");
            s.prev = old_tail;
            s.next = NIL;
        }
        match old_tail {
            NIL => self.head = i,
            t => self.slots[t].as_mut().expect("live tail").next = i,
        }
        self.tail = i;
    }

    /// Removes slot `i` entirely: recency list, index bucket, slab.
    /// Returns the released byte count.
    fn remove_slot(&mut self, i: usize) -> u64 {
        self.detach(i);
        let slot = self.slots[i].take().expect("removal of live slot");
        let bucket = self
            .index
            .get_mut(&slot.hash)
            .expect("indexed slot has a bucket");
        bucket.retain(|&id| id != i);
        if bucket.is_empty() {
            self.index.remove(&slot.hash);
        }
        self.free.push(i);
        self.len -= 1;
        slot.bytes
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    /// Counts a hit or a miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.find(key) {
            Some(i) => {
                self.hits += 1;
                self.detach(i);
                self.attach_mru(i);
                self.slots[i].as_ref().map(|s| &s.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is cached, without touching recency or counters.
    pub fn contains(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `key -> value` accounted at `bytes`, evicting from the LRU
    /// end until it fits. Replacing an existing key releases the old
    /// entry's bytes first (not counted as an eviction). Returns `false`
    /// (and counts a rejection) when `bytes` alone exceeds the capacity.
    pub fn insert(&mut self, key: K, value: V, bytes: u64) -> bool {
        if bytes > self.capacity {
            self.rejected += 1;
            return false;
        }
        if let Some(i) = self.find(&key) {
            self.used -= self.remove_slot(i);
        }
        while self.used + bytes > self.capacity {
            let victim = self.head;
            self.used -= self.remove_slot(victim);
            self.evictions += 1;
        }
        let hash = hash_of(&key);
        let slot = Slot {
            key,
            value,
            bytes,
            hash,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.index.entry(hash).or_default().push(i);
        self.attach_mru(i);
        self.len += 1;
        self.used += bytes;
        self.insertions += 1;
        true
    }

    /// Drops up to `n` entries from the LRU end regardless of byte
    /// pressure, counting each as an eviction — the fault injector's
    /// "eviction storm" (cache poisoning) primitive. Returns how many
    /// entries were actually dropped.
    pub fn evict_lru(&mut self, n: usize) -> usize {
        let drop = n.min(self.len);
        for _ in 0..drop {
            let victim = self.head;
            self.used -= self.remove_slot(victim);
            self.evictions += 1;
        }
        drop
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes currently accounted to live entries.
    pub fn bytes_in_use(&self) -> u64 {
        self.used
    }

    /// The keys in LRU-to-MRU order (front of the iterator is the next
    /// eviction victim) — the property-test observability hook.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        let mut ordered = Vec::with_capacity(self.len);
        let mut i = self.head;
        while i != NIL {
            let s = self.slots[i].as_ref().expect("recency list is live");
            ordered.push(&s.key);
            i = s.next;
        }
        ordered.into_iter()
    }

    /// The current counter snapshot.
    pub fn stats(&self) -> LruStats {
        LruStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            rejected: self.rejected,
            bytes_in_use: self.used,
            capacity_bytes: self.capacity,
            entries: self.len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_promotes_to_mru() {
        let mut c: ByteLru<u32, u32> = ByteLru::new(30);
        c.insert(1, 10, 10);
        c.insert(2, 20, 10);
        c.insert(3, 30, 10);
        assert_eq!(c.get(&1), Some(&10)); // 1 is now MRU
        c.insert(4, 40, 10); // evicts 2, the LRU
        assert!(c.contains(&1) && c.contains(&3) && c.contains(&4));
        assert!(!c.contains(&2));
        assert_eq!(c.keys().copied().collect::<Vec<_>>(), vec![3, 1, 4]);
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let mut c: ByteLru<&str, ()> = ByteLru::new(100);
        assert!(!c.insert("huge", (), 101));
        assert!(c.is_empty());
        assert_eq!(c.stats().rejected, 1);
        assert!(c.insert("fits", (), 100));
        assert_eq!(c.bytes_in_use(), 100);
    }

    #[test]
    fn replacement_releases_old_bytes() {
        let mut c: ByteLru<&str, u32> = ByteLru::new(100);
        c.insert("a", 1, 80);
        c.insert("a", 2, 50);
        assert_eq!(c.bytes_in_use(), 50);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"a"), Some(&2));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.stats().insertions, 2);
    }

    #[test]
    fn hit_rate_counts_lookups() {
        let mut c: ByteLru<u8, ()> = ByteLru::new(10);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert(1, (), 1);
        c.get(&1);
        c.get(&2);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_storms_drop_from_the_lru_end() {
        let mut c: ByteLru<u32, ()> = ByteLru::new(100);
        c.insert(1, (), 10);
        c.insert(2, (), 10);
        c.insert(3, (), 10);
        assert_eq!(c.evict_lru(2), 2);
        assert_eq!(c.keys().copied().collect::<Vec<_>>(), vec![3]);
        assert_eq!(c.bytes_in_use(), 10);
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.evict_lru(5), 1, "bounded by live entries");
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c: ByteLru<u8, ()> = ByteLru::new(0);
        assert!(c.insert(1, (), 0)); // zero-cost entries still fit
        assert!(!c.insert(2, (), 1));
        assert_eq!(c.stats().rejected, 1);
    }

    /// Freed slab slots are reused, so long-lived caches under churn do
    /// not grow their slab beyond the peak live entry count.
    #[test]
    fn slab_slots_are_recycled_under_churn() {
        let mut c: ByteLru<u32, u32> = ByteLru::new(20);
        for round in 0..50u32 {
            c.insert(round, round, 10);
            assert!(c.len() <= 2);
        }
        assert!(c.slots.len() <= 3, "slab grew to {}", c.slots.len());
        assert_eq!(c.stats().evictions, 48);
    }

    /// Hash-colliding keys resolve by equality, not by hash alone.
    #[test]
    fn distinct_keys_never_alias() {
        let mut c: ByteLru<u64, u64> = ByteLru::new(u64::MAX);
        for k in 0..512u64 {
            c.insert(k, k * 3, 1);
        }
        for k in 0..512u64 {
            assert_eq!(c.get(&k), Some(&(k * 3)), "key {k}");
        }
        assert_eq!(c.len(), 512);
    }
}
