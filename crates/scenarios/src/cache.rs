//! A byte-accounted LRU cache with hit/miss/eviction counters — the
//! serving layer's graph + pipeline cache.
//!
//! Capacity is expressed in *bytes*, not entries: every insertion carries
//! an explicit byte cost (the serving layer's `entry_bytes` models the
//! cost of cached pipelines) and eviction walks entries from
//! least-recently-used to most-recently-used until the new entry fits.
//! Entries larger than the whole capacity are rejected (and counted)
//! rather than thrashing the cache.
//!
//! The implementation is a plain ordered `Vec` (LRU at the front, MRU at
//! the back). Serving workloads cache at the granularity of *distinct
//! benchmark configurations* — tens of entries, not millions — so `O(n)`
//! touch/evict is cheaper than a linked-list + hash-map dance and keeps
//! the structure trivially auditable for the property-test suite.

/// A snapshot of the cache's accounting counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LruStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Successful insertions (including same-key replacements).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Insertions refused because the entry alone exceeds the capacity.
    pub rejected: u64,
    /// Bytes currently accounted to live entries.
    pub bytes_in_use: u64,
    /// Configured capacity in bytes.
    pub capacity_bytes: u64,
    /// Live entry count.
    pub entries: usize,
}

impl LruStats {
    /// Hit fraction over all lookups (`0.0` before the first lookup).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// A byte-accounted LRU map from `K` to `V`.
///
/// # Example
///
/// ```
/// use gsuite_scenarios::ByteLru;
///
/// let mut cache: ByteLru<&str, u32> = ByteLru::new(100);
/// cache.insert("a", 1, 60);
/// cache.insert("b", 2, 60); // evicts "a": 120 > 100
/// assert_eq!(cache.get(&"a"), None);
/// assert_eq!(cache.get(&"b"), Some(&2));
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct ByteLru<K, V> {
    /// Entries ordered LRU (front) to MRU (back).
    entries: Vec<(K, V, u64)>,
    capacity: u64,
    used: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    rejected: u64,
}

impl<K: PartialEq, V> ByteLru<K, V> {
    /// An empty cache holding at most `capacity_bytes` of accounted entries.
    pub fn new(capacity_bytes: u64) -> Self {
        ByteLru {
            entries: Vec::new(),
            capacity: capacity_bytes,
            used: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            rejected: 0,
        }
    }

    /// Looks up `key`, promoting it to most-recently-used on a hit.
    /// Counts a hit or a miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.entries.iter().position(|(k, _, _)| k == key) {
            Some(i) => {
                self.hits += 1;
                let entry = self.entries.remove(i);
                self.entries.push(entry);
                self.entries.last().map(|(_, v, _)| v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is cached, without touching recency or counters.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.iter().any(|(k, _, _)| k == key)
    }

    /// Inserts `key -> value` accounted at `bytes`, evicting from the LRU
    /// end until it fits. Replacing an existing key releases the old
    /// entry's bytes first (not counted as an eviction). Returns `false`
    /// (and counts a rejection) when `bytes` alone exceeds the capacity.
    pub fn insert(&mut self, key: K, value: V, bytes: u64) -> bool {
        if bytes > self.capacity {
            self.rejected += 1;
            return false;
        }
        if let Some(i) = self.entries.iter().position(|(k, _, _)| *k == key) {
            let (_, _, old_bytes) = self.entries.remove(i);
            self.used -= old_bytes;
        }
        while self.used + bytes > self.capacity {
            let (_, _, evicted) = self.entries.remove(0);
            self.used -= evicted;
            self.evictions += 1;
        }
        self.used += bytes;
        self.insertions += 1;
        self.entries.push((key, value, bytes));
        true
    }

    /// Drops up to `n` entries from the LRU end regardless of byte
    /// pressure, counting each as an eviction — the fault injector's
    /// "eviction storm" (cache poisoning) primitive. Returns how many
    /// entries were actually dropped.
    pub fn evict_lru(&mut self, n: usize) -> usize {
        let drop = n.min(self.entries.len());
        for _ in 0..drop {
            let (_, _, evicted) = self.entries.remove(0);
            self.used -= evicted;
            self.evictions += 1;
        }
        drop
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently accounted to live entries.
    pub fn bytes_in_use(&self) -> u64 {
        self.used
    }

    /// The keys in LRU-to-MRU order (front of the iterator is the next
    /// eviction victim) — the property-test observability hook.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _, _)| k)
    }

    /// The current counter snapshot.
    pub fn stats(&self) -> LruStats {
        LruStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            rejected: self.rejected,
            bytes_in_use: self.used,
            capacity_bytes: self.capacity,
            entries: self.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_promotes_to_mru() {
        let mut c: ByteLru<u32, u32> = ByteLru::new(30);
        c.insert(1, 10, 10);
        c.insert(2, 20, 10);
        c.insert(3, 30, 10);
        assert_eq!(c.get(&1), Some(&10)); // 1 is now MRU
        c.insert(4, 40, 10); // evicts 2, the LRU
        assert!(c.contains(&1) && c.contains(&3) && c.contains(&4));
        assert!(!c.contains(&2));
        assert_eq!(c.keys().copied().collect::<Vec<_>>(), vec![3, 1, 4]);
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let mut c: ByteLru<&str, ()> = ByteLru::new(100);
        assert!(!c.insert("huge", (), 101));
        assert!(c.is_empty());
        assert_eq!(c.stats().rejected, 1);
        assert!(c.insert("fits", (), 100));
        assert_eq!(c.bytes_in_use(), 100);
    }

    #[test]
    fn replacement_releases_old_bytes() {
        let mut c: ByteLru<&str, u32> = ByteLru::new(100);
        c.insert("a", 1, 80);
        c.insert("a", 2, 50);
        assert_eq!(c.bytes_in_use(), 50);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"a"), Some(&2));
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.stats().insertions, 2);
    }

    #[test]
    fn hit_rate_counts_lookups() {
        let mut c: ByteLru<u8, ()> = ByteLru::new(10);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.insert(1, (), 1);
        c.get(&1);
        c.get(&2);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_storms_drop_from_the_lru_end() {
        let mut c: ByteLru<u32, ()> = ByteLru::new(100);
        c.insert(1, (), 10);
        c.insert(2, (), 10);
        c.insert(3, (), 10);
        assert_eq!(c.evict_lru(2), 2);
        assert_eq!(c.keys().copied().collect::<Vec<_>>(), vec![3]);
        assert_eq!(c.bytes_in_use(), 10);
        assert_eq!(c.stats().evictions, 2);
        assert_eq!(c.evict_lru(5), 1, "bounded by live entries");
        assert!(c.is_empty());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut c: ByteLru<u8, ()> = ByteLru::new(0);
        assert!(c.insert(1, (), 0)); // zero-cost entries still fit
        assert!(!c.insert(2, (), 1));
        assert_eq!(c.stats().rejected, 1);
    }
}
