//! Benchmarks of pipeline construction, analytical profiling and cycle
//! simulation — the throughput numbers that bound how fast the figure
//! binaries can sweep — including the serial vs. parallel profiling paths.

use gsuite_bench::microbench::Runner;
use gsuite_core::config::{CompModel, GnnModel, RunConfig};
use gsuite_core::pipeline::PipelineRun;
use gsuite_graph::datasets::Dataset;
use gsuite_profile::{HwProfiler, Profiler, SimProfiler};

fn small_config(model: GnnModel, comp: CompModel) -> RunConfig {
    RunConfig {
        model,
        comp,
        dataset: Dataset::Cora,
        scale: 0.1,
        layers: 2,
        hidden: 16,
        functional_math: false,
        ..RunConfig::default()
    }
}

fn bench_pipeline_build(r: &mut Runner) {
    for (model, comp, label) in [
        (GnnModel::Gcn, CompModel::Mp, "gcn_mp"),
        (GnnModel::Gcn, CompModel::Spmm, "gcn_spmm"),
        (GnnModel::Gin, CompModel::Mp, "gin_mp"),
        (GnnModel::Sage, CompModel::Mp, "sage_mp"),
    ] {
        let cfg = small_config(model, comp);
        let graph = cfg.load_graph();
        r.bench(&format!("build/{label}"), 0.5, || {
            PipelineRun::build(&graph, &cfg).unwrap();
        });
    }
}

fn bench_functional_inference(r: &mut Runner) {
    let cfg = RunConfig {
        functional_math: true,
        ..small_config(GnnModel::Gcn, CompModel::Mp)
    };
    let graph = cfg.load_graph();
    r.bench("functional/gcn_mp_cora@0.1", 0.5, || {
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        let _ = run.output.sum();
    });
}

fn bench_profiling_backends(r: &mut Runner) {
    let cfg = small_config(GnnModel::Gcn, CompModel::Mp);
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    let launches = run.launch_count() as f64;
    let hw = HwProfiler::v100();
    r.bench_units(
        "profile/hw_serial_gcn_mp",
        1.0,
        Some((launches, "launches")),
        || {
            let _ = run.profile(&hw);
        },
    );
    let sim = SimProfiler::scaled(4).max_ctas(Some(64));
    r.bench("profile/cycle_sim_one_kernel", 1.0, || {
        let _ = sim.profile(run.launches[2].workload.as_ref());
    });
}

fn main() {
    let mut r = Runner::new("pipelines");
    bench_pipeline_build(&mut r);
    bench_functional_inference(&mut r);
    bench_profiling_backends(&mut r);
    r.finish_from_env();
}
