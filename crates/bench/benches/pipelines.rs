//! Criterion benchmarks of pipeline construction, analytical profiling and
//! cycle simulation — the throughput numbers that bound how fast the
//! figure binaries can sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use gsuite_core::config::{CompModel, GnnModel, RunConfig};
use gsuite_core::pipeline::PipelineRun;
use gsuite_graph::datasets::Dataset;
use gsuite_profile::{HwProfiler, Profiler, SimProfiler};

fn small_config(model: GnnModel, comp: CompModel) -> RunConfig {
    RunConfig {
        model,
        comp,
        dataset: Dataset::Cora,
        scale: 0.1,
        layers: 2,
        hidden: 16,
        functional_math: false,
        ..RunConfig::default()
    }
}

fn bench_pipeline_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_build");
    group.sample_size(10);
    for (model, comp, label) in [
        (GnnModel::Gcn, CompModel::Mp, "gcn_mp"),
        (GnnModel::Gcn, CompModel::Spmm, "gcn_spmm"),
        (GnnModel::Gin, CompModel::Mp, "gin_mp"),
        (GnnModel::Sage, CompModel::Mp, "sage_mp"),
    ] {
        let cfg = small_config(model, comp);
        let graph = cfg.load_graph();
        group.bench_function(label, |b| {
            b.iter(|| PipelineRun::build(&graph, &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_functional_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_inference");
    group.sample_size(10);
    let cfg = RunConfig {
        functional_math: true,
        ..small_config(GnnModel::Gcn, CompModel::Mp)
    };
    let graph = cfg.load_graph();
    group.bench_function("gcn_mp_cora@0.1", |b| {
        b.iter(|| PipelineRun::build(&graph, &cfg).unwrap().output.sum())
    });
    group.finish();
}

fn bench_profiling_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("profiling");
    group.sample_size(10);
    let cfg = small_config(GnnModel::Gcn, CompModel::Mp);
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    let hw = HwProfiler::v100();
    group.bench_function("hw_profiler_gcn_mp", |b| {
        b.iter(|| {
            let _ = run.profile(&hw);
        })
    });
    let sim = SimProfiler::scaled(4).max_ctas(Some(64));
    group.bench_function("cycle_sim_one_kernel", |b| {
        b.iter(|| sim.profile(run.launches[2].workload.as_ref()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline_build,
    bench_functional_inference,
    bench_profiling_backends
);
criterion_main!(benches);
