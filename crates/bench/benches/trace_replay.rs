//! The PR's headline benchmark: trace-replay throughput of the simulator
//! stack on the two kernels that dominate every pipeline's device time —
//! `SpMM` (irregular gathers) and `sgemm` (dense streaming) — plus the
//! analytical profiler's full-trace walk and raw trace generation.
//!
//! Reported as **warps/s** (warps fully replayed per wall-clock second),
//! the unit the `BENCH_*.json` trajectory files track across PRs.

use std::sync::Arc;

use gsuite_bench::microbench::Runner;
use gsuite_core::kernels::{SgemmKernel, SpmmKernel};
use gsuite_gpu::{GpuConfig, KernelWorkload, SimOptions, Simulator};
use gsuite_graph::GraphGenerator;
use gsuite_profile::{HwProfiler, Profiler};

/// A power-law CSR shaped like a scaled citation graph (deterministic).
fn powerlaw_csr(nodes: usize, edges: usize) -> (Arc<Vec<u32>>, Arc<Vec<u32>>) {
    let g = GraphGenerator::new(nodes, edges)
        .seed(42)
        .build_graph(1)
        .expect("valid generator args");
    let csr = g.adjacency_csr_transposed();
    (
        Arc::new(csr.row_ptr().to_vec()),
        Arc::new(csr.col_indices().to_vec()),
    )
}

fn spmm_kernel(feat: usize) -> SpmmKernel {
    let (rp, ci) = powerlaw_csr(4_000, 24_000);
    SpmmKernel::new(
        rp, ci, true, 0x1000, 0x10_000, 0x80_000, 0x100_000, 0x800_000, feat,
    )
}

fn sgemm_kernel() -> SgemmKernel {
    SgemmKernel::new(2_000, 64, 32, 0x1000, 0x100_000, 0x800_000)
}

fn sim() -> Simulator {
    Simulator::new(
        GpuConfig::v100_scaled(4),
        SimOptions {
            max_ctas: Some(1_024),
            max_cycles: None,
        },
    )
}

/// Warps actually replayed given the CTA sampling cap.
fn sampled_warps(w: &dyn KernelWorkload, max_ctas: u64) -> f64 {
    let grid = w.grid();
    (grid.ctas.min(max_ctas) * grid.warps_per_cta as u64) as f64
}

fn main() {
    let mut r = Runner::new("trace_replay");
    let simulator = sim();

    let spmm = spmm_kernel(32);
    let warps = sampled_warps(&spmm, 1_024);
    r.bench_units("sim_replay/SpMM", 2.0, Some((warps, "warps")), || {
        let stats = simulator.run(&spmm);
        assert!(stats.cycles > 0);
    });

    let sgemm = sgemm_kernel();
    let warps = sampled_warps(&sgemm, 1_024);
    r.bench_units("sim_replay/sgemm", 2.0, Some((warps, "warps")), || {
        let stats = simulator.run(&sgemm);
        assert!(stats.cycles > 0);
    });

    // The analytical profiler walks every sampled warp trace exactly once:
    // this isolates trace *generation + single-pass consumption* cost.
    let hw = HwProfiler::v100().max_ctas(1_024);
    let warps = sampled_warps(&spmm, 1_024);
    r.bench_units("hw_profile/SpMM", 2.0, Some((warps, "warps")), || {
        let stats = hw.profile(&spmm);
        assert!(stats.instr_mix.total() > 0);
    });
    let warps = sampled_warps(&sgemm, 1_024);
    r.bench_units("hw_profile/sgemm", 2.0, Some((warps, "warps")), || {
        let stats = hw.profile(&sgemm);
        assert!(stats.instr_mix.total() > 0);
    });

    // Raw trace generation over the sampled grid, no consumer: the owned
    // shim path (fresh buffer per warp) vs the streaming arena path.
    for (name, workload) in [
        ("trace_gen/SpMM", &spmm as &dyn KernelWorkload),
        ("trace_gen/sgemm", &sgemm as &dyn KernelWorkload),
    ] {
        let grid = workload.grid();
        let ctas = grid.ctas.min(1_024);
        let warps = (ctas * grid.warps_per_cta as u64) as f64;
        r.bench_units(name, 2.0, Some((warps, "warps")), || {
            let mut instrs = 0usize;
            for cta in 0..ctas {
                for warp in 0..grid.warps_per_cta {
                    instrs += workload.trace(cta, warp).len();
                }
            }
            assert!(instrs > 0);
        });
    }
    for (name, workload) in [
        ("trace_stream/SpMM", &spmm as &dyn KernelWorkload),
        ("trace_stream/sgemm", &sgemm as &dyn KernelWorkload),
    ] {
        let grid = workload.grid();
        let ctas = grid.ctas.min(1_024);
        let warps = (ctas * grid.warps_per_cta as u64) as f64;
        let mut buf = gsuite_gpu::TraceBuf::new();
        r.bench_units(name, 2.0, Some((warps, "warps")), || {
            let mut instrs = 0usize;
            for cta in 0..ctas {
                for warp in 0..grid.warps_per_cta {
                    buf.clear();
                    workload.trace_into(&mut buf, cta, warp);
                    instrs += buf.len();
                }
            }
            assert!(instrs > 0);
        });
    }

    r.finish_from_env();
}
