//! Micro-benchmarks of the core-kernel reference math (the host-side
//! functional twins of the Table II kernels).

use gsuite_bench::microbench::Runner;
use gsuite_graph::datasets::Dataset;
use gsuite_tensor::ops::{self, Reduce};
use gsuite_tensor::DenseMatrix;

fn bench_gemm(r: &mut Runner) {
    for &(m, k, n) in &[(256usize, 256usize, 64usize), (512, 512, 64)] {
        let a = DenseMatrix::from_fn(m, k, |row, col| ((row * 31 + col) % 17) as f32 * 0.1);
        let b = DenseMatrix::from_fn(k, n, |row, col| ((row * 7 + col) % 13) as f32 * 0.1);
        let elems = (m * k * n) as f64;
        r.bench_units(
            &format!("gemm/{m}x{k}x{n}"),
            0.5,
            Some((elems, "elems")),
            || {
                ops::gemm(&a, &b).unwrap();
            },
        );
    }
}

fn bench_spmm(r: &mut Runner) {
    for scale in [0.25, 1.0] {
        let g = Dataset::Cora.load_scaled(scale);
        let a = g.adjacency_csr_transposed();
        let x = DenseMatrix::from_fn(g.num_nodes(), 64, |row, col| {
            ((row + col) % 11) as f32 * 0.1
        });
        let elems = a.nnz() as f64 * 64.0;
        r.bench_units(
            &format!("spmm/cora@{scale}"),
            0.5,
            Some((elems, "elems")),
            || {
                ops::spmm(&a, &x).unwrap();
            },
        );
    }
}

fn bench_spgemm(r: &mut Runner) {
    let g = Dataset::Cora.load_scaled(0.5);
    let at = gsuite_graph::add_self_loops(&g.adjacency_csr_transposed());
    let d = gsuite_graph::inv_sqrt_degree(&at);
    let elems = at.nnz() as f64;
    r.bench_units(
        "spgemm/d_times_a_cora@0.5",
        0.5,
        Some((elems, "nnz")),
        || {
            ops::spgemm(&d, &at).unwrap();
        },
    );
}

fn bench_gather_scatter(r: &mut Runner) {
    let g = Dataset::Cora.load();
    let at = g.adjacency_csr_transposed();
    // endpoints sorted by destination
    let mut src = Vec::new();
    let mut dst = Vec::new();
    for d in 0..at.rows() {
        let (cols, _) = at.row(d);
        for &s in cols {
            src.push(s);
            dst.push(d as u32);
        }
    }
    let x = DenseMatrix::from_fn(g.num_nodes(), 64, |row, col| {
        ((row + col) % 11) as f32 * 0.1
    });
    let elems = src.len() as f64 * 64.0;
    r.bench_units("gather/cora_f64", 0.5, Some((elems, "elems")), || {
        ops::gather_rows(&x, &src).unwrap();
    });
    let msgs = ops::gather_rows(&x, &src).unwrap();
    r.bench_units("scatter_sum/cora_f64", 0.5, Some((elems, "elems")), || {
        ops::scatter_rows(&msgs, &dst, g.num_nodes(), Reduce::Sum).unwrap();
    });
}

fn main() {
    let mut r = Runner::new("kernels");
    bench_gemm(&mut r);
    bench_spmm(&mut r);
    bench_spgemm(&mut r);
    bench_gather_scatter(&mut r);
    r.finish_from_env();
}
