//! Criterion micro-benchmarks of the core-kernel reference math
//! (the host-side functional twins of the Table II kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsuite_graph::datasets::Dataset;
use gsuite_tensor::ops::{self, Reduce};
use gsuite_tensor::DenseMatrix;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for &(m, k, n) in &[(256usize, 256usize, 64usize), (512, 512, 64)] {
        let a = DenseMatrix::from_fn(m, k, |r, cc| ((r * 31 + cc) % 17) as f32 * 0.1);
        let b = DenseMatrix::from_fn(k, n, |r, cc| ((r * 7 + cc) % 13) as f32 * 0.1);
        group.throughput(Throughput::Elements((m * k * n) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(a, b),
            |bench, (a, b)| bench.iter(|| ops::gemm(a, b).unwrap()),
        );
    }
    group.finish();
}

fn bench_spmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmm");
    group.sample_size(10);
    for scale in [0.25, 1.0] {
        let g = Dataset::Cora.load_scaled(scale);
        let a = g.adjacency_csr_transposed();
        let x = DenseMatrix::from_fn(g.num_nodes(), 64, |r, cc| ((r + cc) % 11) as f32 * 0.1);
        group.throughput(Throughput::Elements(a.nnz() as u64 * 64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("cora@{scale}")),
            &(a, x),
            |bench, (a, x)| bench.iter(|| ops::spmm(a, x).unwrap()),
        );
    }
    group.finish();
}

fn bench_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm");
    group.sample_size(10);
    let g = Dataset::Cora.load_scaled(0.5);
    let at = gsuite_graph::add_self_loops(&g.adjacency_csr_transposed());
    let d = gsuite_graph::inv_sqrt_degree(&at);
    group.throughput(Throughput::Elements(at.nnz() as u64));
    group.bench_function("d_times_a_cora@0.5", |bench| {
        bench.iter(|| ops::spgemm(&d, &at).unwrap())
    });
    group.finish();
}

fn bench_gather_scatter(c: &mut Criterion) {
    let mut group = c.benchmark_group("gather_scatter");
    group.sample_size(10);
    let g = Dataset::Cora.load();
    let at = g.adjacency_csr_transposed();
    // endpoints sorted by destination
    let mut src = Vec::new();
    let mut dst = Vec::new();
    for d in 0..at.rows() {
        let (cols, _) = at.row(d);
        for &s in cols {
            src.push(s);
            dst.push(d as u32);
        }
    }
    let x = DenseMatrix::from_fn(g.num_nodes(), 64, |r, cc| ((r + cc) % 11) as f32 * 0.1);
    group.throughput(Throughput::Elements(src.len() as u64 * 64));
    group.bench_function("gather_cora_f64", |bench| {
        bench.iter(|| ops::gather_rows(&x, &src).unwrap())
    });
    let msgs = ops::gather_rows(&x, &src).unwrap();
    group.bench_function("scatter_sum_cora_f64", |bench| {
        bench.iter(|| ops::scatter_rows(&msgs, &dst, g.num_nodes(), Reduce::Sum).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_spmm, bench_spgemm, bench_gather_scatter);
criterion_main!(benches);
