//! # gsuite-bench
//!
//! The experiment harness: the binaries that regenerate every table and
//! figure of the paper's evaluation (Table II, Table IV, Figs. 3–9), plus
//! micro-benchmarks of the core kernels.
//!
//! Since the scenario-engine refactor, each figure binary is a one-line
//! delegation into the [`gsuite_scenarios::registry`] — the declarative
//! grid spec + renderer registry that also backs
//! `gsuite-cli run-scenario`. The sweep machinery the binaries (and the
//! `ablations` study) share — [`BenchOpts`], [`sweep_config`],
//! [`par_sweep`], formatting helpers — lives in `gsuite-scenarios` and is
//! re-exported here unchanged.
//!
//! Every binary accepts:
//!
//! * `--quick` — tiny dataset scales and sampling caps (seconds; used by CI
//!   and the smoke tests);
//! * `--full`  — full Table IV scales everywhere (hours; memory-hungry);
//! * `--csv DIR` — also write each emitted table as CSV into `DIR`.
//!
//! The default mode runs Cora/CiteSeer/PubMed at full size and
//! Reddit/LiveJournal scaled down (documented per run in the output
//! header), with CTA sampling in the cycle simulator — the standard
//! methodology for keeping trace-driven simulation affordable
//! (`EXPERIMENTS.md` §Methodology).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod microbench;

pub use gsuite_scenarios::{
    gsuite_pairs, ms, par_sweep, pct, profile_pipeline, sweep_config, BenchOpts,
};
