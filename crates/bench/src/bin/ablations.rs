//! Ablation studies for the design points ARCHITECTURE.md calls out and the
//! architectural suggestions the paper closes with (§V-D5/D6):
//!
//! 1. **L1 bypassing** — the paper: "using L1 cache bypassing techniques
//!    can be considered" for GNN inference's cache-hostile gathers.
//! 2. **Split-K GEMM** — the suite's deep-reduction policy for tall-skinny
//!    linear layers (CiteSeer's f = 3703).
//! 3. **Edge ordering** — destination-sorted vs shuffled edge index:
//!    the locality the MP kernels inherit from the loader.

use std::sync::Arc;

use gsuite_bench::{ms, pct, BenchOpts};
use gsuite_core::config::{CompModel, FrameworkKind, GnnModel, RunConfig};
use gsuite_core::kernels::{KernelKind, ScatterKernel, SgemmKernel};
use gsuite_core::pipeline::PipelineRun;
use gsuite_gpu::{GpuConfig, KernelWorkload, SimOptions, Simulator};
use gsuite_graph::datasets::Dataset;
use gsuite_profile::{Profiler, SimProfiler, TextTable};
use gsuite_tensor::ops::Reduce;

fn main() {
    let opts = BenchOpts::from_env();
    opts.header("Ablations", "L1 bypass, split-K, edge ordering");
    ablation_l1_bypass(&opts);
    ablation_split_k(&opts);
    ablation_edge_order(&opts);
}

/// GIN-MP gather/scatter kernels with and without L1 load bypassing.
fn ablation_l1_bypass(opts: &BenchOpts) {
    let cfg = RunConfig {
        model: GnnModel::Gin,
        comp: CompModel::Mp,
        dataset: Dataset::Cora,
        scale: opts.scale_for(Dataset::Cora),
        layers: 1,
        hidden: 16,
        framework: FrameworkKind::GSuite,
        functional_math: false,
        ..RunConfig::default()
    };
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    let max_ctas = if opts.quick { 128 } else { 1024 };
    let sims = [
        ("L1 on", GpuConfig::v100_scaled(16)),
        ("L1 bypass", GpuConfig::v100_scaled(16).with_l1_bypass(true)),
    ];
    let mut table = TextTable::new(&["Kernel", "Variant", "time (ms)", "L1 hit", "DRAM MB"]);
    for launch in &run.launches {
        if !matches!(launch.kind, KernelKind::IndexSelect | KernelKind::Scatter) {
            continue;
        }
        for (label, gpu) in &sims {
            let sim = SimProfiler::new(Simulator::new(
                gpu.clone(),
                SimOptions {
                    max_ctas: Some(max_ctas),
                    max_cycles: None,
                },
            ));
            let stats = sim.profile(launch.workload.as_ref());
            table.row_owned(vec![
                launch.kind.name().to_string(),
                label.to_string(),
                ms(stats.time_ms),
                pct(stats.l1.hit_rate()),
                format!("{:.2}", stats.dram_bytes as f64 / 1e6),
            ]);
        }
    }
    opts.emit(
        "ablation_l1_bypass",
        "L1 bypassing on the GIN-MP gather/scatter kernels (paper §V-D5)",
        &table,
    );
}

/// sgemm over CiteSeer's tall-skinny first layer with varying K strips.
fn ablation_split_k(opts: &BenchOpts) {
    let (m, k, n) = if opts.quick {
        (256usize, 1024usize, 16usize)
    } else {
        (3_327, 3_703, 16)
    };
    let mut table = TextTable::new(&["k_strip", "CTAs", "time (ms)", "compute util"]);
    for strip in [k, 512, 256, 128] {
        let kernel = SgemmKernel {
            k_strip: strip,
            ..SgemmKernel::new(m, k, n, 0x1000_0000, 0x2000_0000, 0x3000_0000)
        };
        let sim = SimProfiler::scaled(16).max_ctas(Some(if opts.quick { 128 } else { 2048 }));
        let stats = sim.profile(&kernel);
        table.row_owned(vec![
            strip.to_string(),
            kernel.grid().ctas.to_string(),
            ms(stats.time_ms),
            pct(stats.compute_utilization),
        ]);
    }
    opts.emit(
        "ablation_split_k",
        &format!("split-K policy on a {m}x{k}x{n} sgemm (CiteSeer layer 1 shape)"),
        &table,
    );
}

/// Scatter with destination-sorted vs shuffled edge order.
fn ablation_edge_order(opts: &BenchOpts) {
    let graph = Dataset::Cora.load_scaled(opts.scale_for(Dataset::Cora));
    let at = graph.adjacency_csr_transposed();
    let mut sorted: Vec<u32> = Vec::with_capacity(at.nnz());
    for d in 0..at.rows() {
        sorted.extend(std::iter::repeat_n(d as u32, at.row_nnz(d)));
    }
    // Deterministic shuffle (LCG index permutation).
    let n = sorted.len() as u64;
    let mut shuffled = sorted.clone();
    if n > 1 {
        for i in 0..n {
            let j = (i
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(144_115_188))
                % n;
            shuffled.swap(i as usize, j as usize);
        }
    }
    let feat = 64usize;
    let mut table = TextTable::new(&["Edge order", "time (ms)", "L2 hit", "DRAM MB"]);
    for (label, index) in [("dst-sorted", sorted), ("shuffled", shuffled)] {
        let kernel = ScatterKernel {
            index: Arc::new(index),
            index_base: 0x1000_0000,
            in_base: Some(0x2000_0000),
            feat,
            out_base: 0x4000_0000,
            out_rows: graph.num_nodes(),
            reduce: Reduce::Sum,
        };
        let sim = SimProfiler::scaled(16).max_ctas(Some(if opts.quick { 128 } else { 2048 }));
        let stats = sim.profile(&kernel);
        table.row_owned(vec![
            label.to_string(),
            ms(stats.time_ms),
            pct(stats.l2.hit_rate()),
            format!("{:.2}", stats.dram_bytes as f64 / 1e6),
        ]);
    }
    opts.emit(
        "ablation_edge_order",
        "scatter locality: destination-sorted vs shuffled edge index",
        &table,
    );
}
