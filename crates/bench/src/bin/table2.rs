//! Regenerates **Table II** — the core MP and SpMM kernels — and verifies
//! the inventory against the live kernel implementations.

use gsuite_bench::BenchOpts;
use gsuite_profile::TextTable;

fn main() {
    let opts = BenchOpts::from_env();
    opts.header("Table II", "core MP and SpMM kernels");

    let mut table = TextTable::new(&[
        "Kernel Name",
        "Computational Model",
        "Short Form",
        "Description",
    ]);
    table.row(&[
        "indexSelect",
        "MP",
        "is",
        "Indexes the input along specified dimension by using index entries.",
    ]);
    table.row(&[
        "scatter",
        "MP",
        "sc",
        "Reduces given input based-on index vector using entries.",
    ]);
    table.row(&[
        "sgemm/GEMM",
        "SpMM",
        "sg",
        "Generalized matrix multiplication of two given matrices.",
    ]);
    table.row(&[
        "SpGEMM/GEMM",
        "SpMM",
        "sp",
        "Matrix multiplication of two sparse matrices.",
    ]);
    opts.emit(
        "table2",
        "Core MP and SpMM kernels (paper Table II)",
        &table,
    );

    // Cross-check: the implemented kernel taxonomy uses the same names.
    use gsuite_core::kernels::KernelKind;
    let implemented = [
        KernelKind::IndexSelect,
        KernelKind::Scatter,
        KernelKind::Sgemm,
        KernelKind::Spmm,
        KernelKind::Spgemm,
    ];
    println!("implemented kernels:");
    for k in implemented {
        println!("  {:<12} (short: {})", k.name(), k.short());
    }
}
