//! Regenerates **Table II** — the core MP and SpMM kernels — and verifies
//! the inventory against the live kernel implementations.
//!
//! Registry entry `"table2"`; equivalent to
//! `gsuite-cli run-scenario table2`.

fn main() {
    gsuite_scenarios::registry::run_main("table2");
}
