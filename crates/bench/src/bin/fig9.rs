//! Regenerates **Fig. 9** — compute and memory utilization of the
//! gSuite-MP kernels across models and datasets (cycle simulator).
//!
//! Expected shape (paper §V-D6): scatter uses memory best (especially in
//! GIN/SAGE, where it runs at input width); sgemm's compute *and* memory
//! utilization scale up with workload size (LiveJournal highest).

use gsuite_bench::{par_sweep, pct, profile_pipeline, sweep_config, BenchOpts};
use gsuite_core::config::{CompModel, FrameworkKind, GnnModel};
use gsuite_graph::datasets::Dataset;
use gsuite_profile::TextTable;

fn main() {
    let opts = BenchOpts::from_env();
    opts.header(
        "Fig. 9",
        "compute/memory utilization (%) of gSuite-MP kernels (cycle simulator)",
    );

    let kernels = ["sgemm", "indexSelect", "scatter"];
    for model in GnnModel::ALL {
        let mut table = TextTable::new(&["Dataset", "Kernel", "Compute", "Memory"]);
        // Independent cycle simulations per dataset: fan across cores.
        let profiles = par_sweep(&Dataset::ALL, |&dataset| {
            let cfg = sweep_config(&opts, FrameworkKind::GSuite, model, CompModel::Mp, dataset);
            let sim = opts.sim_for(dataset);
            profile_pipeline(&cfg, &sim)
        });
        for (dataset, profile) in Dataset::ALL.iter().zip(&profiles) {
            let merged = profile.merged_by_kernel();
            for kernel in kernels {
                let Some(k) = merged.iter().find(|k| k.kernel == kernel) else {
                    continue;
                };
                table.row_owned(vec![
                    dataset.short().to_string(),
                    kernel.to_string(),
                    pct(k.compute_utilization),
                    pct(k.memory_utilization),
                ]);
            }
        }
        opts.emit(
            &format!("fig9_{}", model.name().to_lowercase()),
            &format!("Compute/memory utilization — gSuite-MP {model}"),
            &table,
        );
    }
}
