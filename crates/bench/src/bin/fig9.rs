//! Regenerates **Fig. 9** — compute and memory utilization of the
//! gSuite-MP kernels across models and datasets (cycle simulator).
//!
//! Expected shape (paper §V-D6): scatter uses memory best (especially in
//! GIN/SAGE, where it runs at input width); sgemm's compute *and* memory
//! utilization scale up with workload size (LiveJournal highest).
//!
//! Registry entry `"fig9"`; equivalent to `gsuite-cli run-scenario fig9`.

fn main() {
    gsuite_scenarios::registry::run_main("fig9");
}
