//! Regenerates **Fig. 7** — the warp-occupancy distribution
//! (Stall / Idle / W8 / W20 / W32) of the gSuite-MP kernels across models
//! and datasets (cycle simulator).
//!
//! Expected shape (paper §V-D4): GCN's MP kernels (which run at hidden
//! width) idle heavily on the small datasets, GIN/SAGE (input width) keep
//! the machine busy; sgemm is immune to the model choice.
//!
//! Registry entry `"fig7"`; equivalent to `gsuite-cli run-scenario fig7`.

fn main() {
    gsuite_scenarios::registry::run_main("fig7");
}
