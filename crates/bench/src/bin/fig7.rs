//! Regenerates **Fig. 7** — the warp-occupancy distribution
//! (Stall / Idle / W8 / W20 / W32) of the gSuite-MP kernels across models
//! and datasets (cycle simulator).
//!
//! Expected shape (paper §V-D4): GCN's MP kernels (which run at hidden
//! width) idle heavily on the small datasets, GIN/SAGE (input width) keep
//! the machine busy; sgemm is immune to the model choice.

use gsuite_bench::{par_sweep, pct, profile_pipeline, sweep_config, BenchOpts};
use gsuite_core::config::{CompModel, FrameworkKind, GnnModel};
use gsuite_graph::datasets::Dataset;
use gsuite_profile::TextTable;

fn main() {
    let opts = BenchOpts::from_env();
    opts.header(
        "Fig. 7",
        "warp occupancy distribution (%) of gSuite-MP kernels (cycle simulator)",
    );

    let kernels = ["sgemm", "scatter", "indexSelect"];
    for model in GnnModel::ALL {
        let mut table = TextTable::new(&["Dataset", "Kernel", "Stall", "Idle", "W8", "W20", "W32"]);
        // Independent cycle simulations per dataset: fan across cores.
        let profiles = par_sweep(&Dataset::ALL, |&dataset| {
            let cfg = sweep_config(&opts, FrameworkKind::GSuite, model, CompModel::Mp, dataset);
            let sim = opts.sim_for(dataset);
            profile_pipeline(&cfg, &sim)
        });
        for (dataset, profile) in Dataset::ALL.iter().zip(&profiles) {
            let merged = profile.merged_by_kernel();
            for kernel in kernels {
                let Some(k) = merged.iter().find(|k| k.kernel == kernel) else {
                    continue;
                };
                let occ = k.occupancy.expect("sim backend reports occupancy");
                let f = occ.fractions();
                table.row_owned(vec![
                    dataset.short().to_string(),
                    kernel.to_string(),
                    pct(f[0].1),
                    pct(f[1].1),
                    pct(f[2].1),
                    pct(f[3].1),
                    pct(f[4].1),
                ]);
            }
        }
        opts.emit(
            &format!("fig7_{}", model.name().to_lowercase()),
            &format!("Warp occupancy — gSuite-MP {model}"),
            &table,
        );
    }
}
