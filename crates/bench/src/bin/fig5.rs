//! Regenerates **Fig. 5** — the instruction breakdown of the core kernels,
//! shown (as in the paper) for GCN-Cora and GIN-LiveJournal under both
//! computational models.
//!
//! Expected shape (paper §V-D2): scatter and indexSelect are dominated by
//! integer (address-arithmetic) instructions, sgemm by FP32; the
//! distribution is a *kernel* property, stable across models and datasets.
//!
//! Registry entry `"fig5"`; equivalent to `gsuite-cli run-scenario fig5`.

fn main() {
    gsuite_scenarios::registry::run_main("fig5");
}
