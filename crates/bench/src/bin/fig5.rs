//! Regenerates **Fig. 5** — the instruction breakdown of the core kernels,
//! shown (as in the paper) for GCN-Cora and GIN-LiveJournal under both
//! computational models.
//!
//! Expected shape (paper §V-D2): scatter and indexSelect are dominated by
//! integer (address-arithmetic) instructions, sgemm by FP32; the
//! distribution is a *kernel* property, stable across models and datasets.

use gsuite_bench::{par_sweep, pct, profile_pipeline, sweep_config, BenchOpts};
use gsuite_core::config::{CompModel, FrameworkKind, GnnModel};
use gsuite_graph::datasets::Dataset;
use gsuite_profile::TextTable;

fn main() {
    let opts = BenchOpts::from_env();
    opts.header("Fig. 5", "instruction breakdown (%) of the core kernels");

    let cases: [(&str, GnnModel, Dataset, CompModel, &[&str]); 4] = [
        (
            "gSuite-MP GCN-CR",
            GnnModel::Gcn,
            Dataset::Cora,
            CompModel::Mp,
            &["sgemm", "scatter", "indexSelect"],
        ),
        (
            "gSuite-MP GIN-LJ",
            GnnModel::Gin,
            Dataset::LiveJournal,
            CompModel::Mp,
            &["sgemm", "scatter", "indexSelect"],
        ),
        (
            "gSuite-SpMM GCN-CR",
            GnnModel::Gcn,
            Dataset::Cora,
            CompModel::Spmm,
            &["SpMM", "SpGEMM", "sgemm"],
        ),
        (
            "gSuite-SpMM GIN-LJ",
            GnnModel::Gin,
            Dataset::LiveJournal,
            CompModel::Spmm,
            &["SpMM", "sgemm"],
        ),
    ];

    // The four cases are independent build+profiles: fan across cores.
    let profiles = par_sweep(&cases, |&(_, model, dataset, comp, _)| {
        let cfg = sweep_config(&opts, FrameworkKind::GSuite, model, comp, dataset);
        profile_pipeline(&cfg, &opts.hw())
    });

    for ((label, _, _, _, kernels), profile) in cases.iter().zip(&profiles) {
        let merged = profile.merged_by_kernel();
        let mut table =
            TextTable::new(&["Kernel", "FP32", "INT", "Load/Store", "Control", "other"]);
        for kernel in *kernels {
            let Some(k) = merged.iter().find(|k| k.kernel == *kernel) else {
                continue;
            };
            let f = k.instr_mix.fractions();
            table.row_owned(vec![
                kernel.to_string(),
                pct(f[0].1),
                pct(f[1].1),
                pct(f[2].1),
                pct(f[3].1),
                pct(f[4].1),
            ]);
        }
        opts.emit(
            &format!("fig5_{}", label.to_lowercase().replace([' ', '-'], "_")),
            &format!("Instruction breakdown — {label}"),
            &table,
        );
    }
    println!("shape check: is/sc INT-heavy (address math), sgemm FP32-heavy, stable across cases.");
}
