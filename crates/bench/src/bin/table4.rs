//! Regenerates **Table IV** — the evaluation datasets — and validates that
//! the synthetic generators hit the paper's statistics at the configured
//! scale.
//!
//! Registry entry `"table4"` (a dataset-census grid: graphs load through
//! the scenario runner's memoized cache, no pipeline cells); equivalent to
//! `gsuite-cli run-scenario table4`.

fn main() {
    gsuite_scenarios::registry::run_main("table4");
}
