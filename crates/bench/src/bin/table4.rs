//! Regenerates **Table IV** — the evaluation datasets — and validates that
//! the synthetic generators hit the paper's statistics at the configured
//! scale.

use gsuite_bench::BenchOpts;
use gsuite_graph::datasets::Dataset;
use gsuite_profile::TextTable;

fn main() {
    let opts = BenchOpts::from_env();
    opts.header("Table IV", "included datasets");

    let mut spec_table =
        TextTable::new(&["Dataset", "Nodes", "Feature Length", "Edges", "Short Form"]);
    for d in Dataset::ALL {
        let s = d.spec();
        spec_table.row_owned(vec![
            s.name.to_string(),
            s.nodes.to_string(),
            s.feature_len.to_string(),
            s.edges.to_string(),
            s.short.to_string(),
        ]);
    }
    opts.emit(
        "table4_spec",
        "Dataset specifications (paper Table IV)",
        &spec_table,
    );

    let mut gen_table = TextTable::new(&[
        "Dataset",
        "Scale",
        "Nodes",
        "Edges",
        "Feature Length",
        "Avg Degree",
        "Max Degree",
    ]);
    for d in Dataset::ALL {
        let scale = opts.scale_for(d);
        let g = d.load_scaled(scale);
        let st = g.stats();
        gen_table.row_owned(vec![
            d.name().to_string(),
            format!("{scale}"),
            st.nodes.to_string(),
            st.edges.to_string(),
            st.feature_len.to_string(),
            format!("{:.2}", st.avg_degree),
            st.max_degree.to_string(),
        ]);
    }
    opts.emit(
        "table4_generated",
        "Generated instances at the configured scale",
        &gen_table,
    );
}
