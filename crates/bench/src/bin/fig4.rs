//! Regenerates **Fig. 4** — the kernel execution-time distribution of every
//! framework across models and datasets.
//!
//! Expected shape (paper §V-D1): the GNN model — not the dataset or
//! framework — is the main determinant of the distribution; sgemm's share
//! grows with feature width, scatter/indexSelect's with edge count.
//!
//! Registry entry `"fig4"`; equivalent to `gsuite-cli run-scenario fig4`.

fn main() {
    gsuite_scenarios::registry::run_main("fig4");
}
