//! Regenerates **Fig. 4** — the kernel execution-time distribution of every
//! framework across models and datasets.
//!
//! Expected shape (paper §V-D1): the GNN model — not the dataset or
//! framework — is the main determinant of the distribution; sgemm's share
//! grows with feature width, scatter/indexSelect's with edge count.

use gsuite_bench::{par_sweep, pct, profile_pipeline, sweep_config, BenchOpts};
use gsuite_core::config::{CompModel, FrameworkKind, GnnModel};
use gsuite_graph::datasets::Dataset;
use gsuite_profile::TextTable;

const KERNEL_COLUMNS: [&str; 6] = ["sgemm", "scatter", "indexSelect", "SpMM", "SpGEMM", "other"];

fn main() {
    let opts = BenchOpts::from_env();
    opts.header(
        "Fig. 4",
        "kernel execution-time distribution (%) per framework / model / dataset",
    );

    let frameworks: [(&str, FrameworkKind, CompModel); 4] = [
        ("PyG", FrameworkKind::PygLike, CompModel::Mp),
        ("DGL", FrameworkKind::DglLike, CompModel::Spmm),
        ("gSuite-MP", FrameworkKind::GSuite, CompModel::Mp),
        ("gSuite-SpMM", FrameworkKind::GSuite, CompModel::Spmm),
    ];

    for (fw_label, fw, comp) in frameworks {
        for model in GnnModel::ALL {
            // gSuite-SpMM has no SAGE (paper §V-A).
            if fw == FrameworkKind::GSuite && comp == CompModel::Spmm && model == GnnModel::Sage {
                continue;
            }
            let mut table = TextTable::new(&[
                "Dataset",
                "sgemm",
                "scatter",
                "indexSelect",
                "SpMM",
                "SpGEMM",
                "other",
            ]);
            // One independent build+profile per dataset: fan across cores.
            let rows = par_sweep(&Dataset::ALL, |&dataset| {
                let cfg = sweep_config(&opts, fw, model, comp, dataset);
                let profile = profile_pipeline(&cfg, &opts.hw());
                let shares = profile.kernel_time_shares();
                let share_of = |name: &str| -> String {
                    shares
                        .iter()
                        .find(|(k, _)| k == name)
                        .map(|&(_, s)| pct(s))
                        .unwrap_or_else(|| "-".to_string())
                };
                let mut row = vec![dataset.short().to_string()];
                row.extend(KERNEL_COLUMNS.iter().map(|k| share_of(k)));
                row
            });
            for row in rows {
                table.row_owned(row);
            }
            opts.emit(
                &format!(
                    "fig4_{}_{}",
                    fw_label.to_lowercase().replace('-', "_"),
                    model.name().to_lowercase()
                ),
                &format!("Kernel time distribution — {fw_label}, {model}"),
                &table,
            );
        }
    }
}
