//! Regenerates **Fig. 3** — end-to-end execution time of PyG, DGL,
//! gSuite-MP and gSuite-SpMM across the three GNN models and five datasets.
//!
//! Expected shape (paper §V-D1): PyG slowest (initialization-dominated),
//! gSuite variants fastest; times grow strongly on Reddit/LiveJournal.
//!
//! The grid itself lives in the scenario registry
//! (`gsuite_scenarios::registry`, entry `"fig3"`); this binary is a thin
//! launcher, equivalent to `gsuite-cli run-scenario fig3`.

fn main() {
    gsuite_scenarios::registry::run_main("fig3");
}
