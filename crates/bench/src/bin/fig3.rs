//! Regenerates **Fig. 3** — end-to-end execution time of PyG, DGL,
//! gSuite-MP and gSuite-SpMM across the three GNN models and five datasets.
//!
//! Expected shape (paper §V-D1): PyG slowest (initialization-dominated),
//! gSuite variants fastest; times grow strongly on Reddit/LiveJournal.

use gsuite_bench::{ms, par_sweep, profile_pipeline, sweep_config, BenchOpts};
use gsuite_core::config::{CompModel, FrameworkKind, GnnModel};
use gsuite_graph::datasets::Dataset;
use gsuite_profile::TextTable;

/// The four framework variants of the figure, in column order.
const VARIANTS: [(FrameworkKind, CompModel); 4] = [
    (FrameworkKind::PygLike, CompModel::Mp),
    (FrameworkKind::DglLike, CompModel::Spmm),
    (FrameworkKind::GSuite, CompModel::Mp),
    (FrameworkKind::GSuite, CompModel::Spmm),
];

fn main() {
    let opts = BenchOpts::from_env();
    opts.header(
        "Fig. 3",
        "end-to-end execution time (ms) per framework, model and dataset",
    );

    for model in GnnModel::ALL {
        // Every (dataset, framework) cell is an independent build+profile:
        // fan the whole figure across cores and assemble rows in order.
        let cells: Vec<(Dataset, FrameworkKind, CompModel)> = Dataset::ALL
            .iter()
            .flat_map(|&dataset| VARIANTS.iter().map(move |&(fw, comp)| (dataset, fw, comp)))
            .collect();
        let results = par_sweep(&cells, |&(dataset, fw, comp)| {
            // gSuite has no SAGE-SpMM (paper §V-A).
            if fw == FrameworkKind::GSuite && model == GnnModel::Sage && comp == CompModel::Spmm {
                return ("n/a".to_string(), "n/a".to_string());
            }
            let cfg = sweep_config(&opts, fw, model, comp, dataset);
            let p = profile_pipeline(&cfg, &opts.hw());
            (ms(p.total_time_ms()), ms(p.device_time_ms()))
        });

        let mut table = TextTable::new(&["Dataset", "PyG", "DGL", "gSuite-MP", "gSuite-SpMM"]);
        let mut device_table =
            TextTable::new(&["Dataset", "PyG", "DGL", "gSuite-MP", "gSuite-SpMM"]);
        for (row, dataset) in Dataset::ALL.iter().enumerate() {
            let cells = &results[row * VARIANTS.len()..(row + 1) * VARIANTS.len()];
            let mut total = vec![dataset.short().to_string()];
            let mut device = vec![dataset.short().to_string()];
            for (t, d) in cells {
                total.push(t.clone());
                device.push(d.clone());
            }
            table.row_owned(total);
            device_table.row_owned(device);
        }
        opts.emit(
            &format!("fig3_{}", model.name().to_lowercase()),
            &format!("End-to-end execution time (ms) — {model}"),
            &table,
        );
        opts.emit(
            &format!("fig3_{}_device", model.name().to_lowercase()),
            &format!("Device-only time (ms) — {model} (kernel growth across datasets)"),
            &device_table,
        );
    }
    println!("shape check: PyG > DGL > gSuite on every row (init-dominated small datasets);");
    println!("             all frameworks converge toward kernel time on RD/LJ.");
}
