//! Regenerates **Fig. 3** — end-to-end execution time of PyG, DGL,
//! gSuite-MP and gSuite-SpMM across the three GNN models and five datasets.
//!
//! Expected shape (paper §V-D1): PyG slowest (initialization-dominated),
//! gSuite variants fastest; times grow strongly on Reddit/LiveJournal.

use gsuite_bench::{ms, profile_pipeline, sweep_config, BenchOpts};
use gsuite_core::config::{CompModel, FrameworkKind, GnnModel};
use gsuite_graph::datasets::Dataset;
use gsuite_profile::TextTable;

fn main() {
    let opts = BenchOpts::from_env();
    opts.header(
        "Fig. 3",
        "end-to-end execution time (ms) per framework, model and dataset",
    );

    for model in GnnModel::ALL {
        let mut table = TextTable::new(&[
            "Dataset", "PyG", "DGL", "gSuite-MP", "gSuite-SpMM",
        ]);
        let mut device_table = TextTable::new(&[
            "Dataset", "PyG", "DGL", "gSuite-MP", "gSuite-SpMM",
        ]);
        for dataset in Dataset::ALL {
            let hw = opts.hw();
            let cell = |fw: FrameworkKind, comp: CompModel| -> (String, String) {
                // gSuite has no SAGE-SpMM (paper §V-A).
                if fw == FrameworkKind::GSuite
                    && model == GnnModel::Sage
                    && comp == CompModel::Spmm
                {
                    return ("n/a".to_string(), "n/a".to_string());
                }
                let cfg = sweep_config(&opts, fw, model, comp, dataset);
                let p = profile_pipeline(&cfg, &hw);
                (ms(p.total_time_ms()), ms(p.device_time_ms()))
            };
            let pyg = cell(FrameworkKind::PygLike, CompModel::Mp);
            let dgl = cell(FrameworkKind::DglLike, CompModel::Spmm);
            let gs_mp = cell(FrameworkKind::GSuite, CompModel::Mp);
            let gs_sp = cell(FrameworkKind::GSuite, CompModel::Spmm);
            table.row_owned(vec![
                dataset.short().to_string(),
                pyg.0,
                dgl.0,
                gs_mp.0,
                gs_sp.0,
            ]);
            device_table.row_owned(vec![
                dataset.short().to_string(),
                pyg.1,
                dgl.1,
                gs_mp.1,
                gs_sp.1,
            ]);
        }
        opts.emit(
            &format!("fig3_{}", model.name().to_lowercase()),
            &format!("End-to-end execution time (ms) — {model}"),
            &table,
        );
        opts.emit(
            &format!("fig3_{}_device", model.name().to_lowercase()),
            &format!("Device-only time (ms) — {model} (kernel growth across datasets)"),
            &device_table,
        );
    }
    println!("shape check: PyG > DGL > gSuite on every row (init-dominated small datasets);");
    println!("             all frameworks converge toward kernel time on RD/LJ.");
}
