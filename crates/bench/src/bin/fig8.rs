//! Regenerates **Fig. 8** — L1 and L2 hit rates of the gSuite-MP kernels,
//! comparing the hardware profiler (nvprof stand-in) against the cycle
//! simulator (GPGPU-Sim stand-in).
//!
//! Expected shape (paper §V-D5): L1 rates from the two backends align much
//! better than L2 rates; the mismatch is worst for the small inputs
//! (CR/CS); larger inputs drive both hit rates down.

use gsuite_bench::{par_sweep, pct, profile_pipeline, sweep_config, BenchOpts};
use gsuite_core::config::{CompModel, FrameworkKind, GnnModel};
use gsuite_graph::datasets::Dataset;
use gsuite_profile::{PipelineProfile, TextTable};

fn main() {
    let opts = BenchOpts::from_env();
    opts.header(
        "Fig. 8",
        "L1/L2 hit rates of gSuite-MP kernels: NVProf-like vs cycle sim",
    );

    let kernels = ["sgemm", "indexSelect", "scatter"];
    let mut l1_gap_sum = 0.0;
    let mut l2_gap_sum = 0.0;
    let mut n = 0usize;

    for model in GnnModel::ALL {
        let mut table = TextTable::new(&[
            "Dataset",
            "Kernel",
            "L1 (NVProf)",
            "L1 (Sim)",
            "L2 (NVProf)",
            "L2 (Sim)",
        ]);
        // One task per dataset, each measuring both backends (hw then sim)
        // so the per-dataset comparison pair stays together; the five
        // tasks fan across cores.
        let profiles: Vec<(PipelineProfile, PipelineProfile)> =
            par_sweep(&Dataset::ALL, |&dataset| {
                let cfg = sweep_config(&opts, FrameworkKind::GSuite, model, CompModel::Mp, dataset);
                let hw = profile_pipeline(&cfg, &opts.hw());
                let sim = profile_pipeline(&cfg, &opts.sim_for(dataset));
                (hw, sim)
            });
        for (dataset, (hw, sim)) in Dataset::ALL.iter().zip(&profiles) {
            let hw_merged = hw.merged_by_kernel();
            let sim_merged = sim.merged_by_kernel();
            for kernel in kernels {
                let (Some(h), Some(s)) = (
                    hw_merged.iter().find(|k| k.kernel == kernel),
                    sim_merged.iter().find(|k| k.kernel == kernel),
                ) else {
                    continue;
                };
                l1_gap_sum += (h.l1.hit_rate() - s.l1.hit_rate()).abs();
                l2_gap_sum += (h.l2.hit_rate() - s.l2.hit_rate()).abs();
                n += 1;
                table.row_owned(vec![
                    dataset.short().to_string(),
                    kernel.to_string(),
                    pct(h.l1.hit_rate()),
                    pct(s.l1.hit_rate()),
                    pct(h.l2.hit_rate()),
                    pct(s.l2.hit_rate()),
                ]);
            }
        }
        opts.emit(
            &format!("fig8_{}", model.name().to_lowercase()),
            &format!("L1/L2 hit rates, NVProf vs Sim — gSuite-MP {model}"),
            &table,
        );
    }
    if n > 0 {
        println!(
            "mean |NVProf - Sim| gap: L1 {} vs L2 {} (paper: L1 aligns better than L2)",
            pct(l1_gap_sum / n as f64),
            pct(l2_gap_sum / n as f64)
        );
    }
}
