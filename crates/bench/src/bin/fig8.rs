//! Regenerates **Fig. 8** — L1 and L2 hit rates of the gSuite-MP kernels,
//! comparing the hardware profiler (nvprof stand-in) against the cycle
//! simulator (GPGPU-Sim stand-in).
//!
//! Expected shape (paper §V-D5): L1 rates from the two backends align much
//! better than L2 rates; the mismatch is worst for the small inputs
//! (CR/CS); larger inputs drive both hit rates down.
//!
//! Registry entry `"fig8"` (a two-GPU-axis grid: the same pipeline builds
//! measured by both backends); equivalent to
//! `gsuite-cli run-scenario fig8`.

fn main() {
    gsuite_scenarios::registry::run_main("fig8");
}
