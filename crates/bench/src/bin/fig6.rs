//! Regenerates **Fig. 6** — the issue-stall distribution of the core
//! kernels under both computational models, across models and datasets
//! (cycle simulator).
//!
//! Expected shape (paper §V-D3): MemoryDependency dominates (46.3% on
//! average in the paper), growing with dataset size for every kernel
//! except sgemm.

use gsuite_bench::{par_sweep, pct, profile_pipeline, sweep_config, BenchOpts};
use gsuite_core::config::{CompModel, FrameworkKind, GnnModel};
use gsuite_gpu::StallReason;
use gsuite_graph::datasets::Dataset;
use gsuite_profile::TextTable;

fn main() {
    let opts = BenchOpts::from_env();
    opts.header(
        "Fig. 6",
        "issue-stall distribution (%) of core kernels (cycle simulator)",
    );

    let mp_kernels = ["sgemm", "scatter", "indexSelect"];
    let spmm_kernels = ["SpMM", "SpGEMM", "sgemm"];
    let mut memdep_sum = 0.0;
    let mut memdep_n = 0usize;

    for (comp, kernels, models) in [
        (CompModel::Mp, &mp_kernels[..], &GnnModel::ALL[..]),
        (
            CompModel::Spmm,
            &spmm_kernels[..],
            &[GnnModel::Gcn, GnnModel::Gin][..],
        ),
    ] {
        for &model in models {
            let mut table = TextTable::new(&[
                "Dataset",
                "Kernel",
                "MemoryDep",
                "ExecDep",
                "InstrIssued",
                "InstrFetch",
                "Sync",
                "NotSelected",
            ]);
            // One independent cycle-simulated pipeline per dataset: fan the
            // expensive simulations across cores, then render in order.
            let profiles = par_sweep(&Dataset::ALL, |&dataset| {
                let cfg = sweep_config(&opts, FrameworkKind::GSuite, model, comp, dataset);
                let sim = opts.sim_for(dataset);
                profile_pipeline(&cfg, &sim)
            });
            for (dataset, profile) in Dataset::ALL.iter().zip(&profiles) {
                for kernel in kernels {
                    let merged = profile.merged_by_kernel();
                    let Some(k) = merged.iter().find(|k| k.kernel == *kernel) else {
                        continue;
                    };
                    let stalls = k.stalls.expect("sim backend reports stalls");
                    let memdep = stalls.fraction(StallReason::MemoryDependency);
                    memdep_sum += memdep;
                    memdep_n += 1;
                    table.row_owned(vec![
                        dataset.short().to_string(),
                        kernel.to_string(),
                        pct(memdep),
                        pct(stalls.fraction(StallReason::ExecutionDependency)),
                        pct(stalls.fraction(StallReason::InstructionIssued)),
                        pct(stalls.fraction(StallReason::InstructionFetch)),
                        pct(stalls.fraction(StallReason::Synchronization)),
                        pct(stalls.fraction(StallReason::NotSelected)),
                    ]);
                }
            }
            opts.emit(
                &format!(
                    "fig6_{}_{}",
                    comp.name().to_lowercase(),
                    model.name().to_lowercase()
                ),
                &format!("Issue-stall distribution — gSuite-{comp} {model}"),
                &table,
            );
        }
    }
    if memdep_n > 0 {
        println!(
            "average MemoryDependency share: {} (paper: 46.3%)",
            pct(memdep_sum / memdep_n as f64)
        );
    }
}
