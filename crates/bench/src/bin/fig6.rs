//! Regenerates **Fig. 6** — the issue-stall distribution of the core
//! kernels under both computational models, across models and datasets
//! (cycle simulator).
//!
//! Expected shape (paper §V-D3): MemoryDependency dominates (46.3% on
//! average in the paper), growing with dataset size for every kernel
//! except sgemm.
//!
//! Registry entry `"fig6"`; equivalent to `gsuite-cli run-scenario fig6`.

fn main() {
    gsuite_scenarios::registry::run_main("fig6");
}
