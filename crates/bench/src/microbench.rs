//! A tiny wall-clock micro-benchmark harness — the offline stand-in for
//! criterion used by the `benches/` targets.
//!
//! Each measurement runs a closure for a warm-up phase and then a timed
//! phase, reporting the mean per-iteration time and an optional domain
//! throughput (e.g. *warps/s* for trace replay). Results render as an
//! aligned table on stdout and, with `--json PATH`, as a machine-readable
//! JSON document — `scripts/bench.sh` merges those into the repository's
//! `BENCH_*.json` trajectory files.

use std::fmt::Write as _;
use std::time::Instant;

/// One benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id, e.g. `"sim_replay/SpMM"`.
    pub name: String,
    /// Timed iterations.
    pub iters: u64,
    /// Total timed seconds.
    pub total_s: f64,
    /// Work units per iteration and their unit label (e.g. warps), for
    /// throughput reporting.
    pub units_per_iter: Option<(f64, &'static str)>,
}

impl BenchResult {
    /// Mean seconds per iteration.
    pub fn per_iter_s(&self) -> f64 {
        self.total_s / self.iters.max(1) as f64
    }

    /// Units per second, when a unit was declared.
    pub fn throughput(&self) -> Option<(f64, &'static str)> {
        self.units_per_iter
            .map(|(units, label)| (units * self.iters as f64 / self.total_s.max(1e-12), label))
    }
}

/// Collects measurements for one bench binary.
#[derive(Debug, Default)]
pub struct Runner {
    /// Group label prefixed to result names.
    group: String,
    results: Vec<BenchResult>,
}

impl Runner {
    /// A runner whose results are prefixed `group/`.
    pub fn new(group: &str) -> Self {
        Runner {
            group: group.to_string(),
            results: Vec::new(),
        }
    }

    /// All measurements so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Times `f`, auto-scaling the iteration count so the timed phase runs
    /// for roughly `target_s` seconds (one warm-up call is always made).
    pub fn bench<F: FnMut()>(&mut self, name: &str, target_s: f64, f: F) -> &BenchResult {
        self.bench_units(name, target_s, None, f)
    }

    /// Like [`Runner::bench`] with a work-unit count per iteration, so the
    /// report includes a throughput column.
    ///
    /// The timed phase is split into several batches and the **fastest**
    /// batch is reported — the standard protocol for noisy shared machines,
    /// where the minimum is the best estimator of intrinsic cost.
    pub fn bench_units<F: FnMut()>(
        &mut self,
        name: &str,
        target_s: f64,
        units_per_iter: Option<(f64, &'static str)>,
        mut f: F,
    ) -> &BenchResult {
        const BATCHES: u64 = 5;
        // Warm-up + calibration: run once, estimate the per-iter cost.
        let t0 = Instant::now();
        f();
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let per_batch = ((target_s / BATCHES as f64 / once).ceil() as u64).clamp(1, 1_000_000);
        let mut best_s = f64::INFINITY;
        for _ in 0..BATCHES {
            let t1 = Instant::now();
            for _ in 0..per_batch {
                f();
            }
            best_s = best_s.min(t1.elapsed().as_secs_f64());
        }
        let result = BenchResult {
            name: format!("{}/{}", self.group, name),
            iters: per_batch,
            total_s: best_s,
            units_per_iter,
        };
        println!("{}", render_line(&result));
        self.results.push(result);
        self.results.last().expect("just pushed")
    }

    /// Renders the result table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            let _ = writeln!(out, "{}", render_line(r));
        }
        out
    }

    /// Serializes all results as a JSON array (hand-rolled; stable field
    /// order, no external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            let throughput = r
                .throughput()
                .map(|(v, u)| format!(",\"throughput\":{v:.3},\"unit\":\"{u}/s\""))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  {{\"name\":\"{}\",\"iters\":{},\"total_s\":{:.6},\"per_iter_ms\":{:.6}{}}}{}",
                r.name,
                r.iters,
                r.total_s,
                r.per_iter_s() * 1e3,
                throughput,
                sep
            );
        }
        out.push(']');
        out
    }

    /// Handles the common bench-binary CLI: ignores harness flags cargo
    /// passes (`--bench`), honors `--json PATH`, then writes the JSON.
    pub fn finish_from_env(&self) {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut json_path: Option<String> = None;
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--json" {
                json_path = args.get(i + 1).cloned();
                i += 2;
            } else {
                i += 1; // tolerate --bench and filters from the cargo harness
            }
        }
        if let Some(path) = json_path.or_else(|| std::env::var("GSUITE_BENCH_JSON").ok()) {
            std::fs::write(&path, self.to_json()).expect("write bench json");
            println!("[json] {path}");
        }
    }
}

fn render_line(r: &BenchResult) -> String {
    let per = r.per_iter_s();
    let time = if per >= 1.0 {
        format!("{per:.3} s")
    } else if per >= 1e-3 {
        format!("{:.3} ms", per * 1e3)
    } else {
        format!("{:.3} us", per * 1e6)
    };
    match r.throughput() {
        Some((tput, unit)) => format!(
            "{:<44} {:>12}/iter  {:>14.0} {unit}/s  ({} iters)",
            r.name, time, tput, r.iters
        ),
        None => format!("{:<44} {:>12}/iter  ({} iters)", r.name, time, r.iters),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_and_renders() {
        let mut r = Runner::new("t");
        let mut x = 0u64;
        r.bench_units("spin", 0.01, Some((100.0, "ops")), || {
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
        });
        assert_eq!(r.results().len(), 1);
        let res = &r.results()[0];
        assert!(res.iters >= 1);
        assert!(res.total_s > 0.0);
        let (tput, unit) = res.throughput().unwrap();
        assert!(tput > 0.0);
        assert_eq!(unit, "ops");
        assert!(r.render().contains("t/spin"));
    }

    #[test]
    fn json_shape_is_valid_enough() {
        let mut r = Runner::new("g");
        r.bench("noop", 0.001, || {});
        let j = r.to_json();
        assert!(j.starts_with('['));
        assert!(j.ends_with(']'));
        assert!(j.contains("\"name\":\"g/noop\""));
        assert!(j.contains("per_iter_ms"));
    }
}
