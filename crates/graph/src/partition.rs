//! Graph partitioning for sharded multi-device execution.
//!
//! A [`Partitioner`] splits a [`Graph`] into `N` shards for modeled
//! multi-GPU inference. Ownership follows the **aggregation** direction:
//! every edge `(src, dst)` belongs to the shard that owns `dst` (messages
//! flow `src -> dst`, so the owner of the destination performs the
//! reduction). The `src` endpoints a shard needs but does not own form its
//! **halo** (ghost-node) set — the rows whose features must be transferred
//! from their owner before each aggregation layer, and the quantity the
//! multi-GPU scenarios report as halo bytes.
//!
//! Three strategies are provided ([`PartitionStrategy`]), all **fully
//! deterministic in the seed** — the same `(graph, strategy, shards,
//! seed)` tuple produces the same partition on every host, every run and
//! every thread count:
//!
//! * [`PartitionStrategy::Hash`] — seeded-hash node assignment, the
//!   baseline random partition with the highest expected edge cut;
//! * [`PartitionStrategy::Range`] — contiguous node ranges (balanced to
//!   within one node), the locality-preserving layout for generators that
//!   emit correlated ids;
//! * [`PartitionStrategy::EdgeCut`] — greedy edge-cut minimization: nodes
//!   placed in descending-degree order onto the shard holding most of
//!   their already-placed neighbours, under a hard balance cap.
//!
//! # Example
//!
//! ```
//! use gsuite_graph::{GraphGenerator, Partitioner, PartitionStrategy};
//!
//! # fn main() -> Result<(), gsuite_graph::GraphError> {
//! let g = GraphGenerator::new(100, 400).seed(7).build_graph(8)?;
//! let p = Partitioner::new(4)
//!     .strategy(PartitionStrategy::EdgeCut)
//!     .seed(42)
//!     .partition(&g);
//! assert_eq!(p.parts.len(), 4);
//! // Shards cover the node set exactly.
//! let owned: usize = p.parts.iter().map(|s| s.owned.len()).sum();
//! assert_eq!(owned, g.num_nodes());
//! // Every cross-shard edge contributes its src to a halo set.
//! assert!(p.edge_cut_fraction() >= 0.0 && p.edge_cut_fraction() <= 1.0);
//! # Ok(())
//! # }
//! ```

use serde::{Deserialize, Serialize};

use gsuite_tensor::DenseMatrix;

use crate::{EdgeList, Graph, Result};

/// Node-assignment strategy of the [`Partitioner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// Seeded-hash assignment: node `v` goes to `fnv(seed, v) % shards`.
    #[default]
    Hash,
    /// Contiguous node ranges, balanced to within one node.
    Range,
    /// Greedy edge-cut minimization under a hard balance cap.
    EdgeCut,
}

impl PartitionStrategy {
    /// Every strategy, in registry order.
    pub const ALL: [PartitionStrategy; 3] = [
        PartitionStrategy::Hash,
        PartitionStrategy::Range,
        PartitionStrategy::EdgeCut,
    ];

    /// Lowercase name (`"hash"`, `"range"`, `"edgecut"`) — the CLI and
    /// wire-format token.
    pub fn name(self) -> &'static str {
        match self {
            PartitionStrategy::Hash => "hash",
            PartitionStrategy::Range => "range",
            PartitionStrategy::EdgeCut => "edgecut",
        }
    }

    /// Parses a strategy name (case-insensitive; accepts `edge-cut`).
    pub fn parse(s: &str) -> Option<PartitionStrategy> {
        match s.to_ascii_lowercase().as_str() {
            "hash" => Some(PartitionStrategy::Hash),
            "range" | "contiguous" => Some(PartitionStrategy::Range),
            "edgecut" | "edge-cut" | "greedy" => Some(PartitionStrategy::EdgeCut),
            _ => None,
        }
    }
}

impl std::fmt::Display for PartitionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic graph partitioner (see the module docs).
#[derive(Debug, Clone)]
pub struct Partitioner {
    shards: usize,
    strategy: PartitionStrategy,
    seed: u64,
}

impl Partitioner {
    /// A partitioner producing `shards` shards (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        Partitioner {
            shards: shards.max(1),
            strategy: PartitionStrategy::default(),
            seed: 0x5eed,
        }
    }

    /// Selects the assignment strategy (default: [`PartitionStrategy::Hash`]).
    pub fn strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the assignment seed (default `0x5eed`). Only the hash strategy
    /// consumes randomness, but the seed is part of every partition's
    /// identity so sweeps stay reproducible across strategies.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Partitions `graph`. The effective shard count is
    /// `min(shards, num_nodes)` (never more shards than nodes), and every
    /// effective shard owns at least one node.
    pub fn partition(&self, graph: &Graph) -> GraphPartition {
        let n = graph.num_nodes();
        let shards = self.shards.min(n).max(1);
        let mut assignment = match self.strategy {
            PartitionStrategy::Hash => assign_hash(n, shards, self.seed),
            PartitionStrategy::Range => assign_range(n, shards),
            PartitionStrategy::EdgeCut => assign_edgecut(graph, shards),
        };
        fix_empty_shards(&mut assignment, shards);

        // Per-shard owned node lists (global ids, ascending).
        let mut owned: Vec<Vec<u32>> = vec![Vec::new(); shards];
        for (v, &p) in assignment.iter().enumerate() {
            owned[p as usize].push(v as u32);
        }

        // Edge ownership + halo discovery: edge (s, d) belongs to
        // owner(d); a foreign src becomes a halo node of that shard.
        let mut edges_per_shard = vec![0usize; shards];
        let mut halo_seen: Vec<Vec<bool>> = vec![vec![false; n]; shards];
        let mut halo: Vec<Vec<u32>> = vec![Vec::new(); shards];
        let mut cut_edges = 0usize;
        for (s, d) in graph.edges().iter() {
            let p = assignment[d as usize] as usize;
            edges_per_shard[p] += 1;
            if assignment[s as usize] as usize != p {
                cut_edges += 1;
                if !halo_seen[p][s as usize] {
                    halo_seen[p][s as usize] = true;
                    halo[p].push(s);
                }
            }
        }
        for h in &mut halo {
            h.sort_unstable();
        }

        let parts: Vec<ShardPart> = (0..shards)
            .map(|p| {
                let mut halo_from = vec![0usize; shards];
                for &h in &halo[p] {
                    halo_from[assignment[h as usize] as usize] += 1;
                }
                ShardPart {
                    shard: p,
                    owned: std::mem::take(&mut owned[p]),
                    halo: std::mem::take(&mut halo[p]),
                    halo_from,
                    edges: edges_per_shard[p],
                }
            })
            .collect();

        GraphPartition {
            shards,
            strategy: self.strategy,
            seed: self.seed,
            assignment,
            parts,
            cut_edges,
            total_edges: graph.num_edges(),
        }
    }
}

/// One shard of a partition: its owned nodes, halo (ghost) nodes, and the
/// per-peer origin of the halo.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPart {
    /// Shard index.
    pub shard: usize,
    /// Owned global node ids, ascending.
    pub owned: Vec<u32>,
    /// Halo global node ids (owned by other shards), ascending — exactly
    /// the set of cross-shard `src` endpoints of this shard's edges.
    pub halo: Vec<u32>,
    /// Halo node count grouped by owning shard (`halo_from[p]` nodes come
    /// from shard `p`; `halo_from[self.shard] == 0`).
    pub halo_from: Vec<usize>,
    /// Edges this shard aggregates (edges whose destination it owns).
    pub edges: usize,
}

/// A complete partition of a graph (see [`Partitioner::partition`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphPartition {
    /// Effective shard count.
    pub shards: usize,
    /// The strategy that produced this partition.
    pub strategy: PartitionStrategy,
    /// The seed that produced this partition.
    pub seed: u64,
    /// Per-node owning shard.
    pub assignment: Vec<u32>,
    /// Per-shard node/halo/edge sets.
    pub parts: Vec<ShardPart>,
    /// Edges whose endpoints live on different shards.
    pub cut_edges: usize,
    /// Total edges of the partitioned graph.
    pub total_edges: usize,
}

impl GraphPartition {
    /// Fraction of edges cut by the partition, in `[0, 1]`.
    pub fn edge_cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }

    /// Total halo nodes across shards (a node replicated onto two foreign
    /// shards counts twice — it is transferred twice).
    pub fn halo_nodes(&self) -> usize {
        self.parts.iter().map(|p| p.halo.len()).sum()
    }

    /// Extracts shard `shard`'s executable subgraph plus the
    /// local-to-global node map.
    ///
    /// Local node ids are `owned` (ascending) followed by `halo`
    /// (ascending); the subgraph carries every edge whose destination the
    /// shard owns, re-indexed to local ids, and the feature rows of all
    /// local nodes gathered from the parent graph.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the substrate types (cannot
    /// occur for maps produced by [`Partitioner::partition`]).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.shards` or the partition does not belong
    /// to `graph` (node-count mismatch).
    pub fn subgraph(&self, graph: &Graph, shard: usize) -> Result<(Graph, Vec<u32>)> {
        assert_eq!(
            self.assignment.len(),
            graph.num_nodes(),
            "partition does not match graph"
        );
        let part = &self.parts[shard];
        let local_to_global: Vec<u32> =
            part.owned.iter().chain(part.halo.iter()).copied().collect();
        let mut global_to_local = vec![u32::MAX; graph.num_nodes()];
        for (l, &g) in local_to_global.iter().enumerate() {
            global_to_local[g as usize] = l as u32;
        }

        let mut src = Vec::with_capacity(part.edges);
        let mut dst = Vec::with_capacity(part.edges);
        for (s, d) in graph.edges().iter() {
            if self.assignment[d as usize] as usize == shard {
                src.push(global_to_local[s as usize]);
                dst.push(global_to_local[d as usize]);
            }
        }
        let edges = EdgeList::new(local_to_global.len(), src, dst)?;

        let feat = graph.feature_dim();
        let mut data = Vec::with_capacity(local_to_global.len() * feat);
        for &g in &local_to_global {
            data.extend_from_slice(graph.features().row(g as usize));
        }
        let features = DenseMatrix::from_vec(local_to_global.len(), feat, data)
            .expect("gathered rows are rectangular");
        let name = format!("{}/shard{}of{}", graph.name(), shard, self.shards);
        let sub = Graph::with_name(edges, features, name)?;
        Ok((sub, local_to_global))
    }
}

/// Seeded FNV-1a over `(seed, v)` — the hash strategy's assignment
/// function, stable across platforms.
fn node_hash(seed: u64, v: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in seed.to_le_bytes().into_iter().chain(v.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn assign_hash(n: usize, shards: usize, seed: u64) -> Vec<u32> {
    (0..n)
        .map(|v| (node_hash(seed, v as u64) % shards as u64) as u32)
        .collect()
}

fn assign_range(n: usize, shards: usize) -> Vec<u32> {
    // First `n % shards` shards take one extra node, so sizes differ by at
    // most one and every shard is non-empty for n >= shards.
    let base = n / shards;
    let extra = n % shards;
    let mut assignment = Vec::with_capacity(n);
    for p in 0..shards {
        let size = base + usize::from(p < extra);
        assignment.extend(std::iter::repeat_n(p as u32, size));
    }
    assignment
}

fn assign_edgecut(graph: &Graph, shards: usize) -> Vec<u32> {
    let n = graph.num_nodes();
    let cap = n.div_ceil(shards);

    // Undirected neighbour lists (CSR layout over both edge directions).
    let mut degree = vec![0u32; n];
    for (s, d) in graph.edges().iter() {
        degree[s as usize] += 1;
        degree[d as usize] += 1;
    }
    let mut offsets = vec![0usize; n + 1];
    for v in 0..n {
        offsets[v + 1] = offsets[v] + degree[v] as usize;
    }
    let mut neighbours = vec![0u32; offsets[n]];
    let mut cursor = offsets.clone();
    for (s, d) in graph.edges().iter() {
        neighbours[cursor[s as usize]] = d;
        cursor[s as usize] += 1;
        neighbours[cursor[d as usize]] = s;
        cursor[d as usize] += 1;
    }

    // Place nodes hottest-first: each goes to the shard holding most of
    // its already-placed neighbours, among shards below the balance cap;
    // ties break to the lighter shard, then the lower index — a total
    // order, so the result is deterministic.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(degree[v as usize]), v));
    let mut assignment = vec![u32::MAX; n];
    let mut load = vec![0usize; shards];
    let mut score = vec![0usize; shards];
    for &v in &order {
        score.fill(0);
        for &u in &neighbours[offsets[v as usize]..offsets[v as usize + 1]] {
            let p = assignment[u as usize];
            if p != u32::MAX {
                score[p as usize] += 1;
            }
        }
        let mut best: Option<usize> = None;
        for p in 0..shards {
            if load[p] >= cap {
                continue;
            }
            best = match best {
                None => Some(p),
                Some(b) => {
                    if (score[p], std::cmp::Reverse(load[p]))
                        > (score[b], std::cmp::Reverse(load[b]))
                    {
                        Some(p)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let p = best.expect("cap * shards >= n leaves an open shard");
        assignment[v as usize] = p as u32;
        load[p] += 1;
    }
    assignment
}

/// Guarantees every shard owns at least one node (when `n >= shards`) by
/// moving the lowest-id node out of the heaviest shard into each empty
/// one — a deterministic post-pass the hash and greedy strategies need on
/// small graphs.
fn fix_empty_shards(assignment: &mut [u32], shards: usize) {
    if assignment.len() < shards {
        return;
    }
    let mut load = vec![0usize; shards];
    for &p in assignment.iter() {
        load[p as usize] += 1;
    }
    for empty in 0..shards {
        if load[empty] > 0 {
            continue;
        }
        let donor = (0..shards)
            .max_by_key(|&p| (load[p], std::cmp::Reverse(p)))
            .expect("shards >= 1");
        let moved = assignment
            .iter()
            .position(|&p| p as usize == donor)
            .expect("heaviest shard is non-empty");
        assignment[moved] = empty as u32;
        load[donor] -= 1;
        load[empty] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphGenerator;

    fn graph(nodes: usize, edges: usize, seed: u64) -> Graph {
        GraphGenerator::new(nodes, edges)
            .seed(seed)
            .build_graph(4)
            .unwrap()
    }

    #[test]
    fn strategies_cover_the_node_set_exactly() {
        let g = graph(50, 200, 3);
        for strategy in PartitionStrategy::ALL {
            let p = Partitioner::new(4).strategy(strategy).partition(&g);
            let mut seen = [false; 50];
            for part in &p.parts {
                for &v in &part.owned {
                    assert!(!seen[v as usize], "{strategy}: node {v} owned twice");
                    seen[v as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "{strategy}: node unowned");
            assert!(p.parts.iter().all(|part| !part.owned.is_empty()));
        }
    }

    #[test]
    fn halo_is_exactly_the_cross_shard_src_set() {
        let g = graph(40, 160, 9);
        let p = Partitioner::new(3)
            .strategy(PartitionStrategy::Hash)
            .partition(&g);
        for part in &p.parts {
            let mut expected: Vec<u32> = g
                .edges()
                .iter()
                .filter(|&(s, d)| {
                    p.assignment[d as usize] as usize == part.shard
                        && p.assignment[s as usize] as usize != part.shard
                })
                .map(|(s, _)| s)
                .collect();
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(part.halo, expected, "shard {}", part.shard);
            assert_eq!(
                part.halo_from.iter().sum::<usize>(),
                part.halo.len(),
                "halo_from partitions the halo set"
            );
            assert_eq!(part.halo_from[part.shard], 0, "no self-halo");
        }
    }

    #[test]
    fn partition_is_deterministic_per_seed() {
        let g = graph(60, 240, 1);
        for strategy in PartitionStrategy::ALL {
            let a = Partitioner::new(4).strategy(strategy).seed(7).partition(&g);
            let b = Partitioner::new(4).strategy(strategy).seed(7).partition(&g);
            assert_eq!(a, b, "{strategy}");
        }
        let a = Partitioner::new(4).seed(7).partition(&g);
        let c = Partitioner::new(4).seed(8).partition(&g);
        assert_ne!(a.assignment, c.assignment, "hash assignment follows seed");
    }

    #[test]
    fn range_is_contiguous_and_balanced() {
        let g = graph(10, 20, 2);
        let p = Partitioner::new(4)
            .strategy(PartitionStrategy::Range)
            .partition(&g);
        // 10 nodes over 4 shards: 3, 3, 2, 2.
        let sizes: Vec<usize> = p.parts.iter().map(|s| s.owned.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        for part in &p.parts {
            for w in part.owned.windows(2) {
                assert_eq!(w[1], w[0] + 1, "range shards are contiguous");
            }
        }
    }

    #[test]
    fn edgecut_beats_hash_on_a_clustered_graph() {
        // A ring has perfect locality: greedy placement should cut far
        // fewer edges than hash placement.
        let g = GraphGenerator::new(64, 128)
            .topology(crate::GraphTopology::Ring)
            .build_graph(2)
            .unwrap();
        let hash = Partitioner::new(4)
            .strategy(PartitionStrategy::Hash)
            .partition(&g);
        let greedy = Partitioner::new(4)
            .strategy(PartitionStrategy::EdgeCut)
            .partition(&g);
        assert!(
            greedy.cut_edges < hash.cut_edges,
            "greedy {} !< hash {}",
            greedy.cut_edges,
            hash.cut_edges
        );
    }

    #[test]
    fn edgecut_respects_the_balance_cap() {
        let g = graph(40, 400, 5);
        let p = Partitioner::new(4)
            .strategy(PartitionStrategy::EdgeCut)
            .partition(&g);
        for part in &p.parts {
            assert!(part.owned.len() <= 10, "cap ceil(40/4) = 10");
        }
    }

    #[test]
    fn subgraph_reindexes_and_covers_shard_edges() {
        let g = graph(30, 120, 11);
        let p = Partitioner::new(3).partition(&g);
        let mut total_edges = 0;
        for shard in 0..3 {
            let (sub, l2g) = p.subgraph(&g, shard).unwrap();
            assert_eq!(sub.num_nodes(), l2g.len());
            assert_eq!(
                sub.num_nodes(),
                p.parts[shard].owned.len() + p.parts[shard].halo.len()
            );
            assert_eq!(sub.num_edges(), p.parts[shard].edges);
            assert_eq!(sub.feature_dim(), g.feature_dim());
            total_edges += sub.num_edges();
            // Every local edge maps back to a global edge the shard owns.
            for (s, d) in sub.edges().iter() {
                let (gs, gd) = (l2g[s as usize], l2g[d as usize]);
                assert_eq!(p.assignment[gd as usize] as usize, shard);
                assert!(g.edges().iter().any(|e| e == (gs, gd)));
            }
            // Feature rows are gathered, not copied wholesale.
            for (l, &gv) in l2g.iter().enumerate() {
                assert_eq!(sub.features().row(l), g.features().row(gv as usize));
            }
        }
        assert_eq!(total_edges, g.num_edges(), "edges partition exactly");
    }

    #[test]
    fn shards_clamp_to_node_count() {
        let g = graph(3, 4, 1);
        let p = Partitioner::new(8).partition(&g);
        assert_eq!(p.shards, 3);
        assert!(p.parts.iter().all(|part| part.owned.len() == 1));
    }

    #[test]
    fn single_shard_has_no_halo_or_cut() {
        let g = graph(20, 80, 4);
        let p = Partitioner::new(1).partition(&g);
        assert_eq!(p.cut_edges, 0);
        assert_eq!(p.halo_nodes(), 0);
        assert_eq!(p.parts[0].owned.len(), 20);
        assert_eq!(p.edge_cut_fraction(), 0.0);
    }

    #[test]
    fn strategy_parse_round_trips() {
        for s in PartitionStrategy::ALL {
            assert_eq!(PartitionStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(
            PartitionStrategy::parse("edge-cut"),
            Some(PartitionStrategy::EdgeCut)
        );
        assert_eq!(PartitionStrategy::parse("metis"), None);
        assert_eq!(PartitionStrategy::default(), PartitionStrategy::Hash);
    }
}
