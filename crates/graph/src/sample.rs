//! Neighbor-sampled mini-batch subgraph extraction.
//!
//! A [`NeighborSampler`] draws a `NeighborLoader`-style ego-net around a
//! set of seed nodes: hop `h` keeps at most `fanouts[h]` in-neighbors of
//! every frontier node (messages flow `src -> dst`, so inference on a
//! seed needs its *in*-neighbors), and the union of kept nodes and edges
//! is re-indexed into a self-contained [`SampledSubgraph`] the pipeline
//! can lower like any other graph.
//!
//! Sampling follows the same determinism contract as [`crate::partition`]:
//! every draw is a pure function of `(sampler seed, hop, frontier node,
//! neighbor)` through seeded FNV-1a ranking — no RNG state, no iteration-
//! order dependence — so the same `(graph, seed, seed nodes, fanouts)`
//! tuple produces the same subgraph on every host, every run and every
//! thread count. The scenario runner's memoized caches, the serving
//! layer's LRU keys and the mini-batch golden snapshots all rest on this.
//!
//! [`batch_schedule`] provides the matching deterministic seed-node
//! batching: a seeded hash-ranked permutation of the node set, chunked
//! into mini-batches.
//!
//! # Example
//!
//! ```
//! use gsuite_graph::{datasets::Dataset, NeighborSampler};
//!
//! # fn main() -> Result<(), gsuite_graph::GraphError> {
//! let g = Dataset::Cora.load_scaled(0.05);
//! let sampler = NeighborSampler::new(vec![10, 5]).seed(42);
//! let sub = sampler.sample(&g, &[0, 1, 2, 3])?;
//! assert_eq!(sub.seeds, 4);
//! // Seeds come first in the local id space.
//! assert_eq!(&sub.local_to_global[..4], &[0, 1, 2, 3]);
//! // Replayable: the same draws produce the same subgraph.
//! let again = sampler.sample(&g, &[0, 1, 2, 3])?;
//! assert_eq!(sub.graph.edges(), again.graph.edges());
//! # Ok(())
//! # }
//! ```

use gsuite_tensor::DenseMatrix;

use crate::{EdgeList, Graph, GraphError, Result};

/// Deterministic per-layer fanout neighbor sampler (see the module docs).
#[derive(Debug, Clone)]
pub struct NeighborSampler {
    fanouts: Vec<usize>,
    seed: u64,
}

impl NeighborSampler {
    /// A sampler keeping at most `fanouts[h]` in-neighbors per frontier
    /// node at hop `h`. An empty fanout list samples the bare seed set.
    pub fn new(fanouts: Vec<usize>) -> Self {
        NeighborSampler {
            fanouts,
            seed: 0x5eed,
        }
    }

    /// Sets the draw seed (default `0x5eed`, matching
    /// [`crate::Partitioner`]). The seed is part of every subgraph's
    /// identity: different seeds draw different neighbor subsets.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The per-hop fanout schedule.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// Samples the ego-net of `seed_nodes` (duplicates are dropped; first
    /// occurrence wins the local id). Local ids order seeds first, then
    /// discovered nodes in hop/draw order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] when a seed node is not a
    /// node of `graph`, and [`GraphError::InvalidGeneratorArgs`] when the
    /// seed set is empty.
    pub fn sample(&self, graph: &Graph, seed_nodes: &[u32]) -> Result<SampledSubgraph> {
        let n = graph.num_nodes();
        if seed_nodes.is_empty() {
            return Err(GraphError::InvalidGeneratorArgs {
                reason: "neighbor sampling needs at least one seed node".to_string(),
            });
        }
        for &v in seed_nodes {
            if v as usize >= n {
                return Err(GraphError::NodeOutOfBounds {
                    node: v as usize,
                    num_nodes: n,
                });
            }
        }

        // In-neighbor lists: rows of A^T are destinations, columns the
        // sources that message them. `adjacency_csr_transposed` sorts and
        // dedups, so neighbor order is canonical regardless of edge-list
        // order.
        let adj_t = graph.adjacency_csr_transposed();
        let row_ptr = adj_t.row_ptr();
        let col_idx = adj_t.col_indices();

        let mut local_to_global: Vec<u32> = Vec::new();
        let mut global_to_local = vec![u32::MAX; n];
        let push_node = |v: u32, l2g: &mut Vec<u32>, g2l: &mut Vec<u32>| -> bool {
            if g2l[v as usize] != u32::MAX {
                return false;
            }
            g2l[v as usize] = l2g.len() as u32;
            l2g.push(v);
            true
        };
        for &v in seed_nodes {
            push_node(v, &mut local_to_global, &mut global_to_local);
        }
        let seeds = local_to_global.len();

        // Hop-by-hop expansion: every kept edge (u -> v) is recorded in
        // global ids; kept source nodes seed the next frontier.
        let mut frontier: Vec<u32> = local_to_global.clone();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut kept: Vec<u32> = Vec::new();
        for (hop, &fanout) in self.fanouts.iter().enumerate() {
            let mut next: Vec<u32> = Vec::new();
            for &v in &frontier {
                let nbrs = &col_idx[row_ptr[v as usize] as usize..row_ptr[v as usize + 1] as usize];
                kept.clear();
                if nbrs.len() <= fanout {
                    kept.extend_from_slice(nbrs);
                } else if fanout > 0 {
                    // Replayable draw without replacement: rank every
                    // neighbor by its per-(seed, hop, node) hash and keep
                    // the `fanout` smallest, then restore ascending
                    // neighbor order so the kept set is canonical.
                    let mut ranked: Vec<(u64, u32)> = nbrs
                        .iter()
                        .map(|&u| (draw_hash(self.seed, hop as u64, v, u), u))
                        .collect();
                    ranked.sort_unstable();
                    ranked.truncate(fanout);
                    kept.extend(ranked.into_iter().map(|(_, u)| u));
                    kept.sort_unstable();
                }
                for &u in &kept {
                    edges.push((u, v));
                    if push_node(u, &mut local_to_global, &mut global_to_local) {
                        next.push(u);
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }

        let src: Vec<u32> = edges
            .iter()
            .map(|&(u, _)| global_to_local[u as usize])
            .collect();
        let dst: Vec<u32> = edges
            .iter()
            .map(|&(_, v)| global_to_local[v as usize])
            .collect();
        let local_edges = EdgeList::new(local_to_global.len(), src, dst)?;

        let feat = graph.feature_dim();
        let mut data = Vec::with_capacity(local_to_global.len() * feat);
        for &g in &local_to_global {
            data.extend_from_slice(graph.features().row(g as usize));
        }
        let features = DenseMatrix::from_vec(local_to_global.len(), feat, data)
            .expect("gathered rows are rectangular");
        let name = format!(
            "{}/ego{}x{}",
            graph.name(),
            seeds,
            fanout_label(&self.fanouts)
        );
        let sub = Graph::with_name(local_edges, features, name)?;
        Ok(SampledSubgraph {
            graph: sub,
            local_to_global,
            seeds,
            fanouts: self.fanouts.clone(),
            seed: self.seed,
        })
    }
}

/// One sampled, re-indexed mini-batch subgraph.
#[derive(Debug, Clone)]
pub struct SampledSubgraph {
    /// The self-contained subgraph: sampled edges re-indexed to local
    /// ids, feature rows gathered from the parent graph.
    pub graph: Graph,
    /// Local-to-global node map; the first [`SampledSubgraph::seeds`]
    /// entries are the seed nodes in request order.
    pub local_to_global: Vec<u32>,
    /// Number of seed nodes (they occupy local ids `0..seeds`).
    pub seeds: usize,
    /// The fanout schedule that produced this subgraph.
    pub fanouts: Vec<usize>,
    /// The draw seed that produced this subgraph.
    pub seed: u64,
}

/// Renders a fanout schedule as the wire token (`[10, 5]` → `"10x5"`);
/// the inverse of [`parse_fanout`]. An empty schedule renders as `"0"`.
pub fn fanout_label(fanouts: &[usize]) -> String {
    if fanouts.is_empty() {
        return "0".to_string();
    }
    fanouts
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("x")
}

/// Parses a fanout token: `x`-separated per-hop counts (`"10x5"` →
/// `[10, 5]`). Rejects empty tokens and non-numeric hops.
pub fn parse_fanout(s: &str) -> Option<Vec<usize>> {
    let hops: Option<Vec<usize>> = s.split('x').map(|h| h.trim().parse().ok()).collect();
    hops.filter(|h| !h.is_empty())
}

/// The deterministic mini-batch schedule over a node set: node ids are
/// permuted by seeded hash ranking (the shuffle every epoch-style loader
/// applies, made replayable) and chunked into batches of `batch_size`.
/// The final batch may be smaller. `batch_size == 0` yields no batches.
pub fn batch_schedule(num_nodes: usize, batch_size: usize, seed: u64) -> Vec<Vec<u32>> {
    if batch_size == 0 || num_nodes == 0 {
        return Vec::new();
    }
    let mut order: Vec<u32> = (0..num_nodes as u32).collect();
    order.sort_unstable_by_key(|&v| (draw_hash(seed, 0xBA7C, v, 0), v));
    order
        .chunks(batch_size)
        .map(|chunk| chunk.to_vec())
        .collect()
}

/// Seeded FNV-1a over `(seed, hop, node, neighbor)` — the sampler's draw
/// function, stable across platforms (the same construction as
/// `partition::node_hash`).
fn draw_hash(seed: u64, hop: u64, v: u32, u: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in seed
        .to_le_bytes()
        .into_iter()
        .chain(hop.to_le_bytes())
        .chain((v as u64).to_le_bytes())
        .chain((u as u64).to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::Dataset;
    use crate::GraphGenerator;

    fn graph(nodes: usize, edges: usize, seed: u64) -> Graph {
        GraphGenerator::new(nodes, edges)
            .seed(seed)
            .build_graph(4)
            .unwrap()
    }

    #[test]
    fn sample_is_deterministic_per_seed() {
        let g = graph(80, 400, 3);
        let seeds = [5u32, 17, 33];
        let a = NeighborSampler::new(vec![4, 2]).seed(7).sample(&g, &seeds);
        let b = NeighborSampler::new(vec![4, 2]).seed(7).sample(&g, &seeds);
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.local_to_global, b.local_to_global);
        assert_eq!(a.graph.features(), b.graph.features());
        let c = NeighborSampler::new(vec![4, 2])
            .seed(8)
            .sample(&g, &seeds)
            .unwrap();
        assert_ne!(
            a.graph.edges(),
            c.graph.edges(),
            "different seeds draw different neighbors"
        );
    }

    #[test]
    fn fanout_caps_per_node_in_edges() {
        let g = graph(60, 600, 11);
        let sub = NeighborSampler::new(vec![3])
            .sample(&g, &[0, 1, 2])
            .unwrap();
        let mut in_deg = vec![0usize; sub.graph.num_nodes()];
        for (_, d) in sub.graph.edges().iter() {
            in_deg[d as usize] += 1;
        }
        for (local, &deg) in in_deg.iter().take(sub.seeds).enumerate() {
            assert!(deg <= 3, "seed {local} kept {deg}");
        }
    }

    #[test]
    fn sampled_edges_exist_in_the_parent_graph() {
        let g = graph(50, 250, 5);
        let sub = NeighborSampler::new(vec![4, 3])
            .sample(&g, &[9, 21])
            .unwrap();
        let adj_t = g.adjacency_csr_transposed();
        for (s, d) in sub.graph.edges().iter() {
            let (gs, gd) = (
                sub.local_to_global[s as usize],
                sub.local_to_global[d as usize],
            );
            assert_eq!(adj_t.get(gd as usize, gs as usize), 1.0, "{gs}->{gd}");
        }
        // Feature rows are gathered, not copied wholesale.
        for (l, &gv) in sub.local_to_global.iter().enumerate() {
            assert_eq!(sub.graph.features().row(l), g.features().row(gv as usize));
        }
    }

    #[test]
    fn seeds_keep_request_order_and_dedup() {
        let g = graph(30, 120, 2);
        let sub = NeighborSampler::new(vec![2])
            .sample(&g, &[7, 3, 7, 12])
            .unwrap();
        assert_eq!(sub.seeds, 3);
        assert_eq!(&sub.local_to_global[..3], &[7, 3, 12]);
    }

    #[test]
    fn small_neighborhoods_are_kept_whole() {
        // fanout larger than any in-degree: every in-edge of the seed
        // survives.
        let g = graph(40, 80, 9);
        let sub = NeighborSampler::new(vec![1000]).sample(&g, &[4]).unwrap();
        let adj_t = g.adjacency_csr_transposed();
        let expected = adj_t.row_ptr()[5] - adj_t.row_ptr()[4];
        assert_eq!(sub.graph.num_edges(), expected as usize);
    }

    #[test]
    fn empty_fanouts_sample_the_bare_seed_set() {
        let g = graph(20, 60, 1);
        let sub = NeighborSampler::new(vec![]).sample(&g, &[0, 5]).unwrap();
        assert_eq!(sub.graph.num_nodes(), 2);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn invalid_seeds_are_rejected() {
        let g = graph(10, 20, 1);
        assert!(NeighborSampler::new(vec![2]).sample(&g, &[]).is_err());
        assert!(NeighborSampler::new(vec![2]).sample(&g, &[10]).is_err());
    }

    #[test]
    fn batch_schedule_partitions_the_node_set() {
        let batches = batch_schedule(103, 32, 42);
        assert_eq!(batches.len(), 4);
        assert_eq!(batches.last().unwrap().len(), 103 - 3 * 32);
        let mut seen = [false; 103];
        for b in &batches {
            for &v in b {
                assert!(!seen[v as usize], "node {v} batched twice");
                seen[v as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Deterministic per seed; shuffled, not the identity order.
        assert_eq!(batches, batch_schedule(103, 32, 42));
        assert_ne!(batches, batch_schedule(103, 32, 43));
        assert_ne!(batches[0], (0u32..32).collect::<Vec<_>>());
        assert!(batch_schedule(10, 0, 1).is_empty());
    }

    #[test]
    fn fanout_tokens_round_trip() {
        assert_eq!(parse_fanout("10x5"), Some(vec![10, 5]));
        assert_eq!(parse_fanout("7"), Some(vec![7]));
        assert_eq!(parse_fanout(""), None);
        assert_eq!(parse_fanout("10x"), None);
        assert_eq!(parse_fanout("axb"), None);
        assert_eq!(fanout_label(&[10, 5]), "10x5");
        assert_eq!(parse_fanout(&fanout_label(&[3, 2, 1])), Some(vec![3, 2, 1]));
    }

    #[test]
    fn dataset_sampling_is_replayable() {
        let g = Dataset::Cora.load_scaled(0.05);
        let seeds: Vec<u32> = batch_schedule(g.num_nodes(), 16, 42)[0].clone();
        let a = NeighborSampler::new(vec![10, 5])
            .seed(42)
            .sample(&g, &seeds)
            .unwrap();
        let b = NeighborSampler::new(vec![10, 5])
            .seed(42)
            .sample(&g, &seeds)
            .unwrap();
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.fanouts, vec![10, 5]);
        assert!(a.graph.num_nodes() >= seeds.len());
    }
}
