//! The paper's evaluation datasets (Table IV), as seeded synthetic
//! generators.
//!
//! | Dataset | Nodes | Feature length | Edges | Short form |
//! |---|---|---|---|---|
//! | Cora | 2,708 | 1,433 | 5,429 | CR |
//! | CiteSeer | 3,327 | 3,703 | 4,732 | CS |
//! | PubMed | 19,717 | 500 | 44,438 | PB |
//! | Reddit | 232,965 | 602 | 11,606,919 | RD |
//! | LiveJournal | 4,847,571 | 1 | 68,993,773 | LJ |
//!
//! Loading a dataset at scale 1.0 reproduces these statistics exactly; the
//! substitution (real downloads → synthetic topology with matching shape and
//! a heavy-tailed degree distribution) is argued in `ARCHITECTURE.md`
//! ("Design notes" §3). Scaled loads shrink nodes and edges by the same
//! factor while keeping the feature length, preserving per-edge/per-node
//! workload intensity.

use serde::{Deserialize, Serialize};

use crate::generate::{GraphGenerator, GraphTopology};
use crate::Graph;

/// Static description of one evaluation dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Full dataset name (e.g. `"Cora"`).
    pub name: &'static str,
    /// Two-letter short form used in the paper's figures (e.g. `"CR"`).
    pub short: &'static str,
    /// Number of nodes at scale 1.0.
    pub nodes: usize,
    /// Number of directed edges at scale 1.0.
    pub edges: usize,
    /// Node feature length.
    pub feature_len: usize,
    /// Zipf exponent of the synthetic degree distribution.
    pub degree_exponent: f64,
    /// Generator seed, fixed per dataset for reproducibility.
    pub seed: u64,
}

/// The five datasets of the paper's Table IV, plus the heterogeneous
/// ogbn-mag shape the RGCN scenario runs on (outside Table IV, so
/// excluded from [`Dataset::ALL`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Cora citation network (CR).
    Cora,
    /// CiteSeer citation network (CS).
    CiteSeer,
    /// PubMed citation network (PB).
    PubMed,
    /// Reddit post-to-post graph (RD).
    Reddit,
    /// LiveJournal social network (LJ).
    LiveJournal,
    /// ogbn-mag-like heterogeneous academic graph (MG): four typed node
    /// sets and four relations, flattened to its union graph by the
    /// loader (see [`crate::HeteroGraph`]).
    OgbnMag,
}

impl Dataset {
    /// The five datasets of the paper's Table IV, in the paper's size
    /// order. [`Dataset::OgbnMag`] is a beyond-paper extension and is
    /// deliberately not part of this census.
    pub const ALL: [Dataset; 5] = [
        Dataset::Cora,
        Dataset::CiteSeer,
        Dataset::PubMed,
        Dataset::Reddit,
        Dataset::LiveJournal,
    ];

    /// Every loadable dataset: Table IV plus the heterogeneous shapes.
    pub const EXTENDED: [Dataset; 6] = [
        Dataset::Cora,
        Dataset::CiteSeer,
        Dataset::PubMed,
        Dataset::Reddit,
        Dataset::LiveJournal,
        Dataset::OgbnMag,
    ];

    /// The Table IV row for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Cora => DatasetSpec {
                name: "Cora",
                short: "CR",
                nodes: 2_708,
                edges: 5_429,
                feature_len: 1_433,
                degree_exponent: 0.85,
                seed: 0xC0 | 0xA0_00,
            },
            Dataset::CiteSeer => DatasetSpec {
                name: "CiteSeer",
                short: "CS",
                nodes: 3_327,
                edges: 4_732,
                feature_len: 3_703,
                degree_exponent: 0.85,
                seed: 0xC1 | 0x5E_00,
            },
            Dataset::PubMed => DatasetSpec {
                name: "PubMed",
                short: "PB",
                nodes: 19_717,
                edges: 44_438,
                feature_len: 500,
                degree_exponent: 0.9,
                seed: 0x9B_00,
            },
            Dataset::Reddit => DatasetSpec {
                name: "Reddit",
                short: "RD",
                nodes: 232_965,
                edges: 11_606_919,
                feature_len: 602,
                degree_exponent: 1.0,
                seed: 0x4D_00,
            },
            Dataset::LiveJournal => DatasetSpec {
                name: "LiveJournal",
                short: "LJ",
                nodes: 4_847_571,
                edges: 68_993_773,
                feature_len: 1,
                degree_exponent: 1.05,
                seed: 0x17_00,
            },
            // Published ogbn-mag statistics: 1,939,743 typed nodes over
            // four sets, 21,111,007 edges over four relations, 128-wide
            // paper embeddings. The degree exponent is unused — this
            // shape loads through the hetero generator, not the Zipf one.
            Dataset::OgbnMag => DatasetSpec {
                name: "ogbn-mag",
                short: "MG",
                nodes: 1_939_743,
                edges: 21_111_007,
                feature_len: 128,
                degree_exponent: 1.0,
                seed: 0x4D_A6_00,
            },
        }
    }

    /// Parses a dataset from its name or short form (case-insensitive;
    /// `ogbn-mag` also accepts `ogbnmag` and `mag`).
    pub fn parse(s: &str) -> Option<Dataset> {
        let lower = s.to_ascii_lowercase();
        if matches!(lower.as_str(), "ogbnmag" | "mag") {
            return Some(Dataset::OgbnMag);
        }
        Dataset::EXTENDED.into_iter().find(|d| {
            let spec = d.spec();
            lower == spec.name.to_ascii_lowercase() || lower == spec.short.to_ascii_lowercase()
        })
    }

    /// Short form (`"CR"`, `"CS"`, ...).
    pub fn short(self) -> &'static str {
        self.spec().short
    }

    /// Full name (`"Cora"`, ...).
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Loads the dataset at full Table IV size.
    ///
    /// Reddit and LiveJournal allocate hundreds of megabytes at scale 1.0;
    /// prefer [`Dataset::load_scaled`] for simulation-heavy workflows.
    pub fn load(self) -> Graph {
        self.load_scaled(1.0)
    }

    /// Loads a scaled instance: node and edge counts multiplied by
    /// `scale` (clamped to at least 2 nodes / 1 edge), feature length
    /// unchanged, same degree shape.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite or not in `(0, 1]`.
    pub fn load_scaled(self, scale: f64) -> Graph {
        assert!(
            scale.is_finite() && scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        // The heterogeneous shape loads through the typed generator and
        // flattens to its union graph, so relation structure and the
        // homogeneous view always agree (the RGCN lowering rebuilds the
        // same HeteroGraph from (dataset, scale)).
        if self == Dataset::OgbnMag {
            return crate::HeteroGraph::mag_like(scale).to_graph();
        }
        let spec = self.spec();
        let nodes = ((spec.nodes as f64 * scale).round() as usize).max(2);
        let edges = ((spec.edges as f64 * scale).round() as usize).max(1);
        let generator = GraphGenerator::new(nodes, edges)
            .topology(GraphTopology::PowerLaw {
                exponent: spec.degree_exponent,
            })
            .seed(spec.seed);
        let mut graph = generator
            .build_graph(spec.feature_len)
            .expect("dataset specs are valid generator inputs");
        let name = if scale == 1.0 {
            spec.name.to_string()
        } else {
            format!("{}@{:.3}", spec.name, scale)
        };
        graph = Graph::with_name(graph.edges().clone(), graph.features().clone(), name)
            .expect("rebuild preserves validity");
        graph
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_statistics_exact() {
        let expected = [
            (Dataset::Cora, 2_708, 5_429, 1_433),
            (Dataset::CiteSeer, 3_327, 4_732, 3_703),
            (Dataset::PubMed, 19_717, 44_438, 500),
            (Dataset::Reddit, 232_965, 11_606_919, 602),
            (Dataset::LiveJournal, 4_847_571, 68_993_773, 1),
        ];
        for (d, nodes, edges, flen) in expected {
            let spec = d.spec();
            assert_eq!(spec.nodes, nodes, "{d}");
            assert_eq!(spec.edges, edges, "{d}");
            assert_eq!(spec.feature_len, flen, "{d}");
        }
    }

    #[test]
    fn small_datasets_load_full_size() {
        let g = Dataset::Cora.load();
        assert_eq!(g.num_nodes(), 2_708);
        assert_eq!(g.num_edges(), 5_429);
        assert_eq!(g.feature_dim(), 1_433);
        assert_eq!(g.name(), "Cora");
    }

    #[test]
    fn scaled_load_shrinks_topology_not_features() {
        let g = Dataset::PubMed.load_scaled(0.1);
        assert_eq!(g.num_nodes(), 1_972);
        assert_eq!(g.num_edges(), 4_444);
        assert_eq!(g.feature_dim(), 500);
        assert!(g.name().starts_with("PubMed@"));
    }

    #[test]
    fn loads_are_deterministic() {
        let a = Dataset::Cora.load_scaled(0.05);
        let b = Dataset::Cora.load_scaled(0.05);
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.features(), b.features());
    }

    #[test]
    fn parse_accepts_both_forms() {
        assert_eq!(Dataset::parse("cora"), Some(Dataset::Cora));
        assert_eq!(Dataset::parse("CR"), Some(Dataset::Cora));
        assert_eq!(Dataset::parse("livejournal"), Some(Dataset::LiveJournal));
        assert_eq!(Dataset::parse("lj"), Some(Dataset::LiveJournal));
        assert_eq!(Dataset::parse("imagenet"), None);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn zero_scale_panics() {
        let _ = Dataset::Cora.load_scaled(0.0);
    }

    #[test]
    fn ogbn_mag_loads_through_the_hetero_generator() {
        let g = Dataset::OgbnMag.load_scaled(0.001);
        let h = crate::HeteroGraph::mag_like(0.001);
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        assert_eq!(g.feature_dim(), 128);
        assert!(g.name().starts_with("ogbn-mag@"));
        // Outside the Table IV census, inside the extended registry.
        assert!(!Dataset::ALL.contains(&Dataset::OgbnMag));
        assert!(Dataset::EXTENDED.contains(&Dataset::OgbnMag));
        assert_eq!(Dataset::parse("ogbn-mag"), Some(Dataset::OgbnMag));
        assert_eq!(Dataset::parse("mag"), Some(Dataset::OgbnMag));
        assert_eq!(Dataset::parse("MG"), Some(Dataset::OgbnMag));
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = Dataset::Cora.load_scaled(0.5);
        let stats = g.stats();
        assert!(
            stats.max_degree as f64 > 8.0 * stats.avg_degree,
            "expected skew: max {} vs avg {}",
            stats.max_degree,
            stats.avg_degree
        );
    }
}
