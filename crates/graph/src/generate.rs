//! Seeded synthetic graph generators.
//!
//! These produce the topology shapes of the paper's evaluation datasets:
//! heavy-tailed ("power-law") degree structure for citation and social
//! graphs, uniform Erdős–Rényi for stress tests, and a regular ring for
//! best-case locality baselines. All generation is deterministic in the
//! seed, which is how the repository keeps every experiment reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gsuite_tensor::DenseMatrix;

use crate::{EdgeList, Graph, GraphError, Result};

/// Degree-structure family for [`GraphGenerator`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum GraphTopology {
    /// Zipf-weighted endpoint sampling: node `i` is chosen with probability
    /// proportional to `(i + 1)^-exponent`, yielding a heavy-tailed degree
    /// distribution like real citation/social graphs. Typical exponents:
    /// 0.6–1.1.
    PowerLaw {
        /// Zipf exponent (`0.0` degenerates to uniform).
        exponent: f64,
    },
    /// Uniform random endpoints (Erdős–Rényi with a fixed edge count).
    ErdosRenyi,
    /// Ring lattice: node `i` connects to its `k` clockwise successors,
    /// where `k = ceil(edges / nodes)`. Maximally regular and cache friendly.
    Ring,
}

/// Deterministic graph generator.
///
/// # Example
///
/// ```
/// use gsuite_graph::{GraphGenerator, GraphTopology};
///
/// # fn main() -> Result<(), gsuite_graph::GraphError> {
/// let g = GraphGenerator::new(100, 400)
///     .topology(GraphTopology::PowerLaw { exponent: 0.9 })
///     .seed(7)
///     .build_graph(16)?;
/// assert_eq!(g.num_nodes(), 100);
/// assert_eq!(g.num_edges(), 400);
/// assert_eq!(g.feature_dim(), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphGenerator {
    nodes: usize,
    edges: usize,
    topology: GraphTopology,
    seed: u64,
    allow_self_loops: bool,
}

impl GraphGenerator {
    /// A generator for a graph with exactly `nodes` nodes and `edges`
    /// directed edges.
    pub fn new(nodes: usize, edges: usize) -> Self {
        GraphGenerator {
            nodes,
            edges,
            topology: GraphTopology::PowerLaw { exponent: 0.9 },
            seed: 0x5eed,
            allow_self_loops: false,
        }
    }

    /// Selects the degree-structure family (default: power-law, 0.9).
    pub fn topology(mut self, topology: GraphTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the RNG seed (default: `0x5eed`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Permits self-loop edges (default: rejected and resampled).
    pub fn allow_self_loops(mut self, allow: bool) -> Self {
        self.allow_self_loops = allow;
        self
    }

    /// Generates the edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidGeneratorArgs`] when `nodes == 0` but
    /// `edges > 0`.
    pub fn build_edges(&self) -> Result<EdgeList> {
        if self.nodes == 0 && self.edges > 0 {
            return Err(GraphError::InvalidGeneratorArgs {
                reason: "cannot place edges in an empty graph".to_string(),
            });
        }
        if self.nodes <= 1 && !self.allow_self_loops && self.edges > 0 {
            return Err(GraphError::InvalidGeneratorArgs {
                reason: "single-node graph cannot avoid self-loops".to_string(),
            });
        }
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let (src, dst) = match self.topology {
            GraphTopology::PowerLaw { exponent } => self.sample_zipf(&mut rng, exponent),
            GraphTopology::ErdosRenyi => self.sample_uniform(&mut rng),
            GraphTopology::Ring => self.ring_edges(),
        };
        EdgeList::new(self.nodes, src, dst)
    }

    /// Generates a full [`Graph`] with seeded uniform features in
    /// `[-0.5, 0.5)` of width `feature_dim`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphGenerator::build_edges`].
    pub fn build_graph(&self, feature_dim: usize) -> Result<Graph> {
        let edges = self.build_edges()?;
        let features = random_features(self.nodes, feature_dim, self.seed ^ 0xfea7);
        Graph::new(edges, features)
    }

    fn sample_zipf(&self, rng: &mut SmallRng, exponent: f64) -> (Vec<u32>, Vec<u32>) {
        // Cumulative Zipf weights once, then binary-search per endpoint.
        let mut cdf = Vec::with_capacity(self.nodes);
        let mut acc = 0.0f64;
        for i in 0..self.nodes {
            acc += 1.0 / ((i + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        let pick = |rng: &mut SmallRng| -> u32 {
            let x = rng.gen::<f64>() * total;
            // partition_point: first index with cdf[i] >= x
            cdf.partition_point(|&w| w < x) as u32
        };
        let mut src = Vec::with_capacity(self.edges);
        let mut dst = Vec::with_capacity(self.edges);
        for _ in 0..self.edges {
            let s = pick(rng);
            let mut d = pick(rng);
            if !self.allow_self_loops {
                while d == s {
                    d = pick(rng);
                }
            }
            src.push(s);
            dst.push(d);
        }
        (src, dst)
    }

    fn sample_uniform(&self, rng: &mut SmallRng) -> (Vec<u32>, Vec<u32>) {
        let n = self.nodes as u32;
        let mut src = Vec::with_capacity(self.edges);
        let mut dst = Vec::with_capacity(self.edges);
        for _ in 0..self.edges {
            let s = rng.gen_range(0..n);
            let mut d = rng.gen_range(0..n);
            if !self.allow_self_loops {
                while d == s {
                    d = rng.gen_range(0..n);
                }
            }
            src.push(s);
            dst.push(d);
        }
        (src, dst)
    }

    fn ring_edges(&self) -> (Vec<u32>, Vec<u32>) {
        let n = self.nodes;
        let mut src = Vec::with_capacity(self.edges);
        let mut dst = Vec::with_capacity(self.edges);
        if n == 0 {
            return (src, dst);
        }
        let mut hop = 1usize;
        'outer: loop {
            for i in 0..n {
                if src.len() == self.edges {
                    break 'outer;
                }
                let j = (i + hop) % n;
                if j == i && !self.allow_self_loops {
                    continue;
                }
                src.push(i as u32);
                dst.push(j as u32);
            }
            hop += 1;
        }
        (src, dst)
    }
}

/// Seeded uniform feature matrix in `[-0.5, 0.5)` — the node-embedding
/// initializer used across the repository (inference-time characterization
/// is insensitive to actual values; shapes and layout are what matter).
pub(crate) fn random_features(nodes: usize, dim: usize, seed: u64) -> DenseMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut data = vec![0.0f32; nodes * dim];
    for v in &mut data {
        *v = rng.gen::<f32>() - 0.5;
    }
    DenseMatrix::from_vec(nodes, dim, data).expect("sized by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts() {
        for topology in [
            GraphTopology::PowerLaw { exponent: 0.8 },
            GraphTopology::ErdosRenyi,
            GraphTopology::Ring,
        ] {
            let e = GraphGenerator::new(50, 173)
                .topology(topology)
                .build_edges()
                .unwrap();
            assert_eq!(e.num_nodes(), 50, "{topology:?}");
            assert_eq!(e.num_edges(), 173, "{topology:?}");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = GraphGenerator::new(40, 160).seed(42).build_edges().unwrap();
        let b = GraphGenerator::new(40, 160).seed(42).build_edges().unwrap();
        let c = GraphGenerator::new(40, 160).seed(43).build_edges().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn no_self_loops_by_default() {
        let e = GraphGenerator::new(10, 200).seed(1).build_edges().unwrap();
        assert!(e.iter().all(|(s, d)| s != d));
    }

    #[test]
    fn power_law_is_skewed() {
        // With a strong exponent the hottest node should see far more than
        // the mean number of incident edges.
        let e = GraphGenerator::new(1000, 10_000)
            .topology(GraphTopology::PowerLaw { exponent: 1.0 })
            .seed(3)
            .build_edges()
            .unwrap();
        let max_in = *e.in_degrees().iter().max().unwrap();
        let mean_in = 10_000.0 / 1000.0;
        assert!(
            max_in as f64 > 10.0 * mean_in,
            "max in-degree {max_in} not heavy-tailed vs mean {mean_in}"
        );
    }

    #[test]
    fn erdos_renyi_is_flat() {
        let e = GraphGenerator::new(1000, 10_000)
            .topology(GraphTopology::ErdosRenyi)
            .seed(3)
            .build_edges()
            .unwrap();
        let max_in = *e.in_degrees().iter().max().unwrap();
        assert!(
            (max_in as f64) < 5.0 * 10.0,
            "uniform sampling should not be heavy-tailed, got max {max_in}"
        );
    }

    #[test]
    fn ring_is_regular() {
        let e = GraphGenerator::new(10, 20)
            .topology(GraphTopology::Ring)
            .build_edges()
            .unwrap();
        assert!(e.out_degrees().iter().all(|&d| d == 2));
    }

    #[test]
    fn empty_graph_rejected() {
        assert!(GraphGenerator::new(0, 5).build_edges().is_err());
        assert!(GraphGenerator::new(1, 5).build_edges().is_err());
        assert!(GraphGenerator::new(0, 0).build_edges().is_ok());
    }

    #[test]
    fn features_are_seeded_and_bounded() {
        let a = random_features(10, 4, 9);
        let b = random_features(10, 4, 9);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn build_graph_wires_features() {
        let g = GraphGenerator::new(20, 40).build_graph(8).unwrap();
        assert_eq!(g.features().shape(), (20, 8));
    }
}
