use std::error::Error;
use std::fmt;

use gsuite_tensor::TensorError;

/// Error type for graph construction and conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a node id `>= num_nodes`.
    NodeOutOfBounds {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// The feature matrix row count disagrees with the node count.
    FeatureRowsMismatch {
        /// Rows in the provided feature matrix.
        feature_rows: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// A generator was asked for an impossible topology
    /// (e.g. more edges than a simple graph can hold).
    InvalidGeneratorArgs {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An underlying tensor operation failed.
    Tensor(TensorError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of bounds for graph with {num_nodes} nodes"
                )
            }
            GraphError::FeatureRowsMismatch {
                feature_rows,
                num_nodes,
            } => write!(
                f,
                "feature matrix has {feature_rows} rows but the graph has {num_nodes} nodes"
            ),
            GraphError::InvalidGeneratorArgs { reason } => {
                write!(f, "invalid generator arguments: {reason}")
            }
            GraphError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_ids() {
        let e = GraphError::NodeOutOfBounds {
            node: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn tensor_errors_convert() {
        let te = TensorError::Empty { op: "x" };
        let ge: GraphError = te.clone().into();
        assert_eq!(ge, GraphError::Tensor(te));
    }
}
