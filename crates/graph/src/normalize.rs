//! GCN-style adjacency normalization (paper §II-C1, Eq. 2).
//!
//! The SpMM formulation of GCN multiplies `D^-1/2 · Â · D^-1/2 · X · Θ`,
//! where `Â = A + I` and `D` is `Â`'s diagonal degree matrix. These helpers
//! build each factor so pipelines can either pre-fold the normalization
//! (common in frameworks) or execute it as explicit SpGEMM kernels, which is
//! what gSuite's SpMM-GCN pipeline does (Fig. 2, right).

use gsuite_tensor::CsrMatrix;

/// Inserts self-loops: returns `Â = A + I` (existing diagonal entries are
/// overwritten with 1, matching framework behaviour for unweighted graphs).
pub fn add_self_loops(a: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.rows(), a.cols(), "adjacency must be square");
    let n = a.rows();
    let mut triplets: Vec<(usize, usize, f32)> = a.iter().filter(|&(r, c, _)| r != c).collect();
    for i in 0..n {
        triplets.push((i, i, 1.0));
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("self-loop insertion preserves CSR invariants")
}

/// Symmetrizes the adjacency: `A ∪ A^T` with unit weights.
///
/// Citation graphs in GNN evaluation are conventionally treated as
/// undirected; frameworks symmetrize on load.
pub fn symmetrize(a: &CsrMatrix) -> CsrMatrix {
    assert_eq!(a.rows(), a.cols(), "adjacency must be square");
    let n = a.rows();
    let mut pairs: Vec<(usize, usize)> = a.iter().map(|(r, c, _)| (r, c)).collect();
    pairs.extend(a.iter().map(|(r, c, _)| (c, r)));
    pairs.sort_unstable();
    pairs.dedup();
    let triplets: Vec<(usize, usize, f32)> = pairs.into_iter().map(|(r, c)| (r, c, 1.0)).collect();
    CsrMatrix::from_triplets(n, n, &triplets).expect("symmetrization preserves CSR invariants")
}

/// `D^-1/2` of `a` as a diagonal CSR matrix, where `D_ii` is the row sum of
/// `a`. Zero-degree rows map to 0 (isolated nodes contribute nothing).
pub fn inv_sqrt_degree(a: &CsrMatrix) -> CsrMatrix {
    let diag: Vec<f32> = a
        .row_sums()
        .into_iter()
        .map(|d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();
    CsrMatrix::from_diagonal(&diag)
}

/// The fully folded GCN propagation matrix `D^-1/2 · Â · D^-1/2`.
///
/// This is the single sparse operand frameworks typically cache; gSuite's
/// explicit-kernel pipeline instead materializes it with two `SpGEMM`
/// launches (see `gsuite-core::models::gcn`).
pub fn gcn_norm_csr(a: &CsrMatrix) -> CsrMatrix {
    let a_hat = add_self_loops(a);
    let d = inv_sqrt_degree(&a_hat);
    let left = gsuite_tensor::ops::spgemm(&d, &a_hat).expect("shape-compatible by construction");
    gsuite_tensor::ops::spgemm(&left, &d).expect("shape-compatible by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_tensor::ops;

    fn path_graph() -> CsrMatrix {
        // 0 -> 1 -> 2
        CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap()
    }

    #[test]
    fn self_loops_add_diagonal() {
        let a = path_graph();
        let a_hat = add_self_loops(&a);
        assert_eq!(a_hat.nnz(), 5);
        for i in 0..3 {
            assert_eq!(a_hat.get(i, i), 1.0);
        }
        assert_eq!(a_hat.get(0, 1), 1.0);
    }

    #[test]
    fn self_loops_idempotent_on_diagonal() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 5.0), (0, 1, 1.0)]).unwrap();
        let a_hat = add_self_loops(&a);
        assert_eq!(a_hat.get(0, 0), 1.0, "existing diagonal reset to 1");
        assert_eq!(a_hat.nnz(), 3);
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let a = path_graph();
        let s = symmetrize(&a);
        assert_eq!(s.get(1, 0), 1.0);
        assert_eq!(s.get(2, 1), 1.0);
        assert_eq!(s.nnz(), 4);
        assert_eq!(s.to_dense(), s.transpose().to_dense());
    }

    #[test]
    fn inv_sqrt_degree_handles_isolated() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (0, 2, 1.0)]).unwrap();
        let d = inv_sqrt_degree(&a);
        assert!((d.get(0, 0) - 1.0 / 2.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(d.get(1, 1), 0.0);
        assert_eq!(d.get(2, 2), 0.0);
    }

    #[test]
    fn gcn_norm_rows_sum_correctly() {
        // For a symmetric Â, D^-1/2 Â D^-1/2 entries are 1/sqrt(d_i d_j).
        let a = symmetrize(&path_graph());
        let norm = gcn_norm_csr(&a);
        let a_hat = add_self_loops(&a);
        let deg: Vec<f32> = a_hat.row_sums();
        for (r, c, v) in norm.iter() {
            let expected = 1.0 / (deg[r] * deg[c]).sqrt();
            assert!(
                (v - expected).abs() < 1e-5,
                "entry ({r},{c}) = {v}, expected {expected}"
            );
        }
    }

    #[test]
    fn gcn_norm_matches_manual_chain() {
        let a = path_graph();
        let a_hat = add_self_loops(&a);
        let d = inv_sqrt_degree(&a_hat);
        let manual = ops::spgemm(&ops::spgemm(&d, &a_hat).unwrap(), &d).unwrap();
        assert_eq!(gcn_norm_csr(&a), manual);
    }
}
