use serde::{Deserialize, Serialize};

use gsuite_tensor::{CooMatrix, CsrMatrix, DenseMatrix};

use crate::{EdgeList, GraphError, Result};

/// The graph data formats discussed in the paper (§II-D).
///
/// MP pipelines consume [`GraphFormat::Coo`] (the `edgeIndex`), SpMM
/// pipelines consume [`GraphFormat::Csr`]; [`GraphFormat::Dense`] exists for
/// completeness and tiny graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GraphFormat {
    /// Coordinate / edge-index format.
    Coo,
    /// Compressed sparse row.
    Csr,
    /// Compressed sparse column (CSR of the transpose).
    Csc,
    /// Dense `|V| x |V|` adjacency matrix.
    Dense,
}

impl std::fmt::Display for GraphFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GraphFormat::Coo => "COO",
            GraphFormat::Csr => "CSR",
            GraphFormat::Csc => "CSC",
            GraphFormat::Dense => "dense",
        };
        f.write_str(s)
    }
}

/// Summary statistics of a graph — the columns of the paper's Table IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of nodes `|V|`.
    pub nodes: usize,
    /// Number of directed edges `|E|`.
    pub edges: usize,
    /// Feature (embedding) length `f`.
    pub feature_len: usize,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: u32,
}

/// A property graph: directed topology plus a dense node-feature matrix.
///
/// Topology is stored as the canonical [`EdgeList`] (COO) with lazily-built
/// CSR caches for both edge directions, mirroring how the paper's data
/// loader "loads edge index vector and feature representation vector".
///
/// # Example
///
/// ```
/// use gsuite_graph::{Graph, EdgeList};
/// use gsuite_tensor::DenseMatrix;
///
/// # fn main() -> Result<(), gsuite_graph::GraphError> {
/// let edges = EdgeList::from_pairs(3, &[(0, 1), (1, 2), (2, 0)])?;
/// let feats = DenseMatrix::zeros(3, 8);
/// let g = Graph::new(edges, feats)?;
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.adjacency_csr().nnz(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    edges: EdgeList,
    features: DenseMatrix,
    name: String,
}

impl Graph {
    /// Builds a graph from topology and features.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::FeatureRowsMismatch`] when
    /// `features.rows() != edges.num_nodes()`.
    pub fn new(edges: EdgeList, features: DenseMatrix) -> Result<Self> {
        if features.rows() != edges.num_nodes() {
            return Err(GraphError::FeatureRowsMismatch {
                feature_rows: features.rows(),
                num_nodes: edges.num_nodes(),
            });
        }
        Ok(Graph {
            edges,
            features,
            name: "unnamed".to_string(),
        })
    }

    /// Builds a graph and tags it with a dataset name (used in reports).
    ///
    /// # Errors
    ///
    /// Same as [`Graph::new`].
    pub fn with_name(
        edges: EdgeList,
        features: DenseMatrix,
        name: impl Into<String>,
    ) -> Result<Self> {
        let mut g = Graph::new(edges, features)?;
        g.name = name.into();
        Ok(g)
    }

    /// Dataset name tag.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes `|V|`.
    pub fn num_nodes(&self) -> usize {
        self.edges.num_nodes()
    }

    /// Number of directed edges `|E|`.
    pub fn num_edges(&self) -> usize {
        self.edges.num_edges()
    }

    /// Feature length `f`.
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// The COO topology (`edgeIndex`).
    pub fn edges(&self) -> &EdgeList {
        &self.edges
    }

    /// The `[|V|, f]` node-feature matrix `X`.
    pub fn features(&self) -> &DenseMatrix {
        &self.features
    }

    /// Replaces the feature matrix (e.g. to change feature width).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::FeatureRowsMismatch`] when the row count does
    /// not equal the node count.
    pub fn set_features(&mut self, features: DenseMatrix) -> Result<()> {
        if features.rows() != self.num_nodes() {
            return Err(GraphError::FeatureRowsMismatch {
                feature_rows: features.rows(),
                num_nodes: self.num_nodes(),
            });
        }
        self.features = features;
        Ok(())
    }

    /// Unweighted adjacency matrix `A` in CSR form: `A[src][dst] = 1`.
    ///
    /// Parallel edges collapse to a single unit entry (simple-graph view),
    /// matching how GNN frameworks build `A` from an edge index.
    pub fn adjacency_csr(&self) -> CsrMatrix {
        adjacency_from_pairs(self.num_nodes(), self.edges.iter())
    }

    /// Adjacency of the *reversed* graph (`A^T`): rows are destinations.
    ///
    /// SpMM aggregation `A^T · X` over this matrix matches MP aggregation
    /// where messages flow `src -> dst`.
    pub fn adjacency_csr_transposed(&self) -> CsrMatrix {
        adjacency_from_pairs(self.num_nodes(), self.edges.iter().map(|(s, d)| (d, s)))
    }

    /// Adjacency in COO form.
    pub fn adjacency_coo(&self) -> CooMatrix {
        self.adjacency_csr().to_coo()
    }

    /// Dense `|V| x |V|` adjacency. Intended for tiny graphs and tests.
    pub fn adjacency_dense(&self) -> DenseMatrix {
        self.adjacency_csr().to_dense()
    }

    /// Out-degrees per node.
    pub fn out_degrees(&self) -> Vec<u32> {
        self.edges.out_degrees()
    }

    /// In-degrees per node.
    pub fn in_degrees(&self) -> Vec<u32> {
        self.edges.in_degrees()
    }

    /// Table IV-style summary statistics.
    pub fn stats(&self) -> GraphStats {
        let deg = self.edges.out_degrees();
        let max_degree = deg.iter().copied().max().unwrap_or(0);
        let avg_degree = if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        };
        GraphStats {
            nodes: self.num_nodes(),
            edges: self.num_edges(),
            feature_len: self.feature_dim(),
            avg_degree,
            max_degree,
        }
    }
}

fn adjacency_from_pairs(n: usize, pairs: impl Iterator<Item = (u32, u32)>) -> CsrMatrix {
    let mut list: Vec<(u32, u32)> = pairs.collect();
    list.sort_unstable();
    list.dedup();
    let mut row_ptr = vec![0u32; n + 1];
    for &(s, _) in &list {
        row_ptr[s as usize + 1] += 1;
    }
    for i in 0..n {
        row_ptr[i + 1] += row_ptr[i];
    }
    let col_indices: Vec<u32> = list.iter().map(|&(_, d)| d).collect();
    let values = vec![1.0f32; col_indices.len()];
    CsrMatrix::from_parts(n, n, row_ptr, col_indices, values)
        .expect("adjacency construction preserves CSR invariants")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let edges = EdgeList::from_pairs(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        Graph::new(edges, DenseMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32)).unwrap()
    }

    #[test]
    fn feature_rows_validated() {
        let edges = EdgeList::from_pairs(3, &[(0, 1)]).unwrap();
        let err = Graph::new(edges, DenseMatrix::zeros(4, 2)).unwrap_err();
        assert!(matches!(err, GraphError::FeatureRowsMismatch { .. }));
    }

    #[test]
    fn adjacency_orientation() {
        let g = triangle();
        let a = g.adjacency_csr();
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 0.0);
        let at = g.adjacency_csr_transposed();
        assert_eq!(at.get(1, 0), 1.0);
        assert_eq!(at.to_dense(), a.to_dense().transpose());
    }

    #[test]
    fn parallel_edges_collapse() {
        let edges = EdgeList::from_pairs(2, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        let g = Graph::new(edges, DenseMatrix::zeros(2, 1)).unwrap();
        assert_eq!(g.adjacency_csr().nnz(), 1);
        // but the raw edge list keeps multiplicity
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn stats_reflect_topology() {
        let g = triangle();
        let s = g.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.feature_len, 2);
        assert!((s.avg_degree - 1.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 1);
    }

    #[test]
    fn dense_adjacency_matches_csr() {
        let g = triangle();
        assert_eq!(g.adjacency_dense(), g.adjacency_csr().to_dense());
    }

    #[test]
    fn set_features_validates() {
        let mut g = triangle();
        assert!(g.set_features(DenseMatrix::zeros(3, 16)).is_ok());
        assert_eq!(g.feature_dim(), 16);
        assert!(g.set_features(DenseMatrix::zeros(2, 16)).is_err());
    }

    #[test]
    fn format_display() {
        assert_eq!(GraphFormat::Coo.to_string(), "COO");
        assert_eq!(GraphFormat::Dense.to_string(), "dense");
    }
}
