//! Heterogeneous (typed) graph shapes — the ogbn-mag-like substrate the
//! RGCN scenario runs on.
//!
//! A [`HeteroGraph`] is a set of typed node partitions plus a set of
//! typed edge relations between them, generated with the same seeded
//! determinism contract as every other loader in this crate: the same
//! `(shape, scale)` pair produces the same typed topology on every host,
//! every run and every thread count.
//!
//! The execution substrate stays homogeneous: [`HeteroGraph::to_graph`]
//! flattens the typed sets into one union [`Graph`] whose node ids are
//! grouped contiguously by type (relation edges keep their direction —
//! messages flow `src -> dst`). Relation membership survives the
//! flattening through [`HeteroGraph::relation_edges`], which is what the
//! RGCN lowering consumes to emit one aggregation chain per relation.
//!
//! # Example
//!
//! ```
//! use gsuite_graph::HeteroGraph;
//!
//! let h = HeteroGraph::mag_like(0.001);
//! assert_eq!(h.num_relations(), 4);
//! let g = h.to_graph();
//! assert_eq!(g.num_nodes(), h.num_nodes());
//! // Typed sets tile the union id space contiguously.
//! assert_eq!(h.type_offset(0), 0);
//! ```

use crate::generate::random_features;
use crate::{EdgeList, Graph};

/// One typed node set of a [`HeteroGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTypeSet {
    /// Type name (e.g. `"paper"`).
    pub name: &'static str,
    /// Number of nodes of this type.
    pub count: usize,
}

/// One typed edge relation: directed edges from one node type to another,
/// stored in union (flattened) node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Relation name (e.g. `"cites"`).
    pub name: &'static str,
    /// Index of the source node type.
    pub src_type: usize,
    /// Index of the destination node type.
    pub dst_type: usize,
    /// Source endpoint per edge, in union ids.
    pub src: Vec<u32>,
    /// Destination endpoint per edge, in union ids.
    pub dst: Vec<u32>,
}

/// A typed node/edge-set graph (see the module docs).
#[derive(Debug, Clone)]
pub struct HeteroGraph {
    name: String,
    node_types: Vec<NodeTypeSet>,
    offsets: Vec<usize>,
    relations: Vec<Relation>,
    feature_len: usize,
    seed: u64,
}

/// The ogbn-mag shape at scale 1.0: typed node counts, per-relation edge
/// counts and the 128-wide paper embeddings of the real dataset.
const MAG_NODE_TYPES: [(&str, usize); 4] = [
    ("paper", 736_389),
    ("author", 1_134_649),
    ("institution", 8_740),
    ("field", 59_965),
];
const MAG_RELATIONS: [(&str, usize, usize, usize); 4] = [
    ("cites", 0, 0, 5_416_271),
    ("writes", 1, 0, 7_145_660),
    ("affiliated", 1, 2, 1_043_998),
    ("topic", 0, 3, 7_505_078),
];
const MAG_FEATURE_LEN: usize = 128;
const MAG_SEED: u64 = 0x4D_A6_00;

impl HeteroGraph {
    /// Generates the ogbn-mag-like shape at `scale` in `(0, 1]`: each
    /// typed node count and relation edge count is multiplied by `scale`
    /// (clamped to at least 1), endpoints drawn by seeded hashing.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite or not in `(0, 1]`.
    pub fn mag_like(scale: f64) -> HeteroGraph {
        assert!(
            scale.is_finite() && scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        let node_types: Vec<NodeTypeSet> = MAG_NODE_TYPES
            .iter()
            .map(|&(name, count)| NodeTypeSet {
                name,
                count: ((count as f64 * scale).round() as usize).max(1),
            })
            .collect();
        let mut offsets = vec![0usize; node_types.len() + 1];
        for (t, set) in node_types.iter().enumerate() {
            offsets[t + 1] = offsets[t] + set.count;
        }
        let relations: Vec<Relation> = MAG_RELATIONS
            .iter()
            .enumerate()
            .map(|(r, &(name, src_type, dst_type, edges))| {
                let edges = ((edges as f64 * scale).round() as usize).max(1);
                let (src_base, src_n) = (offsets[src_type], node_types[src_type].count);
                let (dst_base, dst_n) = (offsets[dst_type], node_types[dst_type].count);
                let mut src = Vec::with_capacity(edges);
                let mut dst = Vec::with_capacity(edges);
                for e in 0..edges as u64 {
                    let hs = rel_hash(MAG_SEED, r as u64, e, 0);
                    let hd = rel_hash(MAG_SEED, r as u64, e, 1);
                    src.push((src_base as u64 + hs % src_n as u64) as u32);
                    dst.push((dst_base as u64 + hd % dst_n as u64) as u32);
                }
                Relation {
                    name,
                    src_type,
                    dst_type,
                    src,
                    dst,
                }
            })
            .collect();
        let name = if scale == 1.0 {
            "ogbn-mag".to_string()
        } else {
            format!("ogbn-mag@{scale:.3}")
        };
        HeteroGraph {
            name,
            node_types,
            offsets,
            relations,
            feature_len: MAG_FEATURE_LEN,
            seed: MAG_SEED,
        }
    }

    /// Name tag (`"ogbn-mag"` / `"ogbn-mag@<scale>"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The typed node sets, in union id order.
    pub fn node_types(&self) -> &[NodeTypeSet] {
        &self.node_types
    }

    /// The typed edge relations.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Total nodes across every type.
    pub fn num_nodes(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    /// Total directed edges across every relation.
    pub fn num_edges(&self) -> usize {
        self.relations.iter().map(|r| r.src.len()).sum()
    }

    /// First union id of node type `t` (types tile the id space
    /// contiguously in declaration order).
    pub fn type_offset(&self, t: usize) -> usize {
        self.offsets[t]
    }

    /// Relation `r`'s `(src, dst)` endpoint arrays in union ids — what a
    /// per-relation aggregation chain uploads.
    pub fn relation_edges(&self, r: usize) -> (&[u32], &[u32]) {
        (&self.relations[r].src, &self.relations[r].dst)
    }

    /// Flattens into the homogeneous union graph: every relation's edges
    /// concatenated in relation order, seeded features over the union
    /// node set.
    pub fn to_graph(&self) -> Graph {
        let n = self.num_nodes();
        let mut src = Vec::with_capacity(self.num_edges());
        let mut dst = Vec::with_capacity(self.num_edges());
        for rel in &self.relations {
            src.extend_from_slice(&rel.src);
            dst.extend_from_slice(&rel.dst);
        }
        let edges = EdgeList::new(n, src, dst).expect("union endpoints are in bounds");
        let features = random_features(n, self.feature_len, self.seed ^ 0xfea7);
        Graph::with_name(edges, features, self.name.clone()).expect("union graph is well-formed")
    }
}

/// Seeded FNV-1a over `(seed, relation, edge, endpoint)` — the endpoint
/// draw function, stable across platforms.
fn rel_hash(seed: u64, rel: u64, e: u64, endpoint: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in seed
        .to_le_bytes()
        .into_iter()
        .chain(rel.to_le_bytes())
        .chain(e.to_le_bytes())
        .chain(endpoint.to_le_bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mag_shape_at_full_scale_matches_the_real_dataset() {
        // Shape-only check at tiny scale plus the scale-1 arithmetic:
        // node/edge totals come from the published ogbn-mag statistics.
        let total_nodes: usize = MAG_NODE_TYPES.iter().map(|&(_, c)| c).sum();
        let total_edges: usize = MAG_RELATIONS.iter().map(|&(_, _, _, e)| e).sum();
        assert_eq!(total_nodes, 1_939_743);
        assert_eq!(total_edges, 21_111_007);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = HeteroGraph::mag_like(0.001);
        let b = HeteroGraph::mag_like(0.001);
        assert_eq!(a.relations(), b.relations());
        assert_eq!(a.to_graph().features(), b.to_graph().features());
        assert_eq!(a.name(), "ogbn-mag@0.001");
    }

    #[test]
    fn relations_respect_their_endpoint_types() {
        let h = HeteroGraph::mag_like(0.002);
        for (r, rel) in h.relations().iter().enumerate() {
            let (src, dst) = h.relation_edges(r);
            let (s0, s1) = (h.offsets[rel.src_type], h.offsets[rel.src_type + 1]);
            let (d0, d1) = (h.offsets[rel.dst_type], h.offsets[rel.dst_type + 1]);
            assert!(
                src.iter().all(|&v| (s0..s1).contains(&(v as usize))),
                "{}",
                rel.name
            );
            assert!(
                dst.iter().all(|&v| (d0..d1).contains(&(v as usize))),
                "{}",
                rel.name
            );
        }
    }

    #[test]
    fn union_graph_concatenates_relations_in_order() {
        let h = HeteroGraph::mag_like(0.001);
        let g = h.to_graph();
        assert_eq!(g.num_nodes(), h.num_nodes());
        assert_eq!(g.num_edges(), h.num_edges());
        assert_eq!(g.feature_dim(), 128);
        let first = h.relations()[0].src.len();
        assert_eq!(&g.edges().src()[..first], &h.relations()[0].src[..]);
    }

    #[test]
    fn every_type_survives_tiny_scales() {
        let h = HeteroGraph::mag_like(0.0001);
        assert!(h.node_types().iter().all(|t| t.count >= 1));
        assert!(h.relations().iter().all(|r| !r.src.is_empty()));
    }
}
