use serde::{Deserialize, Serialize};

use crate::{GraphError, Result};

/// A directed edge list — the paper's `edgeIndex` COO vector.
///
/// Edge `e` goes from `src()[e]` to `dst()[e]`. This is the raw topology
/// container every other format is derived from; MP kernels consume it
/// directly (indexSelect gathers by `src`, scatter reduces by `dst`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeList {
    num_nodes: usize,
    src: Vec<u32>,
    dst: Vec<u32>,
}

impl EdgeList {
    /// Builds an edge list, validating that all endpoints are in bounds.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] when an endpoint is
    /// `>= num_nodes`, and [`GraphError::InvalidGeneratorArgs`] when the
    /// two endpoint arrays have different lengths.
    pub fn new(num_nodes: usize, src: Vec<u32>, dst: Vec<u32>) -> Result<Self> {
        if src.len() != dst.len() {
            return Err(GraphError::InvalidGeneratorArgs {
                reason: format!("src has {} entries but dst has {}", src.len(), dst.len()),
            });
        }
        for &endpoint in src.iter().chain(dst.iter()) {
            if endpoint as usize >= num_nodes {
                return Err(GraphError::NodeOutOfBounds {
                    node: endpoint as usize,
                    num_nodes,
                });
            }
        }
        Ok(EdgeList {
            num_nodes,
            src,
            dst,
        })
    }

    /// Builds from `(src, dst)` pairs.
    ///
    /// # Errors
    ///
    /// Same as [`EdgeList::new`].
    pub fn from_pairs(num_nodes: usize, pairs: &[(u32, u32)]) -> Result<Self> {
        let src = pairs.iter().map(|&(s, _)| s).collect();
        let dst = pairs.iter().map(|&(_, d)| d).collect();
        EdgeList::new(num_nodes, src, dst)
    }

    /// Number of nodes the endpoints index into.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Source endpoint per edge.
    pub fn src(&self) -> &[u32] {
        &self.src
    }

    /// Destination endpoint per edge.
    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Iterator over `(src, dst)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.src.iter().zip(&self.dst).map(|(&s, &d)| (s, d))
    }

    /// Out-degree of every node.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes];
        for &s in &self.src {
            deg[s as usize] += 1;
        }
        deg
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes];
        for &d in &self.dst {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Sorts edges by `(dst, src)` — the order scatter-friendly layouts use.
    pub fn sort_by_dst(&mut self) {
        let mut perm: Vec<usize> = (0..self.num_edges()).collect();
        perm.sort_unstable_by_key(|&e| (self.dst[e], self.src[e]));
        self.src = perm.iter().map(|&e| self.src[e]).collect();
        self.dst = perm.iter().map(|&e| self.dst[e]).collect();
    }

    /// Returns a copy with every edge reversed.
    pub fn reversed(&self) -> EdgeList {
        EdgeList {
            num_nodes: self.num_nodes,
            src: self.dst.clone(),
            dst: self.src.clone(),
        }
    }

    /// Deduplicates edges (after sorting by `(src, dst)`), removing parallel
    /// duplicates. Returns the number of edges removed.
    pub fn dedup(&mut self) -> usize {
        let before = self.num_edges();
        let mut pairs: Vec<(u32, u32)> = self.iter().collect();
        pairs.sort_unstable();
        pairs.dedup();
        self.src = pairs.iter().map(|&(s, _)| s).collect();
        self.dst = pairs.iter().map(|&(_, d)| d).collect();
        before - self.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_bounds() {
        assert!(EdgeList::new(3, vec![0, 2], vec![1, 0]).is_ok());
        assert!(matches!(
            EdgeList::new(3, vec![0, 3], vec![1, 0]).unwrap_err(),
            GraphError::NodeOutOfBounds { node: 3, .. }
        ));
        assert!(EdgeList::new(3, vec![0], vec![1, 2]).is_err());
    }

    #[test]
    fn degrees() {
        let e = EdgeList::from_pairs(4, &[(0, 1), (0, 2), (1, 2), (3, 2)]).unwrap();
        assert_eq!(e.out_degrees(), vec![2, 1, 0, 1]);
        assert_eq!(e.in_degrees(), vec![0, 1, 3, 0]);
    }

    #[test]
    fn sort_by_dst_orders_edges() {
        let mut e = EdgeList::from_pairs(3, &[(2, 1), (0, 2), (1, 0), (0, 1)]).unwrap();
        e.sort_by_dst();
        let pairs: Vec<(u32, u32)> = e.iter().collect();
        assert_eq!(pairs, vec![(1, 0), (0, 1), (2, 1), (0, 2)]);
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let e = EdgeList::from_pairs(3, &[(0, 1), (1, 2)]).unwrap();
        let r = e.reversed();
        let pairs: Vec<(u32, u32)> = r.iter().collect();
        assert_eq!(pairs, vec![(1, 0), (2, 1)]);
    }

    #[test]
    fn dedup_removes_parallel_edges() {
        let mut e = EdgeList::from_pairs(3, &[(0, 1), (0, 1), (1, 2), (0, 1)]).unwrap();
        let removed = e.dedup();
        assert_eq!(removed, 2);
        assert_eq!(e.num_edges(), 2);
    }
}
