//! # gsuite-graph
//!
//! Graph substrate for gSuite-rs: topology containers in the formats the
//! paper discusses (§II-D: dense matrix, sparse matrix, COO, CSR), format
//! conversions, GCN-style normalization, seeded synthetic graph
//! generators, the Table IV dataset loaders and the [`partition`] module
//! backing sharded multi-GPU execution.
//!
//! ## The synthetic-shape dataset loader
//!
//! No dataset is ever read from disk. [`datasets::Dataset::load_scaled`]
//! *generates* each evaluation graph from its Table IV shape: a seeded
//! [`GraphGenerator`] reproduces the exact node count, edge count and
//! feature length of the named dataset, with a heavy-tailed (Zipf)
//! degree distribution matching citation/social topology. Only topology
//! statistics and tensor shapes drive a *performance* characterization —
//! labels and accuracy never enter the pipeline — so the synthetic
//! substitution preserves what the benchmark measures (the argument is
//! laid out in `ARCHITECTURE.md`, "Design notes").
//!
//! `load_scaled(scale)` with `scale` in `(0, 1]` multiplies node and edge
//! counts by `scale` (clamped to ≥ 2 nodes / 1 edge) while keeping the
//! feature length and degree shape, preserving per-node/per-edge workload
//! intensity; `scale == 1.0` reproduces Table IV exactly.
//!
//! **Scale-determinism guarantee:** each dataset owns a fixed generator
//! seed, so `Dataset::load_scaled(s)` is a pure function of
//! `(dataset, s)` — identical edge lists and feature matrices on every
//! host, every run and every thread count. Different scales are
//! *different* graphs (the generator samples a fresh topology per size),
//! but any given `(dataset, scale)` pair never varies; the scenario
//! runner's memoized graph cache, the serving layer's LRU keys and the
//! golden-profile suite all rest on this.
//!
//! # Example
//!
//! ```
//! use gsuite_graph::{datasets::Dataset, GraphFormat};
//!
//! // A 2% scale Cora-shaped graph with the paper's 1433-wide features.
//! let graph = Dataset::Cora.load_scaled(0.02);
//! assert_eq!(graph.feature_dim(), 1433);
//! let csr = graph.adjacency_csr();
//! assert_eq!(csr.rows(), graph.num_nodes());
//! assert!(matches!(GraphFormat::Csr, GraphFormat::Csr));
//! // Determinism: the same (dataset, scale) is always the same graph.
//! let again = Dataset::Cora.load_scaled(0.02);
//! assert_eq!(graph.edges(), again.edges());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datasets;
mod edge_list;
mod error;
mod generate;
mod graph;
pub mod hetero;
mod normalize;
pub mod partition;
pub mod sample;

pub use edge_list::EdgeList;
pub use error::GraphError;
pub use generate::{GraphGenerator, GraphTopology};
pub use graph::{Graph, GraphFormat, GraphStats};
pub use hetero::{HeteroGraph, NodeTypeSet, Relation};
pub use normalize::{add_self_loops, gcn_norm_csr, inv_sqrt_degree, symmetrize};
pub use partition::{GraphPartition, PartitionStrategy, Partitioner, ShardPart};
pub use sample::{batch_schedule, fanout_label, parse_fanout, NeighborSampler, SampledSubgraph};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
