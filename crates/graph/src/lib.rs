//! # gsuite-graph
//!
//! Graph substrate for gSuite-rs: topology containers in the formats the
//! paper discusses (§II-D: dense matrix, sparse matrix, COO, CSR), format
//! conversions, GCN-style normalization, synthetic graph generators and the
//! five evaluation datasets of Table IV.
//!
//! The original gSuite imports Cora/CiteSeer/PubMed/Reddit/LiveJournal from
//! disk. Those downloads are unavailable here, and — crucially for a
//! *performance* characterization — only the topology statistics and tensor
//! shapes matter, not labels or accuracy. [`datasets`] therefore generates
//! seeded synthetic graphs that match Table IV exactly in node count, edge
//! count and feature length, with a heavy-tailed degree distribution for the
//! citation/social graphs (see `DESIGN.md` §2 for the substitution argument).
//!
//! # Example
//!
//! ```
//! use gsuite_graph::{datasets::Dataset, GraphFormat};
//!
//! // A 2% scale Cora-shaped graph with the paper's 1433-wide features.
//! let graph = Dataset::Cora.load_scaled(0.02);
//! assert_eq!(graph.feature_dim(), 1433);
//! let csr = graph.adjacency_csr();
//! assert_eq!(csr.rows(), graph.num_nodes());
//! assert!(matches!(GraphFormat::Csr, GraphFormat::Csr));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datasets;
mod edge_list;
mod error;
mod generate;
mod graph;
mod normalize;

pub use edge_list::EdgeList;
pub use error::GraphError;
pub use generate::{GraphGenerator, GraphTopology};
pub use graph::{Graph, GraphFormat, GraphStats};
pub use normalize::{add_self_loops, gcn_norm_csr, inv_sqrt_degree, symmetrize};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
