//! Property-based tests for the graph partitioner: exact node coverage,
//! halo-set correctness, seed determinism and subgraph consistency across
//! every strategy.

use gsuite_graph::{Graph, GraphGenerator, GraphTopology, PartitionStrategy, Partitioner};
use proptest::prelude::*;

fn arb_strategy() -> impl Strategy<Value = PartitionStrategy> {
    prop_oneof![
        Just(PartitionStrategy::Hash),
        Just(PartitionStrategy::Range),
        Just(PartitionStrategy::EdgeCut),
    ]
}

fn arb_topology() -> impl Strategy<Value = GraphTopology> {
    prop_oneof![
        (0.1f64..1.2).prop_map(|exponent| GraphTopology::PowerLaw { exponent }),
        Just(GraphTopology::ErdosRenyi),
        Just(GraphTopology::Ring),
    ]
}

fn build(nodes: usize, edges: usize, topology: GraphTopology, seed: u64) -> Graph {
    GraphGenerator::new(nodes, edges)
        .topology(topology)
        .seed(seed)
        .build_graph(3)
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shards_cover_the_node_set_exactly(
        nodes in 2usize..150,
        edges in 0usize..500,
        shards in 1usize..10,
        strategy in arb_strategy(),
        topology in arb_topology(),
        seed in 0u64..1000,
    ) {
        let g = build(nodes, edges, topology, seed);
        let p = Partitioner::new(shards).strategy(strategy).seed(seed).partition(&g);
        // Effective shard count never exceeds the node count, and every
        // effective shard owns at least one node.
        prop_assert_eq!(p.shards, shards.min(nodes));
        prop_assert!(p.parts.iter().all(|part| !part.owned.is_empty()));
        // Disjoint exact cover: each node owned exactly once, and the
        // assignment vector agrees with the owned lists.
        let mut owner = vec![usize::MAX; nodes];
        for part in &p.parts {
            for &v in &part.owned {
                prop_assert_eq!(owner[v as usize], usize::MAX, "node owned twice");
                owner[v as usize] = part.shard;
            }
        }
        for (v, &o) in owner.iter().enumerate() {
            prop_assert_ne!(o, usize::MAX, "node {} unowned", v);
            prop_assert_eq!(o, p.assignment[v] as usize);
        }
    }

    #[test]
    fn halo_sets_equal_cross_shard_edge_endpoints(
        nodes in 2usize..100,
        edges in 0usize..400,
        shards in 1usize..8,
        strategy in arb_strategy(),
        seed in 0u64..1000,
    ) {
        let g = build(nodes, edges, GraphTopology::ErdosRenyi, seed);
        let p = Partitioner::new(shards).strategy(strategy).seed(seed).partition(&g);
        let mut cut = 0usize;
        let mut edge_sum = 0usize;
        for part in &p.parts {
            // The halo is exactly the deduplicated set of foreign src
            // endpoints of edges whose dst this shard owns.
            let mut expected: Vec<u32> = g
                .edges()
                .iter()
                .filter(|&(s, d)| {
                    p.assignment[d as usize] as usize == part.shard
                        && p.assignment[s as usize] as usize != part.shard
                })
                .map(|(s, _)| s)
                .collect();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(&part.halo, &expected, "shard {}", part.shard);
            // Halo nodes are never owned locally, and halo_from groups
            // them by their true owner.
            let mut from = vec![0usize; p.shards];
            for &h in &part.halo {
                let o = p.assignment[h as usize] as usize;
                prop_assert_ne!(o, part.shard, "self-halo");
                from[o] += 1;
            }
            prop_assert_eq!(&part.halo_from, &from);
            edge_sum += part.edges;
            cut += g
                .edges()
                .iter()
                .filter(|&(s, d)| {
                    p.assignment[d as usize] as usize == part.shard
                        && p.assignment[s as usize] as usize != part.shard
                })
                .count();
        }
        prop_assert_eq!(edge_sum, g.num_edges(), "edges partition exactly");
        prop_assert_eq!(cut, p.cut_edges);
    }

    #[test]
    fn partitioning_is_deterministic_per_seed(
        nodes in 2usize..80,
        edges in 0usize..300,
        shards in 1usize..6,
        strategy in arb_strategy(),
        seed in 0u64..1000,
    ) {
        let g = build(nodes, edges, GraphTopology::ErdosRenyi, seed ^ 0xabc);
        let mk = || Partitioner::new(shards).strategy(strategy).seed(seed).partition(&g);
        let a = mk();
        let b = mk();
        prop_assert_eq!(&a, &b, "repeat partition differs");
        // Subgraph extraction is deterministic too, shard by shard.
        for shard in 0..a.shards {
            let (ga, la) = a.subgraph(&g, shard).unwrap();
            let (gb, lb) = b.subgraph(&g, shard).unwrap();
            prop_assert_eq!(la, lb);
            prop_assert_eq!(ga.edges(), gb.edges());
            prop_assert_eq!(ga.features(), gb.features());
        }
    }

    #[test]
    fn subgraphs_are_consistent_views(
        nodes in 2usize..60,
        edges in 0usize..250,
        shards in 1usize..5,
        strategy in arb_strategy(),
        seed in 0u64..500,
    ) {
        let g = build(nodes, edges, GraphTopology::ErdosRenyi, seed);
        let p = Partitioner::new(shards).strategy(strategy).seed(seed).partition(&g);
        for part in &p.parts {
            let (sub, l2g) = p.subgraph(&g, part.shard).unwrap();
            prop_assert_eq!(sub.num_nodes(), part.owned.len() + part.halo.len());
            prop_assert_eq!(sub.num_edges(), part.edges);
            prop_assert_eq!(sub.feature_dim(), g.feature_dim());
            // The local->global map is injective and feature rows match.
            let mut sorted = l2g.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), l2g.len(), "l2g not injective");
            for (l, &gv) in l2g.iter().enumerate() {
                prop_assert_eq!(sub.features().row(l), g.features().row(gv as usize));
            }
            // Every local edge maps to a global edge with an owned dst.
            for (s, d) in sub.edges().iter() {
                let gd = l2g[d as usize];
                prop_assert_eq!(p.assignment[gd as usize] as usize, part.shard);
                prop_assert!((s as usize) < sub.num_nodes());
            }
        }
    }
}
