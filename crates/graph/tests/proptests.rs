//! Property-based tests for the graph substrate.

use gsuite_graph::{
    add_self_loops, gcn_norm_csr, symmetrize, EdgeList, Graph, GraphGenerator, GraphTopology,
};
use gsuite_tensor::DenseMatrix;
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = GraphTopology> {
    prop_oneof![
        (0.1f64..1.3).prop_map(|exponent| GraphTopology::PowerLaw { exponent }),
        Just(GraphTopology::ErdosRenyi),
        Just(GraphTopology::Ring),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generator_hits_exact_counts(
        nodes in 2usize..120,
        edges in 0usize..400,
        topology in arb_topology(),
        seed in 0u64..1000,
    ) {
        let e = GraphGenerator::new(nodes, edges)
            .topology(topology)
            .seed(seed)
            .build_edges()
            .unwrap();
        prop_assert_eq!(e.num_nodes(), nodes);
        prop_assert_eq!(e.num_edges(), edges);
        prop_assert!(e.iter().all(|(s, d)| s != d), "no self loops");
        prop_assert_eq!(e.out_degrees().iter().sum::<u32>() as usize, edges);
        prop_assert_eq!(e.in_degrees().iter().sum::<u32>() as usize, edges);
    }

    #[test]
    fn adjacency_transpose_consistency(
        nodes in 2usize..40,
        edges in 0usize..150,
        seed in 0u64..500,
    ) {
        let el = GraphGenerator::new(nodes, edges).seed(seed).build_edges().unwrap();
        let g = Graph::new(el, DenseMatrix::zeros(nodes, 3)).unwrap();
        let a = g.adjacency_csr();
        let at = g.adjacency_csr_transposed();
        prop_assert_eq!(at.to_dense(), a.to_dense().transpose());
    }

    #[test]
    fn self_loops_make_diagonal_full(
        nodes in 2usize..30,
        edges in 0usize..100,
        seed in 0u64..500,
    ) {
        let el = GraphGenerator::new(nodes, edges).seed(seed).build_edges().unwrap();
        let g = Graph::new(el, DenseMatrix::zeros(nodes, 1)).unwrap();
        let a_hat = add_self_loops(&g.adjacency_csr());
        for i in 0..nodes {
            prop_assert_eq!(a_hat.get(i, i), 1.0);
        }
        prop_assert_eq!(a_hat.nnz(), g.adjacency_csr().nnz() + nodes);
    }

    #[test]
    fn symmetrize_is_symmetric_and_idempotent(
        nodes in 2usize..30,
        edges in 0usize..100,
        seed in 0u64..500,
    ) {
        let el = GraphGenerator::new(nodes, edges).seed(seed).build_edges().unwrap();
        let g = Graph::new(el, DenseMatrix::zeros(nodes, 1)).unwrap();
        let s = symmetrize(&g.adjacency_csr());
        prop_assert_eq!(s.to_dense(), s.transpose().to_dense());
        prop_assert_eq!(symmetrize(&s), s);
    }

    #[test]
    fn gcn_norm_spectral_bound(
        nodes in 2usize..25,
        edges in 1usize..80,
        seed in 0u64..500,
    ) {
        // Entries of D^-1/2 Â D^-1/2 lie in (0, 1] and rows are bounded.
        let el = GraphGenerator::new(nodes, edges).seed(seed).build_edges().unwrap();
        let g = Graph::new(el, DenseMatrix::zeros(nodes, 1)).unwrap();
        let norm = gcn_norm_csr(&symmetrize(&g.adjacency_csr()));
        for (_, _, v) in norm.iter() {
            prop_assert!(v > 0.0 && v <= 1.0 + 1e-6, "entry {v} outside (0,1]");
        }
    }

    #[test]
    fn format_roundtrips_preserve_structure(
        nodes in 2usize..40,
        edges in 0usize..150,
        topology in arb_topology(),
        seed in 0u64..500,
    ) {
        // COO ↔ CSR ↔ dense agree entry-for-entry in every direction —
        // the format-flexibility claim the scenario grid's `formats` axis
        // rests on (paper §II-D).
        let el = GraphGenerator::new(nodes, edges)
            .topology(topology)
            .seed(seed)
            .build_edges()
            .unwrap();
        let g = Graph::new(el, DenseMatrix::zeros(nodes, 2)).unwrap();
        let csr = g.adjacency_csr();
        let coo = g.adjacency_coo();
        prop_assert_eq!(&coo.to_csr(), &csr, "COO -> CSR roundtrip");
        prop_assert_eq!(&csr.to_coo().to_csr(), &csr, "CSR -> COO -> CSR roundtrip");
        prop_assert_eq!(coo.to_dense(), csr.to_dense(), "COO/CSR dense agreement");
        prop_assert_eq!(&csr.transpose().transpose(), &csr, "double transpose");
        prop_assert_eq!(
            g.adjacency_dense(),
            csr.to_dense(),
            "dense view matches CSR"
        );
        prop_assert_eq!(csr.nnz(), coo.nnz());
    }

    #[test]
    fn format_roundtrips_preserve_degrees(
        nodes in 2usize..40,
        edges in 0usize..150,
        seed in 0u64..500,
    ) {
        // Row populations (out-degrees of the simple-graph view) survive
        // every format conversion.
        let el = GraphGenerator::new(nodes, edges).seed(seed).build_edges().unwrap();
        let g = Graph::new(el, DenseMatrix::zeros(nodes, 1)).unwrap();
        let csr = g.adjacency_csr();
        let dense = csr.to_dense();
        let coo = csr.to_coo();
        for r in 0..nodes {
            let csr_deg = csr.row_nnz(r);
            let dense_deg = (0..nodes).filter(|&c| dense.get(r, c) != 0.0).count();
            let coo_deg = coo.iter().filter(|&(row, _, _)| row == r).count();
            prop_assert_eq!(csr_deg, dense_deg, "row {}", r);
            prop_assert_eq!(csr_deg, coo_deg, "row {}", r);
        }
        // And the simple-graph degrees never exceed the raw multigraph
        // out-degrees.
        for (r, &raw) in g.out_degrees().iter().enumerate() {
            prop_assert!(csr.row_nnz(r) <= raw as usize);
        }
    }

    #[test]
    fn normalization_row_sums_format_independent(
        nodes in 2usize..25,
        edges in 1usize..80,
        seed in 0u64..500,
    ) {
        // The GCN normalization chain produces the same row sums whether
        // read from CSR, COO or the dense view — scenario cells consuming
        // different formats see one normalization.
        let el = GraphGenerator::new(nodes, edges).seed(seed).build_edges().unwrap();
        let g = Graph::new(el, DenseMatrix::zeros(nodes, 1)).unwrap();
        let norm = gcn_norm_csr(&add_self_loops(&symmetrize(&g.adjacency_csr())));
        let csr_sums = norm.row_sums();
        let dense = norm.to_dense();
        let mut coo_sums = vec![0.0f32; nodes];
        for (r, _, v) in norm.to_coo().iter() {
            coo_sums[r] += v;
        }
        for r in 0..nodes {
            let dense_sum: f32 = dense.row(r).iter().sum();
            prop_assert!(
                (csr_sums[r] - dense_sum).abs() < 1e-5,
                "row {} CSR {} vs dense {}",
                r, csr_sums[r], dense_sum
            );
            prop_assert!(
                (csr_sums[r] - coo_sums[r]).abs() < 1e-5,
                "row {} CSR {} vs COO {}",
                r, csr_sums[r], coo_sums[r]
            );
            // Self-loops make every row non-empty; D^-1/2 Â D^-1/2 rows
            // sum to a positive value bounded by the row population.
            prop_assert!(csr_sums[r] > 0.0);
        }
    }

    #[test]
    fn edge_list_sort_preserves_multiset(
        nodes in 2usize..20,
        pairs in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
    ) {
        let pairs: Vec<(u32, u32)> = pairs
            .into_iter()
            .map(|(s, d)| (s % nodes as u32, d % nodes as u32))
            .collect();
        let mut el = EdgeList::from_pairs(nodes, &pairs).unwrap();
        el.sort_by_dst();
        let mut original = pairs.clone();
        let mut sorted: Vec<(u32, u32)> = el.iter().collect();
        original.sort_unstable();
        sorted.sort_unstable();
        prop_assert_eq!(original, sorted);
    }
}
