//! The inter-device transfer cost model for sharded multi-GPU runs.
//!
//! Graph-partitioned inference moves halo (ghost-node) feature rows
//! between devices before every aggregation layer. Kernel profilers model
//! on-device behaviour; this model prices the *link*: each transfer costs
//! a fixed per-transfer latency (launch + synchronization of the copy
//! engine) plus a bandwidth term — the standard `α + β·bytes` model of
//! collective-communication analysis. The multi-GPU scenarios use it to
//! expose the communication bottleneck that single-device GNN benchmarks
//! hide.

use serde::{Deserialize, Serialize};

/// An `α + β·bytes` inter-device link model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    /// Fixed per-transfer latency in milliseconds (α).
    pub latency_ms: f64,
    /// Link bandwidth in GB/s (1 GB = 1e9 bytes) (1/β).
    pub gb_per_s: f64,
}

impl Interconnect {
    /// An NVLink-class link: 5 µs per-transfer latency, 50 GB/s effective
    /// peer-to-peer bandwidth — the modeled fabric of the multi-GPU
    /// scenarios.
    pub fn nvlink() -> Self {
        Interconnect {
            latency_ms: 0.005,
            gb_per_s: 50.0,
        }
    }

    /// A PCIe-class link: 10 µs latency, 12 GB/s effective bandwidth.
    pub fn pcie() -> Self {
        Interconnect {
            latency_ms: 0.010,
            gb_per_s: 12.0,
        }
    }

    /// Modeled wall time of one `bytes`-sized transfer, in milliseconds.
    pub fn transfer_ms(&self, bytes: u64) -> f64 {
        self.latency_ms + bytes as f64 / (self.gb_per_s * 1e6)
    }

    /// This link degraded by `factor` (≥ 1): per-transfer latency grows
    /// `factor`×, bandwidth shrinks `factor`× — the fault injector's
    /// congested/flaky-fabric model. `factor <= 1` returns the link
    /// unchanged.
    pub fn degraded(self, factor: f64) -> Self {
        if factor <= 1.0 {
            return self;
        }
        Interconnect {
            latency_ms: self.latency_ms * factor,
            gb_per_s: self.gb_per_s / factor,
        }
    }
}

impl Default for Interconnect {
    /// [`Interconnect::nvlink`].
    fn default() -> Self {
        Interconnect::nvlink()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_floors_small_transfers() {
        let link = Interconnect::nvlink();
        assert!((link.transfer_ms(0) - 0.005).abs() < 1e-12);
        assert!(link.transfer_ms(4) < link.transfer_ms(4 << 20));
    }

    #[test]
    fn degraded_links_slow_both_terms() {
        let link = Interconnect::nvlink().degraded(4.0);
        assert!((link.latency_ms - 0.020).abs() < 1e-12);
        assert!((link.gb_per_s - 12.5).abs() < 1e-12);
        // Sub-unity factors never *improve* the link.
        assert_eq!(Interconnect::nvlink().degraded(0.5), Interconnect::nvlink());
    }

    #[test]
    fn bandwidth_term_scales_linearly() {
        let link = Interconnect::nvlink();
        // 50 MB at 50 GB/s = 1 ms plus latency.
        let t = link.transfer_ms(50_000_000);
        assert!((t - 1.005).abs() < 1e-9, "{t}");
        assert!(Interconnect::pcie().transfer_ms(50_000_000) > t);
    }
}
