//! The GPGPU-Sim stand-in: adapter from the cycle-level simulator to the
//! unified [`KernelStats`] record.

use gsuite_gpu::{GpuConfig, KernelWorkload, SimOptions, Simulator};

use crate::stats::{Backend, KernelStats};
use crate::Profiler;

/// Cycle-simulator profiling backend.
///
/// Wraps a [`Simulator`] and converts each run's [`gsuite_gpu::SimStats`]
/// into the same record shape the analytical profiler emits, so figures can
/// overlay both (the paper's Fig. 8).
#[derive(Debug, Clone)]
pub struct SimProfiler {
    simulator: Simulator,
}

impl SimProfiler {
    /// A backend over an explicit simulator.
    pub fn new(simulator: Simulator) -> Self {
        SimProfiler { simulator }
    }

    /// A backend over a proportionally scaled V100 with `num_sms` SMs and a
    /// default CTA sampling cap chosen for interactive use.
    ///
    /// # Panics
    ///
    /// Panics if `num_sms` is zero or greater than 80.
    pub fn scaled(num_sms: usize) -> Self {
        SimProfiler {
            simulator: Simulator::new(
                GpuConfig::v100_scaled(num_sms),
                SimOptions {
                    max_ctas: Some(2048),
                    max_cycles: None,
                },
            ),
        }
    }

    /// A backend over the full 80-SM V100 (use for small grids only).
    pub fn full() -> Self {
        SimProfiler {
            simulator: Simulator::new(GpuConfig::v100(), SimOptions::default()),
        }
    }

    /// Replaces the CTA sampling cap.
    pub fn max_ctas(mut self, max_ctas: Option<u64>) -> Self {
        let options = SimOptions {
            max_ctas,
            ..*self.simulator.options()
        };
        self.simulator = Simulator::new(self.simulator.config().clone(), options);
        self
    }

    /// The underlying simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.simulator
    }
}

impl Profiler for SimProfiler {
    fn backend(&self) -> Backend {
        Backend::CycleSim
    }

    fn profile(&self, workload: &dyn KernelWorkload) -> KernelStats {
        KernelStats::from_sim(self.simulator.run(workload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_gpu::testkit::{ComputeWorkload, StreamWorkload};

    #[test]
    fn converts_sim_stats() {
        let w = ComputeWorkload::new(4, 2, 32, 0);
        let stats = SimProfiler::scaled(2).profile(&w);
        assert_eq!(stats.backend, Backend::CycleSim);
        assert!(stats.stalls.is_some());
        assert!(stats.occupancy.is_some());
        assert_eq!(stats.instr_mix.fp32, 4 * 2 * 32);
    }

    #[test]
    fn sampling_cap_applies() {
        let w = ComputeWorkload::new(100, 1, 16, 0);
        let capped = SimProfiler::scaled(1).max_ctas(Some(10)).profile(&w);
        // Sampled run scales instruction counters only for time; mix counts
        // reflect the sample.
        assert_eq!(capped.instr_mix.fp32, 10 * 16);
    }

    #[test]
    fn agrees_with_hw_profiler_on_mix() {
        use crate::{HwProfiler, Profiler as _};
        let w = StreamWorkload::new(8, 2, 512);
        let sim = SimProfiler::scaled(2).profile(&w);
        let hw = HwProfiler::v100().profile(&w);
        assert_eq!(sim.instr_mix.load_store, hw.instr_mix.load_store);
        assert_eq!(sim.instr_mix.fp32, hw.instr_mix.fp32);
    }
}
