//! Report helpers: aligned text tables (the repository's "figures" render
//! as tables/series on stdout) and CSV export.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// A simple column-aligned text table builder.
///
/// # Example
///
/// ```
/// use gsuite_profile::TextTable;
///
/// let mut t = TextTable::new(&["kernel", "time (ms)"]);
/// t.row(&["sgemm", "1.25"]);
/// t.row(&["scatter", "0.40"]);
/// let s = t.render();
/// assert!(s.contains("sgemm"));
/// assert!(s.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extras are dropped.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        row.truncate(self.headers.len());
        self.rows.push(row);
        self
    }

    /// Appends a row of already-owned cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        let mut row = cells;
        row.resize(self.headers.len(), String::new());
        row.truncate(self.headers.len());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header underline, columns padded to fit.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[c]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        let underline: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        write_row(&underline, &mut out);
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// The rows as CSV text (RFC-4180-ish quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let emit = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

/// Writes a table to `path` as CSV.
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
pub fn write_csv(table: &TextTable, path: &Path) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(table.to_csv().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(&["a", "long-header"]);
        t.row(&["xxxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // Header and row columns start at the same offset.
        let hpos = lines[0].find("long-header").unwrap();
        let rpos = lines[2].find('1').unwrap();
        assert_eq!(hpos, rpos);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["with,comma", "with\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"with,comma\""));
        assert!(csv.contains("\"with\"\"quote\""));
    }

    #[test]
    fn csv_roundtrip_to_disk() {
        let mut t = TextTable::new(&["k", "v"]);
        t.row(&["x", "1"]);
        let dir = std::env::temp_dir().join("gsuite_profile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv(&t, &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("k,v"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
