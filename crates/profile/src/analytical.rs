//! The `nvprof` stand-in: a single-pass analytical hardware model.
//!
//! Where the cycle simulator executes a kernel cycle by cycle, this model
//! walks every warp trace once, counting instructions and replaying memory
//! accesses through a *silicon-flavoured* cache hierarchy, then computes the
//! launch time with a roofline: the slowest of issue throughput, per-class
//! ALU throughput, LDST throughput, L2 bandwidth and DRAM bandwidth, plus a
//! latency floor for launches too small to fill the machine.
//!
//! Two deliberate modeling differences versus `gsuite-gpu` reproduce the
//! profiler/simulator gap the paper highlights in Fig. 8:
//!
//! * the hardware L2 fills at **64-byte granularity** (sector pairs, as the
//!   V100 fetches on miss), so spatially-local misses prefetch their
//!   neighbour sector — the simulator moves strict 32-byte sectors;
//! * this model always uses the **full 6 MB L2** of the real card, while
//!   tractable cycle simulation usually runs a scaled device.

use gsuite_gpu::{
    CacheConfig, CacheStats, GpuConfig, Grid, InstrMix, KernelWorkload, SetAssocCache,
};

use crate::stats::{Backend, KernelStats};
use crate::Profiler;

/// Analytical profiler configuration.
#[derive(Debug, Clone)]
pub struct HwProfiler {
    config: GpuConfig,
    /// Maximum CTAs whose traces are walked (sampling for huge grids);
    /// counters are scaled back up by the sampled fraction.
    max_ctas: u64,
    /// Fixed per-launch host/driver overhead in microseconds.
    launch_overhead_us: f64,
}

impl HwProfiler {
    /// A profiler modeling the paper's full-size V100.
    pub fn v100() -> Self {
        HwProfiler {
            config: GpuConfig::v100(),
            max_ctas: 4096,
            launch_overhead_us: 5.0,
        }
    }

    /// A profiler for an arbitrary device configuration.
    pub fn with_config(config: GpuConfig) -> Self {
        HwProfiler {
            config,
            max_ctas: 4096,
            launch_overhead_us: 5.0,
        }
    }

    /// Sets the CTA sampling cap (default 4096).
    pub fn max_ctas(mut self, max_ctas: u64) -> Self {
        self.max_ctas = max_ctas.max(1);
        self
    }

    /// Sets the per-launch overhead in microseconds (default 5).
    pub fn launch_overhead_us(mut self, us: f64) -> Self {
        self.launch_overhead_us = us;
        self
    }

    /// The modeled device.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }
}

impl Profiler for HwProfiler {
    fn backend(&self) -> Backend {
        Backend::HwProfiler
    }

    fn profile(&self, workload: &dyn KernelWorkload) -> KernelStats {
        let grid = workload.grid();
        let cfg = &self.config;
        let sample_ctas = grid.ctas.min(self.max_ctas);
        let scale = if sample_ctas == 0 {
            1.0
        } else {
            grid.ctas as f64 / sample_ctas as f64
        };

        let mut mix = InstrMix::default();
        // Hardware-flavoured hierarchy: per-SM L1s (same geometry as the
        // device), full-size L2 with 64B fill granularity.
        let mut l1s: Vec<SetAssocCache> = (0..cfg.num_sms)
            .map(|_| SetAssocCache::new(cfg.l1))
            .collect();
        let mut l2 = SetAssocCache::new(CacheConfig::new(
            GpuConfig::v100().l2.capacity_bytes,
            GpuConfig::v100().l2.associativity,
        ));
        let mut l2_accesses = 0u64;
        let mut l2_hits = 0u64;
        let mut dram_sectors = 0u64;
        let mut l2_sectors = 0u64;
        let mut ldst_instrs = 0u64;
        let mut critical_path = 0u64; // per-warp latency estimate, max over warps
        let mut sectors: Vec<u64> = Vec::with_capacity(64);
        // One reused trace arena for the whole walk: the streaming API
        // keeps this single-pass model allocation-free per warp.
        let mut trace = gsuite_gpu::TraceBuf::new();

        for cta in 0..sample_ctas {
            let sm = (cta % cfg.num_sms as u64) as usize;
            for warp in 0..grid.warps_per_cta {
                trace.clear();
                workload.trace_into(&mut trace, cta, warp);
                let mut warp_latency = cfg.ifetch_latency;
                for instr in trace.instrs() {
                    match instr.class {
                        gsuite_gpu::InstrClass::Fp32 => {
                            mix.fp32 += 1;
                            warp_latency += 1;
                        }
                        gsuite_gpu::InstrClass::Int => {
                            mix.int += 1;
                            warp_latency += 1;
                        }
                        gsuite_gpu::InstrClass::Sfu => {
                            mix.other += 1;
                            warp_latency += 2;
                        }
                        gsuite_gpu::InstrClass::Control | gsuite_gpu::InstrClass::Sync => {
                            mix.control += 1;
                            warp_latency += cfg.ifetch_latency;
                        }
                        gsuite_gpu::InstrClass::LoadGlobal
                        | gsuite_gpu::InstrClass::StoreGlobal
                        | gsuite_gpu::InstrClass::AtomicGlobal => {
                            mix.load_store += 1;
                            ldst_instrs += 1;
                            let mem = trace
                                .resolve(instr.mem)
                                .expect("memory instr has addresses");
                            sectors.clear();
                            mem.sectors_into(&mut sectors);
                            l2_sectors += sectors.len() as u64;
                            let is_store = instr.class != gsuite_gpu::InstrClass::LoadGlobal;
                            let mut worst = cfg.l1_latency;
                            for &sector in sectors.iter() {
                                let l1_hit = !is_store && l1s[sm].access(sector);
                                if l1_hit {
                                    continue;
                                }
                                // 64B fill granularity: adjacent sector pair.
                                let line = sector / 2;
                                l2_accesses += 1;
                                if l2.access(line) {
                                    l2_hits += 1;
                                    worst = worst.max(cfg.l1_latency + cfg.l2_latency);
                                } else {
                                    dram_sectors += 2; // 64B fill
                                    worst = worst
                                        .max(cfg.l1_latency + cfg.l2_latency + cfg.dram_latency);
                                }
                            }
                            // Assume ~4 overlapping loads hide latency.
                            warp_latency += worst / 4;
                        }
                    }
                }
                critical_path = critical_path.max(warp_latency);
            }
        }

        // Scale sampled counters to the full grid.
        let scale_u = |v: u64| (v as f64 * scale).round() as u64;
        mix = InstrMix {
            fp32: scale_u(mix.fp32),
            int: scale_u(mix.int),
            load_store: scale_u(mix.load_store),
            control: scale_u(mix.control),
            other: scale_u(mix.other),
        };
        let l1: CacheStats = {
            let mut s = CacheStats::default();
            for c in &l1s {
                s.accesses += c.accesses();
                s.hits += c.hits();
            }
            CacheStats {
                accesses: scale_u(s.accesses),
                hits: scale_u(s.hits),
            }
        };
        let l2_stats = CacheStats {
            accesses: scale_u(l2_accesses),
            hits: scale_u(l2_hits),
        };
        let dram_sectors = scale_u(dram_sectors);
        let l2_sectors = scale_u(l2_sectors);
        let ldst_instrs = scale_u(ldst_instrs);

        // Roofline time in cycles.
        let sms = cfg.num_sms as f64;
        let issue_cycles = mix.total() as f64 / cfg.peak_issue_per_cycle();
        let fp32_cycles = mix.fp32 as f64 / (cfg.fp32_rate * sms);
        let int_cycles = mix.int as f64 / (cfg.int_rate * sms);
        let ldst_cycles = ldst_instrs as f64 / (cfg.ldst_rate * sms);
        let l2_cycles = l2_sectors as f64 / cfg.l2_sectors_per_cycle;
        let dram_cycles = dram_sectors as f64 / cfg.dram_sectors_per_cycle;
        // How many concurrent "waves" of warps the machine needs.
        let resident_warps = (cfg.num_sms * cfg.warps_per_sm) as u64;
        let waves = Grid::total_warps(&grid).div_ceil(resident_warps).max(1);
        let latency_cycles = (critical_path * waves) as f64;
        let busy_cycles = issue_cycles
            .max(fp32_cycles)
            .max(int_cycles)
            .max(ldst_cycles)
            .max(l2_cycles)
            .max(dram_cycles)
            .max(latency_cycles);
        let time_ms = cfg.cycles_to_ms(busy_cycles.ceil() as u64) + self.launch_overhead_us / 1e3;

        let compute_cycles = fp32_cycles.max(int_cycles);
        KernelStats {
            kernel: workload.name(),
            backend: Backend::HwProfiler,
            time_ms,
            instr_mix: mix,
            stalls: None,
            occupancy: None,
            l1,
            l2: l2_stats,
            dram_bytes: dram_sectors * 32,
            compute_utilization: (compute_cycles / busy_cycles.max(1.0)).min(1.0),
            memory_utilization: (dram_cycles / busy_cycles.max(1.0)).min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsuite_gpu::testkit::{ComputeWorkload, GatherWorkload, StreamWorkload};

    #[test]
    fn counts_instructions_exactly_without_sampling() {
        let w = ComputeWorkload::new(8, 2, 50, 0);
        let stats = HwProfiler::v100().profile(&w);
        assert_eq!(stats.instr_mix.fp32, 8 * 2 * 50);
        assert_eq!(stats.instr_mix.control, 8 * 2);
        assert_eq!(stats.backend, Backend::HwProfiler);
        assert!(stats.stalls.is_none(), "nvprof cannot see stall reasons");
    }

    #[test]
    fn sampling_scales_counters() {
        let full = ComputeWorkload::new(64, 1, 10, 0);
        let stats = HwProfiler::v100().max_ctas(16).profile(&full);
        // 64 CTAs sampled at 16 -> counts scaled by 4.
        assert_eq!(stats.instr_mix.fp32, 64 * 10);
    }

    #[test]
    fn compute_bound_vs_memory_bound() {
        let c = HwProfiler::v100().profile(&ComputeWorkload::new(256, 4, 400, 0));
        let m = HwProfiler::v100().profile(&StreamWorkload::new(256, 4, 16 * 1024));
        assert!(c.compute_utilization > c.memory_utilization);
        assert!(m.memory_utilization > m.compute_utilization);
    }

    #[test]
    fn launch_overhead_is_a_floor() {
        let w = ComputeWorkload::new(1, 1, 1, 0);
        let stats = HwProfiler::v100().launch_overhead_us(50.0).profile(&w);
        assert!(stats.time_ms >= 0.05);
    }

    #[test]
    fn random_gathers_miss_more_than_streams() {
        let g = HwProfiler::v100().profile(&GatherWorkload::new(64, 4, 16, 64 * 1024 * 1024, 1));
        let s = HwProfiler::v100().profile(&StreamWorkload::new(64, 4, 8 * 1024));
        assert!(g.l1.hit_rate() < 0.5);
        assert!(g.l1.hit_rate() < s.l1.hit_rate() + 0.5);
        assert!(g.dram_bytes > 0);
    }

    #[test]
    fn more_work_more_time() {
        let small = HwProfiler::v100().profile(&ComputeWorkload::new(16, 2, 64, 0));
        let big = HwProfiler::v100().profile(&ComputeWorkload::new(16, 2, 6400, 0));
        assert!(big.time_ms > small.time_ms);
    }
}
