//! # gsuite-profile
//!
//! The profiling layer of gSuite-rs: a uniform per-kernel metric record
//! ([`KernelStats`]), two interchangeable measurement backends, and report
//! helpers (aligned text tables, CSV).
//!
//! The paper measures every kernel twice — once with NVIDIA's `nvprof` on a
//! real V100 and once with the GPGPU-Sim cycle-level simulator — and Fig. 8
//! explicitly compares the two. This crate reproduces that methodology with
//! two backends over the same [`gsuite_gpu::KernelWorkload`]s:
//!
//! * [`HwProfiler`] — the `nvprof` stand-in: a fast single-pass analytical
//!   model of a *full-size* V100 (roofline timing, silicon-flavoured cache
//!   hierarchy with 64-byte fill granularity);
//! * [`SimProfiler`] — the GPGPU-Sim stand-in: wraps the cycle-level
//!   simulator and converts its statistics.
//!
//! The two models deliberately differ in their L2 behaviour (fill
//! granularity, effective capacity), which reproduces the paper's
//! observation that profiler and simulator agree on L1 but diverge on L2,
//! most visibly for small workloads.
//!
//! # Example
//!
//! ```
//! use gsuite_gpu::testkit::StreamWorkload;
//! use gsuite_profile::{HwProfiler, Profiler, SimProfiler};
//!
//! let kernel = StreamWorkload::new(16, 4, 1024);
//! let hw = HwProfiler::v100().profile(&kernel);
//! let sim = SimProfiler::scaled(4).profile(&kernel);
//! assert!(hw.time_ms > 0.0 && sim.time_ms > 0.0);
//! assert_eq!(hw.kernel, sim.kernel);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analytical;
mod interconnect;
mod report;
mod simbackend;
mod stats;

pub use analytical::HwProfiler;
pub use interconnect::Interconnect;
pub use report::{write_csv, TextTable};
pub use simbackend::SimProfiler;
pub use stats::{Backend, KernelStats, PipelineProfile, ShardStats, ShardingProfile};

use gsuite_gpu::KernelWorkload;

/// A measurement backend: takes a kernel workload, returns its metrics.
///
/// `profile` takes `&self` and both shipped backends ([`HwProfiler`],
/// [`SimProfiler`]) are stateless per call, so a single backend instance
/// can serve concurrent launches — the contract
/// `gsuite_core::pipeline::PipelineRun::profile_par` relies on (it requires
/// `Profiler + Sync`).
pub trait Profiler {
    /// Short backend label used in reports (e.g. `"nvprof-hw"`).
    fn backend(&self) -> Backend;

    /// Measures one kernel launch.
    fn profile(&self, workload: &dyn KernelWorkload) -> KernelStats;
}
