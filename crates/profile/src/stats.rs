//! The unified per-kernel metric record shared by both backends.

use serde::{Deserialize, Serialize};

use gsuite_gpu::{CacheStats, InstrMix, OccupancyBuckets, SimStats, StallBreakdown};

/// Which measurement backend produced a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// The analytical hardware model (the `nvprof` stand-in).
    HwProfiler,
    /// The cycle-level simulator (the GPGPU-Sim stand-in).
    CycleSim,
}

impl Backend {
    /// Label used in figures, mirroring the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Backend::HwProfiler => "NVProf",
            Backend::CycleSim => "Sim",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Metrics of one kernel launch, as reported by either backend.
///
/// Cycle-only metrics (stall distribution, occupancy buckets) are `None`
/// for the hardware profiler, just as `nvprof` cannot observe them directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Kernel name (e.g. `"indexSelect"`).
    pub kernel: String,
    /// Producing backend.
    pub backend: Backend,
    /// Estimated wall time of the launch in milliseconds.
    pub time_ms: f64,
    /// Issued-instruction mix.
    pub instr_mix: InstrMix,
    /// Warp-cycle stall distribution (cycle simulator only).
    pub stalls: Option<StallBreakdown>,
    /// Scheduler occupancy buckets (cycle simulator only).
    pub occupancy: Option<OccupancyBuckets>,
    /// L1D counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: u64,
    /// Fraction of issue bandwidth spent on compute, `[0, 1]`.
    pub compute_utilization: f64,
    /// Fraction of DRAM bandwidth consumed, `[0, 1]`.
    pub memory_utilization: f64,
}

impl KernelStats {
    /// Converts cycle-simulator output into the unified record.
    pub fn from_sim(stats: SimStats) -> Self {
        KernelStats {
            kernel: stats.kernel,
            backend: Backend::CycleSim,
            time_ms: stats.time_ms,
            instr_mix: stats.instr_mix,
            stalls: Some(stats.stalls),
            occupancy: Some(stats.occupancy),
            l1: stats.l1,
            l2: stats.l2,
            dram_bytes: stats.dram_bytes,
            compute_utilization: stats.compute_utilization,
            memory_utilization: stats.memory_utilization,
        }
    }
}

/// Per-shard execution summary of a sharded (multi-GPU) run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Modeled device index executing this shard.
    pub device: usize,
    /// Nodes this shard owns.
    pub owned_nodes: u64,
    /// Halo (ghost) nodes replicated onto this shard.
    pub halo_nodes: u64,
    /// Summed kernel time of this shard's launches (exchanges excluded),
    /// in milliseconds.
    pub kernel_ms: f64,
    /// Summed halo-transfer time into this shard (interconnect-priced),
    /// in milliseconds.
    pub exchange_ms: f64,
    /// Halo feature bytes received per inference (all layers).
    pub halo_in_bytes: u64,
    /// Peak device bytes of this shard's memory schedule.
    pub peak_device_bytes: u64,
}

impl ShardStats {
    /// The shard's modeled wall time: kernels plus incoming transfers.
    pub fn device_time_ms(&self) -> f64 {
        self.kernel_ms + self.exchange_ms
    }
}

/// The multi-GPU summary of a sharded run, attached to
/// [`PipelineProfile::sharding`] when a pipeline executed over more than
/// one modeled device.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardingProfile {
    /// Partitioner strategy name (`"hash"`, `"range"`, `"edgecut"`).
    pub strategy: String,
    /// Edges whose endpoints live on different shards.
    pub cut_edges: u64,
    /// Total edges of the partitioned graph.
    pub total_edges: u64,
    /// Per-shard records, in shard order.
    pub shards: Vec<ShardStats>,
}

impl ShardingProfile {
    /// Fraction of edges cut by the partition, in `[0, 1]`.
    pub fn edge_cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }

    /// Total halo bytes transferred per inference (all shards, all layers).
    pub fn halo_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.halo_in_bytes).sum()
    }

    /// The bulk-synchronous makespan: the slowest shard's kernels plus
    /// transfers (shards execute concurrently, one per device).
    pub fn makespan_ms(&self) -> f64 {
        self.shards
            .iter()
            .map(ShardStats::device_time_ms)
            .fold(0.0, f64::max)
    }

    /// Largest per-shard peak-device-bytes footprint — the memory a
    /// single device must actually provision.
    pub fn max_shard_peak_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.peak_device_bytes)
            .max()
            .unwrap_or(0)
    }
}

/// A profiled pipeline: one record per kernel launch, in launch order, plus
/// host-side overhead (framework initialization, launch gaps).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineProfile {
    /// Pipeline label (e.g. `"gSuite-MP GCN on Cora"`).
    pub label: String,
    /// Host-side overhead in milliseconds (framework init, dispatch).
    pub host_overhead_ms: f64,
    /// Peak simultaneously-live device bytes of the pipeline's memory
    /// schedule (the bump-arena size at O0; the memory planner's
    /// high-water mark at O2). For sharded runs this is the largest
    /// single-device peak (see [`PipelineProfile::sharding`]).
    pub peak_device_bytes: u64,
    /// Multi-GPU summary — `Some` only for sharded runs, where
    /// [`PipelineProfile::kernels`] concatenates every shard's launches
    /// and this field carries the per-shard split, the edge cut and the
    /// halo traffic.
    pub sharding: Option<ShardingProfile>,
    /// Per-launch kernel records in execution order.
    pub kernels: Vec<KernelStats>,
}

impl PipelineProfile {
    /// A profile with the given label and no measurements yet.
    pub fn new(label: impl Into<String>) -> Self {
        PipelineProfile {
            label: label.into(),
            host_overhead_ms: 0.0,
            peak_device_bytes: 0,
            sharding: None,
            kernels: Vec::new(),
        }
    }

    /// Total device time (sum over kernel launches) in milliseconds. For
    /// sharded runs this sums *every* shard's launches — the total work,
    /// not the wall time; see [`PipelineProfile::parallel_time_ms`].
    pub fn device_time_ms(&self) -> f64 {
        self.kernels.iter().map(|k| k.time_ms).sum()
    }

    /// The modeled device-side wall time: equal to
    /// [`PipelineProfile::device_time_ms`] for single-device runs, the
    /// bulk-synchronous makespan (slowest shard, kernels + halo
    /// transfers) for sharded runs.
    pub fn parallel_time_ms(&self) -> f64 {
        match &self.sharding {
            Some(s) => s.makespan_ms(),
            None => self.device_time_ms(),
        }
    }

    /// End-to-end time: host overhead plus device time, in milliseconds.
    /// Sharded runs charge the parallel makespan, not the summed work.
    pub fn total_time_ms(&self) -> f64 {
        self.host_overhead_ms + self.parallel_time_ms()
    }

    /// Fraction of device time spent in each distinct kernel name, sorted
    /// descending — the paper's Fig. 4 breakdown.
    pub fn kernel_time_shares(&self) -> Vec<(String, f64)> {
        let total = self.device_time_ms();
        let mut shares: Vec<(String, f64)> = Vec::new();
        for k in &self.kernels {
            match shares.iter_mut().find(|(name, _)| *name == k.kernel) {
                Some((_, t)) => *t += k.time_ms,
                None => shares.push((k.kernel.clone(), k.time_ms)),
            }
        }
        if total > 0.0 {
            for (_, t) in &mut shares {
                *t /= total;
            }
        }
        shares.sort_by(|a, b| b.1.total_cmp(&a.1));
        shares
    }

    /// Merges per-kernel records with the same kernel name (summing counts
    /// and times), useful for per-kernel metric figures.
    pub fn merged_by_kernel(&self) -> Vec<KernelStats> {
        let mut merged: Vec<KernelStats> = Vec::new();
        for k in &self.kernels {
            match merged.iter_mut().find(|m| m.kernel == k.kernel) {
                None => merged.push(k.clone()),
                Some(m) => {
                    m.time_ms += k.time_ms;
                    m.instr_mix.merge(&k.instr_mix);
                    m.l1.merge(&k.l1);
                    m.l2.merge(&k.l2);
                    m.dram_bytes += k.dram_bytes;
                    // Time-weighted utilizations.
                    let w_new = k.time_ms / m.time_ms.max(f64::MIN_POSITIVE);
                    m.compute_utilization =
                        m.compute_utilization * (1.0 - w_new) + k.compute_utilization * w_new;
                    m.memory_utilization =
                        m.memory_utilization * (1.0 - w_new) + k.memory_utilization * w_new;
                    match (&mut m.stalls, &k.stalls) {
                        (Some(a), Some(b)) => a.merge(b),
                        (a @ None, Some(b)) => *a = Some(*b),
                        _ => {}
                    }
                    match (&mut m.occupancy, &k.occupancy) {
                        (Some(a), Some(b)) => a.merge(b),
                        (a @ None, Some(b)) => *a = Some(*b),
                        _ => {}
                    }
                }
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(kernel: &str, time_ms: f64) -> KernelStats {
        KernelStats {
            kernel: kernel.to_string(),
            backend: Backend::CycleSim,
            time_ms,
            instr_mix: InstrMix {
                fp32: 10,
                ..InstrMix::default()
            },
            stalls: None,
            occupancy: None,
            l1: CacheStats {
                accesses: 100,
                hits: 50,
            },
            l2: CacheStats::default(),
            dram_bytes: 320,
            compute_utilization: 0.5,
            memory_utilization: 0.25,
        }
    }

    #[test]
    fn pipeline_times_add_up() {
        let mut p = PipelineProfile::new("test");
        p.host_overhead_ms = 1.0;
        p.kernels.push(stats("a", 2.0));
        p.kernels.push(stats("b", 3.0));
        assert!((p.device_time_ms() - 5.0).abs() < 1e-12);
        assert!((p.total_time_ms() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_time_shares_sum_to_one() {
        let mut p = PipelineProfile::new("test");
        p.kernels.push(stats("a", 1.0));
        p.kernels.push(stats("b", 3.0));
        p.kernels.push(stats("a", 1.0));
        let shares = p.kernel_time_shares();
        let total: f64 = shares.iter().map(|&(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(shares[0].0, "b");
        assert!((shares[0].1 - 0.6).abs() < 1e-12);
    }

    #[test]
    fn merged_by_kernel_sums_counters() {
        let mut p = PipelineProfile::new("test");
        p.kernels.push(stats("a", 2.0));
        p.kernels.push(stats("a", 2.0));
        p.kernels.push(stats("b", 1.0));
        let merged = p.merged_by_kernel();
        assert_eq!(merged.len(), 2);
        let a = merged.iter().find(|k| k.kernel == "a").unwrap();
        assert_eq!(a.instr_mix.fp32, 20);
        assert_eq!(a.l1.accesses, 200);
        assert!((a.time_ms - 4.0).abs() < 1e-12);
    }

    #[test]
    fn backend_labels() {
        assert_eq!(Backend::HwProfiler.label(), "NVProf");
        assert_eq!(Backend::CycleSim.to_string(), "Sim");
    }
}
