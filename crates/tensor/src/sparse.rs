use serde::{Deserialize, Serialize};

use crate::{DenseMatrix, Result, TensorError};

/// A `(row, col, value)` coordinate entry of a sparse matrix.
pub type Triplet = (usize, usize, f32);

/// Sparse matrix in coordinate (COO) format.
///
/// COO is the edge-list format used by message-passing frameworks (the paper
/// calls it `edgeIndex`); entry `k` says `value[k]` sits at
/// `(row_indices[k], col_indices[k])`.
///
/// Invariants enforced at construction:
/// * all indices in bounds,
/// * entries sorted by `(row, col)`,
/// * no duplicate coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    row_indices: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<f32>,
}

impl CooMatrix {
    /// Builds a COO matrix from triplets, sorting and validating them.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for out-of-range coordinates
    /// and [`TensorError::InvalidSparseStructure`] for duplicates.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[Triplet]) -> Result<Self> {
        let mut entries: Vec<Triplet> = triplets.to_vec();
        entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut row_indices = Vec::with_capacity(entries.len());
        let mut col_indices = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in entries {
            if r >= rows {
                return Err(TensorError::IndexOutOfBounds {
                    op: "CooMatrix::from_triplets(row)",
                    index: r,
                    bound: rows,
                });
            }
            if c >= cols {
                return Err(TensorError::IndexOutOfBounds {
                    op: "CooMatrix::from_triplets(col)",
                    index: c,
                    bound: cols,
                });
            }
            if last == Some((r, c)) {
                return Err(TensorError::InvalidSparseStructure {
                    reason: format!("duplicate coordinate ({r}, {c})"),
                });
            }
            last = Some((r, c));
            row_indices.push(r as u32);
            col_indices.push(c as u32);
            values.push(v);
        }
        Ok(CooMatrix {
            rows,
            cols,
            row_indices,
            col_indices,
            values,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row index of every entry, sorted ascending.
    pub fn row_indices(&self) -> &[u32] {
        &self.row_indices
    }

    /// Column index of every entry.
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// Stored values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterator over `(row, col, value)` triplets in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = Triplet> + '_ {
        self.row_indices
            .iter()
            .zip(&self.col_indices)
            .zip(&self.values)
            .map(|((&r, &c), &v)| (r as usize, c as usize, v))
    }

    /// Converts to CSR format.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut row_ptr = vec![0u32; self.rows + 1];
        for &r in &self.row_indices {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_indices: self.col_indices.clone(),
            values: self.values.clone(),
        }
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, v);
        }
        out
    }
}

/// Sparse matrix in compressed sparse row (CSR) format.
///
/// CSR is the format the paper's SpMM kernels consume: `row_ptr` has
/// `rows + 1` monotone entries, and row `r` owns the half-open slice
/// `col_indices[row_ptr[r]..row_ptr[r+1]]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidSparseStructure`] if `row_ptr` is not
    /// monotone, its length is wrong, columns are unsorted/duplicated within
    /// a row, or array lengths disagree; [`TensorError::IndexOutOfBounds`]
    /// for out-of-range column indices.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        row_ptr: Vec<u32>,
        col_indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if row_ptr.len() != rows + 1 {
            return Err(TensorError::InvalidSparseStructure {
                reason: format!(
                    "row_ptr has {} entries, expected {}",
                    row_ptr.len(),
                    rows + 1
                ),
            });
        }
        if row_ptr[0] != 0 {
            return Err(TensorError::InvalidSparseStructure {
                reason: "row_ptr[0] must be 0".to_string(),
            });
        }
        if col_indices.len() != values.len() {
            return Err(TensorError::InvalidSparseStructure {
                reason: format!(
                    "col_indices ({}) and values ({}) lengths differ",
                    col_indices.len(),
                    values.len()
                ),
            });
        }
        if *row_ptr.last().unwrap() as usize != col_indices.len() {
            return Err(TensorError::InvalidSparseStructure {
                reason: format!(
                    "row_ptr last entry {} does not match nnz {}",
                    row_ptr.last().unwrap(),
                    col_indices.len()
                ),
            });
        }
        for w in row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err(TensorError::InvalidSparseStructure {
                    reason: "row_ptr must be monotone non-decreasing".to_string(),
                });
            }
        }
        for r in 0..rows {
            let s = row_ptr[r] as usize;
            let e = row_ptr[r + 1] as usize;
            let row_cols = &col_indices[s..e];
            for w in row_cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(TensorError::InvalidSparseStructure {
                        reason: format!("row {r} columns not strictly increasing"),
                    });
                }
            }
            if let Some(&max) = row_cols.last() {
                if max as usize >= cols {
                    return Err(TensorError::IndexOutOfBounds {
                        op: "CsrMatrix::from_parts(col)",
                        index: max as usize,
                        bound: cols,
                    });
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_indices,
            values,
        })
    }

    /// Convenience constructor from triplets (goes through COO).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CooMatrix::from_triplets`].
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[Triplet]) -> Result<Self> {
        Ok(CooMatrix::from_triplets(rows, cols, triplets)?.to_csr())
    }

    /// An empty (all-zero) `rows x cols` CSR matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n x n` identity in CSR form.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n as u32).collect(),
            col_indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a diagonal matrix from per-row values.
    pub fn from_diagonal(diag: &[f32]) -> Self {
        let n = diag.len();
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n as u32).collect(),
            col_indices: (0..n as u32).collect(),
            values: diag.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row-pointer array (`rows + 1` entries).
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Column indices, row by row, strictly increasing within each row.
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// Stored values aligned with [`Self::col_indices`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Number of stored entries in row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// The `(col_indices, values)` slices of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let s = self.row_ptr[r] as usize;
        let e = self.row_ptr[r + 1] as usize;
        (&self.col_indices[s..e], &self.values[s..e])
    }

    /// Value at `(row, col)`, or `0.0` when the entry is structurally zero.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        let (cols, vals) = self.row(row);
        match cols.binary_search(&(col as u32)) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// Iterator over `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Triplet> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Converts to COO format.
    pub fn to_coo(&self) -> CooMatrix {
        let mut row_indices = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            row_indices.extend(std::iter::repeat_n(r as u32, self.row_nnz(r)));
        }
        CooMatrix {
            rows: self.rows,
            cols: self.cols,
            row_indices,
            col_indices: self.col_indices.clone(),
            values: self.values.clone(),
        }
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, v);
        }
        out
    }

    /// Returns the transpose (a CSR matrix of shape `cols x rows`).
    ///
    /// Since the transpose of CSR is CSC of the original, this is also how
    /// callers obtain a CSC view of the matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0u32; self.cols + 1];
        for &c in &self.col_indices {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        let mut next = row_ptr.clone();
        for (r, c, v) in self.iter() {
            let slot = next[c] as usize;
            col_indices[slot] = r as u32;
            values[slot] = v;
            next[c] += 1;
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_indices,
            values,
        }
    }

    /// Applies `f` to every stored value, returning a new matrix with the
    /// same sparsity pattern.
    pub fn map_values(&self, f: impl Fn(f32) -> f32) -> CsrMatrix {
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr: self.row_ptr.clone(),
            col_indices: self.col_indices.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Row sums (out-degree weights for adjacency matrices).
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.rows).map(|r| self.row(r).1.iter().sum()).collect()
    }
}

impl From<&CooMatrix> for CsrMatrix {
    fn from(coo: &CooMatrix) -> Self {
        coo.to_csr()
    }
}

impl From<&CsrMatrix> for CooMatrix {
    fn from(csr: &CsrMatrix) -> Self {
        csr.to_coo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_triplets() -> Vec<Triplet> {
        vec![(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0), (2, 2, 4.0)]
    }

    #[test]
    fn coo_sorts_and_counts() {
        let coo = CooMatrix::from_triplets(3, 3, &[(2, 2, 4.0), (0, 1, 1.0), (1, 0, 2.0)]).unwrap();
        assert_eq!(coo.nnz(), 3);
        let rows: Vec<usize> = coo.iter().map(|(r, _, _)| r).collect();
        assert_eq!(rows, vec![0, 1, 2]);
    }

    #[test]
    fn coo_rejects_out_of_bounds() {
        let err = CooMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, TensorError::IndexOutOfBounds { .. }));
        let err = CooMatrix::from_triplets(2, 2, &[(0, 5, 1.0)]).unwrap_err();
        assert!(matches!(err, TensorError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn coo_rejects_duplicates() {
        let err = CooMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0)]).unwrap_err();
        assert!(matches!(err, TensorError::InvalidSparseStructure { .. }));
    }

    #[test]
    fn coo_to_csr_to_coo_roundtrip() {
        let coo = CooMatrix::from_triplets(3, 3, &sample_triplets()).unwrap();
        let back = coo.to_csr().to_coo();
        assert_eq!(coo, back);
    }

    #[test]
    fn csr_row_access() {
        let csr = CsrMatrix::from_triplets(3, 3, &sample_triplets()).unwrap();
        assert_eq!(csr.row_nnz(1), 2);
        let (cols, vals) = csr.row(1);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[2.0, 3.0]);
        assert_eq!(csr.get(1, 2), 3.0);
        assert_eq!(csr.get(1, 1), 0.0);
    }

    #[test]
    fn csr_from_parts_validates() {
        // row_ptr wrong length
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // non-monotone row_ptr
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // col out of bounds
        assert!(CsrMatrix::from_parts(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
        // duplicate col within row
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
        // unsorted col within row
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]).is_err());
        // nnz mismatch with last row_ptr
        assert!(CsrMatrix::from_parts(1, 3, vec![0, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // ok
        assert!(CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn csr_identity() {
        let i = CsrMatrix::identity(3);
        assert_eq!(i.nnz(), 3);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        assert_eq!(i.to_dense(), DenseMatrix::identity(3));
    }

    #[test]
    fn csr_transpose_matches_dense() {
        let csr = CsrMatrix::from_triplets(3, 4, &[(0, 3, 1.0), (1, 0, 2.0), (2, 1, 3.0)]).unwrap();
        let t = csr.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.to_dense(), csr.to_dense().transpose());
    }

    #[test]
    fn csr_transpose_involution() {
        let csr = CsrMatrix::from_triplets(3, 3, &sample_triplets()).unwrap();
        assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn dense_roundtrip() {
        let csr = CsrMatrix::from_triplets(3, 3, &sample_triplets()).unwrap();
        let dense = csr.to_dense();
        assert_eq!(dense.get(1, 2), 3.0);
        assert_eq!(dense.get(0, 0), 0.0);
    }

    #[test]
    fn diag_and_row_sums() {
        let d = CsrMatrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.row_sums(), vec![1.0, 2.0, 3.0]);
        assert_eq!(d.get(2, 2), 3.0);
    }

    #[test]
    fn map_values_preserves_pattern() {
        let csr = CsrMatrix::from_triplets(3, 3, &sample_triplets()).unwrap();
        let doubled = csr.map_values(|v| v * 2.0);
        assert_eq!(doubled.nnz(), csr.nnz());
        assert_eq!(doubled.get(2, 2), 8.0);
        assert_eq!(doubled.col_indices(), csr.col_indices());
    }

    #[test]
    fn empty_matrix() {
        let e = CsrMatrix::empty(4, 5);
        assert_eq!(e.nnz(), 0);
        assert_eq!(e.rows(), 4);
        assert_eq!(e.row_nnz(3), 0);
    }
}
