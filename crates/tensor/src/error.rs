use std::error::Error;
use std::fmt;

/// Error type for all fallible operations in `gsuite-tensor`.
///
/// Every variant names the operation that failed and the offending
/// dimensions/indices, so callers can report actionable messages without
/// carrying extra context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Operation name, e.g. `"gemm"`.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A buffer length did not match the shape it was supposed to fill.
    LengthMismatch {
        /// Operation name.
        op: &'static str,
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// An index was out of bounds for the matrix it addressed.
    IndexOutOfBounds {
        /// Operation name.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound the index had to respect.
        bound: usize,
    },
    /// Sparse constructor input violated a structural invariant
    /// (unsorted or duplicate coordinates, row pointer not monotone, ...).
    InvalidSparseStructure {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// The operation requires a non-empty matrix but got an empty one.
    Empty {
        /// Operation name.
        op: &'static str,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            TensorError::LengthMismatch {
                op,
                expected,
                actual,
            } => write!(
                f,
                "length mismatch in {op}: expected {expected} elements, got {actual}"
            ),
            TensorError::IndexOutOfBounds { op, index, bound } => {
                write!(f, "index {index} out of bounds (< {bound}) in {op}")
            }
            TensorError::InvalidSparseStructure { reason } => {
                write!(f, "invalid sparse structure: {reason}")
            }
            TensorError::Empty { op } => write!(f, "operation {op} requires a non-empty matrix"),
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            op: "gemm",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let msg = err.to_string();
        assert!(msg.contains("gemm"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
