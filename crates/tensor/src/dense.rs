use serde::{Deserialize, Serialize};

use crate::{Result, TensorError};

/// A row-major dense `f32` matrix.
///
/// This is the feature-matrix type used throughout gSuite-rs: node embeddings
/// `X` of shape `[|V|, f]`, layer weights `W` of shape `[f, h]`, and all
/// intermediate pipeline buffers.
///
/// The storage layout is guaranteed row-major and contiguous; GPU workloads
/// in `gsuite-core` rely on this to compute per-lane byte addresses.
///
/// # Example
///
/// ```
/// use gsuite_tensor::DenseMatrix;
///
/// # fn main() -> Result<(), gsuite_tensor::TensorError> {
/// let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.get(1, 0), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix with every element set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                op: "DenseMatrix::from_vec",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the rows have differing
    /// lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self> {
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for row in rows {
            if row.len() != ncols {
                return Err(TensorError::LengthMismatch {
                    op: "DenseMatrix::from_rows",
                    expected: ncols,
                    actual: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix by calling `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()` or `col >= cols()`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()` or `col >= cols()`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrow of row `row` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable borrow of row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= rows()`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row index out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// The full row-major backing buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Elementwise product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn hadamard(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(other, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &DenseMatrix,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<DenseMatrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place accumulation `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &DenseMatrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add_assign",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Multiplies every element by `scalar`, returning a new matrix.
    pub fn scale(&self, scalar: f32) -> DenseMatrix {
        let data = self.data.iter().map(|&v| v * scalar).collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place scaling of every element.
    pub fn scale_mut(&mut self, scalar: f32) {
        for v in &mut self.data {
            *v *= scalar;
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> DenseMatrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Rectified linear unit: `max(x, 0)` elementwise (paper's Θ choice).
    pub fn relu(&self) -> DenseMatrix {
        self.map(|v| v.max(0.0))
    }

    /// Logistic sigmoid elementwise (the paper's alternative Θ).
    pub fn sigmoid(&self) -> DenseMatrix {
        self.map(|v| 1.0 / (1.0 + (-v).exp()))
    }

    /// Sum of all elements (useful as a cheap checksum in tests/benches).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum absolute elementwise difference to `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Result<f32> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// `true` when every element differs from `other` by at most `tol`.
    ///
    /// Shapes must match; mismatched shapes return `false` rather than an
    /// error so the method can be used directly in assertions.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f32) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other).is_ok_and(|d| d <= tol)
    }
}

impl Default for DenseMatrix {
    fn default() -> Self {
        DenseMatrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        let err = DenseMatrix::from_vec(2, 2, vec![1.0; 5]).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { .. }));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(2, 3);
        m.set(1, 2, 7.5);
        assert_eq!(m.get(1, 2), 7.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i = DenseMatrix::identity(4);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let m = DenseMatrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_indices() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.get(0, 1), 4.0);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = DenseMatrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let b = DenseMatrix::filled(2, 2, 3.0);
        let sum = a.add(&b).unwrap();
        let back = sum.sub(&b).unwrap();
        assert!(back.approx_eq(&a, 1e-6));
    }

    #[test]
    fn add_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.add(&b).unwrap_err(),
            TensorError::ShapeMismatch { op: "add", .. }
        ));
    }

    #[test]
    fn relu_clamps_negatives() {
        let m = DenseMatrix::from_rows(&[&[-1.0, 0.5], &[2.0, -3.0]]).unwrap();
        let r = m.relu();
        assert_eq!(r.as_slice(), &[0.0, 0.5, 2.0, 0.0]);
    }

    #[test]
    fn sigmoid_bounds() {
        let m = DenseMatrix::from_rows(&[&[-100.0, 0.0, 100.0]]).unwrap();
        let s = m.sigmoid();
        assert!(s.get(0, 0) < 1e-6);
        assert!((s.get(0, 1) - 0.5).abs() < 1e-6);
        assert!(s.get(0, 2) > 1.0 - 1e-6);
    }

    #[test]
    fn scale_and_sum() {
        let m = DenseMatrix::filled(2, 2, 2.0);
        assert_eq!(m.scale(1.5).sum(), 12.0);
        assert_eq!(m.sum(), 8.0);
    }

    #[test]
    fn hadamard_elementwise() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[3.0, 8.0]);
    }

    #[test]
    fn rows_iterator_yields_all_rows() {
        let m = DenseMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[4.0, 5.0]);
    }

    #[test]
    fn approx_eq_respects_tolerance() {
        let a = DenseMatrix::filled(1, 1, 1.0);
        let b = DenseMatrix::filled(1, 1, 1.05);
        assert!(a.approx_eq(&b, 0.1));
        assert!(!a.approx_eq(&b, 0.01));
        let c = DenseMatrix::filled(2, 1, 1.0);
        assert!(!a.approx_eq(&c, 10.0), "shape mismatch is never equal");
    }

    #[test]
    fn frobenius_norm_matches_manual() {
        let m = DenseMatrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-9);
    }
}
