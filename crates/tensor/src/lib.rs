//! # gsuite-tensor
//!
//! Dense and sparse matrix substrate for [gSuite-rs](https://arxiv.org/abs/2210.11601),
//! a framework-independent GNN inference benchmark suite.
//!
//! The paper builds its core kernels (`indexSelect`, `scatter`, `sgemm`,
//! `SpGEMM`/`SpMM`) directly on vendor libraries; this crate plays the role
//! of those vendor libraries on the host side. It provides:
//!
//! * [`DenseMatrix`] — row-major `f32` matrices with elementwise ops,
//!   activations and reductions;
//! * [`CooMatrix`] / [`CsrMatrix`] — sparse matrices in coordinate and
//!   compressed-sparse-row form, with validated invariants and conversions;
//! * [`ops`] — the reference math used by the functional side of every core
//!   kernel: tiled GEMM, SpMM (CSR×dense), SpGEMM (CSR×CSR) and the row
//!   gather/scatter primitives underlying message passing.
//!
//! Everything here is deterministic, pure CPU math: the *timing* behaviour of
//! these operations on a GPU is modeled separately by `gsuite-gpu`.
//!
//! # Example
//!
//! ```
//! use gsuite_tensor::{DenseMatrix, CsrMatrix, ops};
//!
//! # fn main() -> Result<(), gsuite_tensor::TensorError> {
//! // A tiny 2-node graph: 0 -> 1, adjacency as CSR.
//! let adj = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0f32)])?;
//! let features = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
//! // One aggregation step: A * X.
//! let aggregated = ops::spmm(&adj, &features)?;
//! assert_eq!(aggregated.row(0), &[3.0, 4.0]);
//! assert_eq!(aggregated.row(1), &[0.0, 0.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dense;
mod error;
pub mod ops;
mod sparse;

pub use dense::DenseMatrix;
pub use error::TensorError;
pub use sparse::{CooMatrix, CsrMatrix, Triplet};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
