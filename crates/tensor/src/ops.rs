//! Reference math for the gSuite core kernels.
//!
//! Each function here is the *functional* (host CPU) semantics of one of the
//! paper's Table II kernels:
//!
//! | paper kernel | reference op |
//! |---|---|
//! | `sgemm`        | [`gemm`] |
//! | `SpMM`         | [`spmm`] (CSR × dense) |
//! | `SpGEMM`       | [`spgemm`] (CSR × CSR) |
//! | `indexSelect`  | [`gather_rows`] |
//! | `scatter`      | [`scatter_rows`] with a [`Reduce`] mode |
//!
//! The timing/architectural behaviour of the same kernels on a GPU is
//! modeled in `gsuite-gpu`; correctness tests in `gsuite-core` assert that
//! pipelines built from GPU workloads compute exactly what these functions
//! compute.

use crate::{CsrMatrix, DenseMatrix, Result, TensorError};

/// Reduction mode for [`scatter_rows`], matching the aggregator functions the
/// paper lists for GNN aggregation (sum, mean, max).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum Reduce {
    /// Sum of contributions (GCN, GIN).
    #[default]
    Sum,
    /// Arithmetic mean of contributions (GraphSAGE).
    Mean,
    /// Elementwise maximum of contributions.
    Max,
}

impl Reduce {
    /// Short lowercase name (`"sum"`, `"mean"`, `"max"`).
    pub fn name(self) -> &'static str {
        match self {
            Reduce::Sum => "sum",
            Reduce::Mean => "mean",
            Reduce::Max => "max",
        }
    }
}

impl std::fmt::Display for Reduce {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Naive triple-loop matrix multiply, used as the test oracle for [`gemm`].
pub fn gemm_naive(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    check_gemm_shapes("gemm_naive", a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.get(i, p) * b.get(p, j);
            }
            out.set(i, j, acc);
        }
    }
    Ok(out)
}

/// Dense matrix multiply `A · B` (the `sgemm` kernel's semantics).
///
/// Uses a cache-blocked i-k-j loop order; identical results to
/// [`gemm_naive`] up to floating-point association order.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn gemm(a: &DenseMatrix, b: &DenseMatrix) -> Result<DenseMatrix> {
    check_gemm_shapes("gemm", a, b)?;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = DenseMatrix::zeros(m, n);
    const BLOCK: usize = 64;
    let a_buf = a.as_slice();
    let b_buf = b.as_slice();
    for ib in (0..m).step_by(BLOCK) {
        for pb in (0..k).step_by(BLOCK) {
            for i in ib..(ib + BLOCK).min(m) {
                let out_row = out.row_mut(i);
                for p in pb..(pb + BLOCK).min(k) {
                    let a_ip = a_buf[i * k + p];
                    if a_ip == 0.0 {
                        continue;
                    }
                    let b_row = &b_buf[p * n..(p + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += a_ip * bv;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Sparse × dense multiply `A · X` with `A` in CSR (the `SpMM` kernel).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `a.cols() != x.rows()`.
pub fn spmm(a: &CsrMatrix, x: &DenseMatrix) -> Result<DenseMatrix> {
    if a.cols() != x.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "spmm",
            lhs: (a.rows(), a.cols()),
            rhs: x.shape(),
        });
    }
    let f = x.cols();
    let mut out = DenseMatrix::zeros(a.rows(), f);
    for r in 0..a.rows() {
        let (cols, vals) = a.row(r);
        let out_row = out.row_mut(r);
        for (&c, &v) in cols.iter().zip(vals) {
            let x_row = x.row(c as usize);
            for (o, &xv) in out_row.iter_mut().zip(x_row) {
                *o += v * xv;
            }
        }
    }
    Ok(out)
}

/// Sparse × sparse multiply `A · B`, both CSR (the `SpGEMM` kernel).
///
/// Implemented with the classic Gustavson row-accumulator algorithm; the
/// output keeps explicit zeros out and columns sorted.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn spgemm(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op: "spgemm",
            lhs: (a.rows(), a.cols()),
            rhs: (b.rows(), b.cols()),
        });
    }
    let n = b.cols();
    let mut row_ptr = Vec::with_capacity(a.rows() + 1);
    row_ptr.push(0u32);
    let mut col_indices: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    // Dense accumulator with a "touched" list: O(flops) overall.
    let mut acc = vec![0.0f32; n];
    let mut touched: Vec<u32> = Vec::new();
    for r in 0..a.rows() {
        let (a_cols, a_vals) = a.row(r);
        for (&ac, &av) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(ac as usize);
            for (&bc, &bv) in b_cols.iter().zip(b_vals) {
                if acc[bc as usize] == 0.0 && !touched.contains(&bc) {
                    touched.push(bc);
                }
                acc[bc as usize] += av * bv;
            }
        }
        touched.sort_unstable();
        for &c in &touched {
            col_indices.push(c);
            values.push(acc[c as usize]);
            acc[c as usize] = 0.0;
        }
        touched.clear();
        row_ptr.push(col_indices.len() as u32);
    }
    CsrMatrix::from_parts(a.rows(), n, row_ptr, col_indices, values)
}

/// Gathers rows of `src` selected by `index` (the `indexSelect` kernel).
///
/// Output row `i` is `src.row(index[i])`. In message passing this expands
/// node embeddings onto edges: `index` is one endpoint column of the COO
/// `edgeIndex`.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] when any index is `>= src.rows()`.
pub fn gather_rows(src: &DenseMatrix, index: &[u32]) -> Result<DenseMatrix> {
    let f = src.cols();
    let mut out = DenseMatrix::zeros(index.len(), f);
    for (i, &idx) in index.iter().enumerate() {
        if idx as usize >= src.rows() {
            return Err(TensorError::IndexOutOfBounds {
                op: "gather_rows",
                index: idx as usize,
                bound: src.rows(),
            });
        }
        out.row_mut(i).copy_from_slice(src.row(idx as usize));
    }
    Ok(out)
}

/// Scatters rows of `src` into an output of `out_rows` rows, reducing
/// collisions with `reduce` (the `scatter` kernel).
///
/// Output row `index[i]` receives `src.row(i)`. With [`Reduce::Sum`] this is
/// exactly the message-passing aggregation step; [`Reduce::Mean`] divides by
/// the number of contributions; [`Reduce::Max`] keeps the elementwise max
/// (rows with no contribution stay zero).
///
/// # Errors
///
/// * [`TensorError::LengthMismatch`] when `index.len() != src.rows()`.
/// * [`TensorError::IndexOutOfBounds`] when any index is `>= out_rows`.
pub fn scatter_rows(
    src: &DenseMatrix,
    index: &[u32],
    out_rows: usize,
    reduce: Reduce,
) -> Result<DenseMatrix> {
    if index.len() != src.rows() {
        return Err(TensorError::LengthMismatch {
            op: "scatter_rows",
            expected: src.rows(),
            actual: index.len(),
        });
    }
    let f = src.cols();
    let mut out = DenseMatrix::zeros(out_rows, f);
    let mut counts = vec![0u32; out_rows];
    // For Max we track whether a row has been written to distinguish
    // "no contribution" (stays 0) from "max of negatives".
    for (i, &idx) in index.iter().enumerate() {
        let idx = idx as usize;
        if idx >= out_rows {
            return Err(TensorError::IndexOutOfBounds {
                op: "scatter_rows",
                index: idx,
                bound: out_rows,
            });
        }
        let src_row = src.row(i);
        let first = counts[idx] == 0;
        counts[idx] += 1;
        let out_row = out.row_mut(idx);
        match reduce {
            Reduce::Sum | Reduce::Mean => {
                for (o, &s) in out_row.iter_mut().zip(src_row) {
                    *o += s;
                }
            }
            Reduce::Max => {
                if first {
                    out_row.copy_from_slice(src_row);
                } else {
                    for (o, &s) in out_row.iter_mut().zip(src_row) {
                        *o = o.max(s);
                    }
                }
            }
        }
    }
    if reduce == Reduce::Mean {
        for (r, &count) in counts.iter().enumerate() {
            if count > 1 {
                let inv = 1.0 / count as f32;
                for v in out.row_mut(r) {
                    *v *= inv;
                }
            }
        }
    }
    Ok(out)
}

/// Per-destination contribution counts for a scatter (`degree` of each output
/// row). Exposed because mean-aggregating models reuse it.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] when any index is `>= out_rows`.
pub fn scatter_counts(index: &[u32], out_rows: usize) -> Result<Vec<u32>> {
    let mut counts = vec![0u32; out_rows];
    for &idx in index {
        if idx as usize >= out_rows {
            return Err(TensorError::IndexOutOfBounds {
                op: "scatter_counts",
                index: idx as usize,
                bound: out_rows,
            });
        }
        counts[idx as usize] += 1;
    }
    Ok(counts)
}

fn check_gemm_shapes(op: &'static str, a: &DenseMatrix, b: &DenseMatrix) -> Result<()> {
    if a.cols() != b.rows() {
        return Err(TensorError::ShapeMismatch {
            op,
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f32]]) -> DenseMatrix {
        DenseMatrix::from_rows(rows).unwrap()
    }

    #[test]
    fn gemm_small_known_answer() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = mat(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = gemm(&a, &b).unwrap();
        assert_eq!(c, mat(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn gemm_matches_naive_on_rectangular() {
        let a = DenseMatrix::from_fn(7, 13, |r, c| ((r * 31 + c * 7) % 5) as f32 - 2.0);
        let b = DenseMatrix::from_fn(13, 9, |r, c| ((r * 17 + c * 3) % 7) as f32 - 3.0);
        let fast = gemm(&a, &b).unwrap();
        let slow = gemm_naive(&a, &b).unwrap();
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn gemm_identity_is_noop() {
        let a = DenseMatrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let i = DenseMatrix::identity(4);
        assert!(gemm(&a, &i).unwrap().approx_eq(&a, 0.0));
        assert!(gemm(&i, &a).unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn gemm_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(4, 2);
        assert!(matches!(
            gemm(&a, &b).unwrap_err(),
            TensorError::ShapeMismatch { op: "gemm", .. }
        ));
    }

    #[test]
    fn spmm_matches_dense_gemm() {
        let a =
            CsrMatrix::from_triplets(3, 4, &[(0, 1, 2.0), (1, 0, 1.0), (1, 3, -1.0), (2, 2, 0.5)])
                .unwrap();
        let x = DenseMatrix::from_fn(4, 5, |r, c| (r + c) as f32);
        let sparse = spmm(&a, &x).unwrap();
        let dense = gemm(&a.to_dense(), &x).unwrap();
        assert!(sparse.approx_eq(&dense, 1e-5));
    }

    #[test]
    fn spmm_shape_mismatch() {
        let a = CsrMatrix::empty(3, 4);
        let x = DenseMatrix::zeros(5, 2);
        assert!(spmm(&a, &x).is_err());
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0)]).unwrap();
        let b = CsrMatrix::from_triplets(3, 2, &[(0, 1, 4.0), (1, 0, 5.0), (2, 1, 6.0)]).unwrap();
        let c = spgemm(&a, &b).unwrap();
        let dense = gemm(&a.to_dense(), &b.to_dense()).unwrap();
        assert!(c.to_dense().approx_eq(&dense, 1e-5));
    }

    #[test]
    fn spgemm_identity_is_noop() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.5), (2, 0, -2.0)]).unwrap();
        let i = CsrMatrix::identity(3);
        assert_eq!(spgemm(&a, &i).unwrap(), a);
        assert_eq!(spgemm(&i, &a).unwrap(), a);
    }

    #[test]
    fn spgemm_shape_mismatch() {
        let a = CsrMatrix::empty(2, 3);
        let b = CsrMatrix::empty(4, 2);
        assert!(spgemm(&a, &b).is_err());
    }

    #[test]
    fn gather_rows_selects() {
        let x = mat(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let g = gather_rows(&x, &[2, 0, 2]).unwrap();
        assert_eq!(g.row(0), &[3.0, 3.0]);
        assert_eq!(g.row(1), &[1.0, 1.0]);
        assert_eq!(g.row(2), &[3.0, 3.0]);
    }

    #[test]
    fn gather_rows_out_of_bounds() {
        let x = DenseMatrix::zeros(2, 2);
        assert!(gather_rows(&x, &[5]).is_err());
    }

    #[test]
    fn scatter_sum_accumulates() {
        let src = mat(&[&[1.0], &[2.0], &[4.0]]);
        let out = scatter_rows(&src, &[0, 1, 0], 2, Reduce::Sum).unwrap();
        assert_eq!(out.row(0), &[5.0]);
        assert_eq!(out.row(1), &[2.0]);
    }

    #[test]
    fn scatter_mean_divides() {
        let src = mat(&[&[2.0], &[4.0], &[9.0]]);
        let out = scatter_rows(&src, &[0, 0, 1], 3, Reduce::Mean).unwrap();
        assert_eq!(out.row(0), &[3.0]);
        assert_eq!(out.row(1), &[9.0]);
        assert_eq!(out.row(2), &[0.0]);
    }

    #[test]
    fn scatter_max_keeps_largest() {
        let src = mat(&[&[-5.0], &[-1.0], &[3.0]]);
        let out = scatter_rows(&src, &[0, 0, 1], 2, Reduce::Max).unwrap();
        assert_eq!(out.row(0), &[-1.0], "max of negatives, not clamped to 0");
        assert_eq!(out.row(1), &[3.0]);
    }

    #[test]
    fn scatter_index_length_checked() {
        let src = DenseMatrix::zeros(3, 1);
        assert!(matches!(
            scatter_rows(&src, &[0, 1], 2, Reduce::Sum).unwrap_err(),
            TensorError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn scatter_index_bounds_checked() {
        let src = DenseMatrix::zeros(1, 1);
        assert!(scatter_rows(&src, &[7], 2, Reduce::Sum).is_err());
    }

    #[test]
    fn scatter_sum_equals_transpose_spmm() {
        // scatter-sum of gathered rows == A^T (one-hot by index) times src.
        // This is the algebraic identity the MP/SpMM equivalence rests on.
        let src = mat(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let index = [1u32, 1, 0];
        let scattered = scatter_rows(&src, &index, 2, Reduce::Sum).unwrap();
        let one_hot =
            CsrMatrix::from_triplets(2, 3, &[(1, 0, 1.0), (1, 1, 1.0), (0, 2, 1.0)]).unwrap();
        let via_spmm = spmm(&one_hot, &src).unwrap();
        assert!(scattered.approx_eq(&via_spmm, 1e-6));
    }

    #[test]
    fn scatter_counts_match() {
        assert_eq!(scatter_counts(&[0, 0, 2], 3).unwrap(), vec![2, 0, 1]);
        assert!(scatter_counts(&[3], 3).is_err());
    }

    #[test]
    fn reduce_names() {
        assert_eq!(Reduce::Sum.to_string(), "sum");
        assert_eq!(Reduce::Mean.name(), "mean");
        assert_eq!(Reduce::Max.name(), "max");
    }
}
