//! Property-based tests for the tensor substrate.

use gsuite_tensor::{ops, CooMatrix, CsrMatrix, DenseMatrix, Triplet};
use proptest::prelude::*;

/// Strategy: a sorted, deduplicated list of triplets inside an `r x c` grid.
fn triplets(rows: usize, cols: usize, max_nnz: usize) -> impl Strategy<Value = Vec<Triplet>> {
    proptest::collection::vec((0..rows, 0..cols, -8i32..8), 0..max_nnz).prop_map(|v| {
        let mut seen = std::collections::HashSet::new();
        v.into_iter()
            .filter(|&(r, c, _)| seen.insert((r, c)))
            .map(|(r, c, val)| (r, c, val as f32 * 0.5))
            .collect()
    })
}

fn small_dense(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data).expect("sized by strategy"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coo_csr_roundtrip(t in triplets(9, 7, 30)) {
        let coo = CooMatrix::from_triplets(9, 7, &t).unwrap();
        let csr = coo.to_csr();
        prop_assert_eq!(coo.to_dense(), csr.to_dense());
        prop_assert_eq!(&csr.to_coo(), &coo);
        prop_assert_eq!(csr.nnz(), t.len());
    }

    #[test]
    fn csr_transpose_involution(t in triplets(8, 8, 24)) {
        let csr = CsrMatrix::from_triplets(8, 8, &t).unwrap();
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn csr_transpose_matches_dense(t in triplets(6, 9, 20)) {
        let csr = CsrMatrix::from_triplets(6, 9, &t).unwrap();
        prop_assert_eq!(csr.transpose().to_dense(), csr.to_dense().transpose());
    }

    #[test]
    fn gemm_matches_naive(a in small_dense(5, 4), b in small_dense(4, 6)) {
        let fast = ops::gemm(&a, &b).unwrap();
        let slow = ops::gemm_naive(&a, &b).unwrap();
        prop_assert!(fast.approx_eq(&slow, 1e-3));
    }

    #[test]
    fn gemm_distributes_over_addition(
        a in small_dense(4, 3),
        b in small_dense(3, 5),
        c in small_dense(3, 5),
    ) {
        // A(B + C) == AB + AC
        let lhs = ops::gemm(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = ops::gemm(&a, &b).unwrap().add(&ops::gemm(&a, &c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn spmm_matches_dense_gemm(t in triplets(7, 5, 20), x in small_dense(5, 3)) {
        let a = CsrMatrix::from_triplets(7, 5, &t).unwrap();
        let sparse = ops::spmm(&a, &x).unwrap();
        let dense = ops::gemm(&a.to_dense(), &x).unwrap();
        prop_assert!(sparse.approx_eq(&dense, 1e-3));
    }

    #[test]
    fn spgemm_matches_dense_gemm(ta in triplets(6, 5, 18), tb in triplets(5, 7, 18)) {
        let a = CsrMatrix::from_triplets(6, 5, &ta).unwrap();
        let b = CsrMatrix::from_triplets(5, 7, &tb).unwrap();
        let sparse = ops::spgemm(&a, &b).unwrap();
        let dense = ops::gemm(&a.to_dense(), &b.to_dense()).unwrap();
        prop_assert!(sparse.to_dense().approx_eq(&dense, 1e-3));
        // result must still satisfy all CSR invariants
        let rebuilt = CsrMatrix::from_parts(
            sparse.rows(), sparse.cols(),
            sparse.row_ptr().to_vec(),
            sparse.col_indices().to_vec(),
            sparse.values().to_vec(),
        );
        prop_assert!(rebuilt.is_ok());
    }

    #[test]
    fn gather_then_scatter_sum_is_degree_scaling(
        x in small_dense(6, 4),
        index in proptest::collection::vec(0u32..6, 0..20),
    ) {
        // scatter_sum(gather(X, idx), idx) == diag(counts) * X
        let gathered = ops::gather_rows(&x, &index).unwrap();
        let scattered = ops::scatter_rows(&gathered, &index, 6, ops::Reduce::Sum).unwrap();
        let counts = ops::scatter_counts(&index, 6).unwrap();
        let expected = DenseMatrix::from_fn(6, 4, |r, c| counts[r] as f32 * x.get(r, c));
        prop_assert!(scattered.approx_eq(&expected, 1e-3));
    }

    #[test]
    fn scatter_mean_bounded_by_min_max(
        src in small_dense(8, 2),
        index in proptest::collection::vec(0u32..4, 8),
    ) {
        let out = ops::scatter_rows(&src, &index, 4, ops::Reduce::Mean).unwrap();
        let maxed = ops::scatter_rows(&src, &index, 4, ops::Reduce::Max).unwrap();
        for r in 0..4 {
            for c in 0..2 {
                // mean never exceeds max over the same contributions
                prop_assert!(out.get(r, c) <= maxed.get(r, c) + 1e-4);
            }
        }
    }

    #[test]
    fn dense_transpose_involution(m in small_dense(5, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }
}
