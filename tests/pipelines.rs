//! Cross-crate integration tests: end-to-end pipelines over every model,
//! computational model and framework, through both measurement backends.

use gsuite::core::config::{CompModel, FrameworkKind, GnnModel, RunConfig};
use gsuite::core::pipeline::PipelineRun;
use gsuite::graph::datasets::Dataset;
use gsuite::profile::{HwProfiler, SimProfiler};

fn small(model: GnnModel, comp: CompModel) -> RunConfig {
    RunConfig {
        model,
        comp,
        dataset: Dataset::Cora,
        scale: 0.03,
        layers: 2,
        hidden: 8,
        ..RunConfig::default()
    }
}

#[test]
fn every_gsuite_pair_runs_end_to_end() {
    let pairs = [
        (GnnModel::Gcn, CompModel::Mp),
        (GnnModel::Gcn, CompModel::Spmm),
        (GnnModel::Gin, CompModel::Mp),
        (GnnModel::Gin, CompModel::Spmm),
        (GnnModel::Sage, CompModel::Mp),
    ];
    for (model, comp) in pairs {
        let cfg = small(model, comp);
        let graph = cfg.load_graph();
        let run =
            PipelineRun::build(&graph, &cfg).unwrap_or_else(|e| panic!("{model:?}/{comp:?}: {e}"));
        assert!(run.launch_count() > 0, "{model:?}/{comp:?}");
        assert_eq!(run.output.shape(), (graph.num_nodes(), 8));
        assert!(
            run.output.sum().abs() > 1e-9,
            "{model:?}/{comp:?} produced all-zero output"
        );
    }
}

#[test]
fn every_dataset_builds_scaled_pipelines() {
    for dataset in Dataset::ALL {
        let cfg = RunConfig {
            dataset,
            scale: 0.002_f64.min(1.0).max(2.0 / dataset.spec().nodes as f64),
            hidden: 4,
            layers: 1,
            functional_math: false,
            ..RunConfig::default()
        };
        let graph = cfg.load_graph();
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        assert!(run.launch_count() >= 4, "{dataset}: {}", run.launch_count());
    }
}

#[test]
fn mp_and_spmm_agree_through_public_api() {
    for model in [GnnModel::Gcn, GnnModel::Gin] {
        let mp_cfg = small(model, CompModel::Mp);
        let sp_cfg = small(model, CompModel::Spmm);
        let graph = mp_cfg.load_graph();
        let mp = PipelineRun::build(&graph, &mp_cfg).unwrap();
        let sp = PipelineRun::build(&graph, &sp_cfg).unwrap();
        assert!(
            mp.output.approx_eq(&sp.output, 1e-3),
            "{model:?}: max diff {}",
            mp.output.max_abs_diff(&sp.output).unwrap()
        );
    }
}

#[test]
fn frameworks_share_math_but_not_overheads() {
    let graph = small(GnnModel::Gcn, CompModel::Mp).load_graph();
    let mut outputs = Vec::new();
    let mut times = Vec::new();
    for fw in FrameworkKind::ALL {
        let cfg = RunConfig {
            framework: fw,
            ..small(GnnModel::Gcn, CompModel::Mp)
        };
        let run = PipelineRun::build(&graph, &cfg).unwrap();
        let profile = run.profile(&HwProfiler::v100());
        outputs.push(run.output);
        times.push((fw, profile.total_time_ms()));
    }
    for pair in outputs.windows(2) {
        assert!(pair[0].approx_eq(&pair[1], 1e-4), "same math everywhere");
    }
    let t = |f: FrameworkKind| times.iter().find(|(x, _)| *x == f).unwrap().1;
    assert!(t(FrameworkKind::PygLike) > t(FrameworkKind::DglLike));
    assert!(t(FrameworkKind::DglLike) > t(FrameworkKind::GSuite));
}

#[test]
fn hw_and_sim_backends_agree_on_instruction_counts() {
    let cfg = RunConfig {
        functional_math: false,
        ..small(GnnModel::Gcn, CompModel::Mp)
    };
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    let hw = run.profile(&HwProfiler::v100());
    let sim = run.profile(&SimProfiler::scaled(4));
    for (h, s) in hw.kernels.iter().zip(&sim.kernels) {
        assert_eq!(h.kernel, s.kernel);
        assert_eq!(
            h.instr_mix.total(),
            s.instr_mix.total(),
            "{}: backends must execute identical traces",
            h.kernel
        );
        assert_eq!(h.instr_mix.fp32, s.instr_mix.fp32, "{}", h.kernel);
        assert_eq!(
            h.instr_mix.load_store, s.instr_mix.load_store,
            "{}",
            h.kernel
        );
    }
}

#[test]
fn builds_are_deterministic() {
    let cfg = small(GnnModel::Sage, CompModel::Mp);
    let graph = cfg.load_graph();
    let a = PipelineRun::build(&graph, &cfg).unwrap();
    let b = PipelineRun::build(&graph, &cfg).unwrap();
    assert_eq!(a.output, b.output);
    assert_eq!(a.launch_count(), b.launch_count());
    let sim = SimProfiler::scaled(2).max_ctas(Some(64));
    let pa = a.profile(&sim);
    let pb = b.profile(&sim);
    assert_eq!(pa, pb, "simulation is deterministic end to end");
}

#[test]
fn layer_and_width_sweeps_scale_launches() {
    let graph = small(GnnModel::Gcn, CompModel::Mp).load_graph();
    let count = |layers: usize| {
        let cfg = RunConfig {
            layers,
            ..small(GnnModel::Gcn, CompModel::Mp)
        };
        PipelineRun::build(&graph, &cfg).unwrap().launch_count()
    };
    // GCN-MP: 4 kernels per layer + 1 ReLU between layers.
    assert_eq!(count(1), 4);
    assert_eq!(count(2), 9);
    assert_eq!(count(4), 19);
}

#[test]
fn extension_models_run_end_to_end() {
    // GAT and SGC (paper §IV extendability demo) work through the same
    // public surface as the paper trio.
    for (model, comps) in [
        (GnnModel::Gat, vec![CompModel::Mp]),
        (GnnModel::Sgc, vec![CompModel::Mp, CompModel::Spmm]),
    ] {
        for comp in comps {
            let cfg = small(model, comp);
            let graph = cfg.load_graph();
            let run = PipelineRun::build(&graph, &cfg)
                .unwrap_or_else(|e| panic!("{model:?}/{comp:?}: {e}"));
            assert!(run.launch_count() > 0);
            assert_eq!(run.output.rows(), graph.num_nodes());
            let profile = run.profile(&HwProfiler::v100());
            assert!(profile.device_time_ms() > 0.0);
        }
    }
    // SGC's MP and SpMM forms agree like GCN's do.
    let mp_cfg = small(GnnModel::Sgc, CompModel::Mp);
    let sp_cfg = small(GnnModel::Sgc, CompModel::Spmm);
    let graph = mp_cfg.load_graph();
    let mp = PipelineRun::build(&graph, &mp_cfg).unwrap();
    let sp = PipelineRun::build(&graph, &sp_cfg).unwrap();
    assert!(mp.output.approx_eq(&sp.output, 1e-3));
    // GAT under SpMM is rejected like SAGE.
    let bad = small(GnnModel::Gat, CompModel::Spmm);
    assert!(PipelineRun::build(&graph, &bad).is_err());
}

#[test]
fn config_surface_round_trips() {
    let mut cfg = RunConfig::default();
    cfg.apply_file("model = gin\ncomp = spmm\ndataset = pubmed\nscale = 0.01\nhidden = 4\n")
        .unwrap();
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    assert!(run.label.contains("GIN"));
    assert!(run.label.contains("SpMM"));
    assert!(run.label.contains("PubMed"));
}
