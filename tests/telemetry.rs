//! The observability layer's guarantees, locked at the workspace level:
//!
//! 1. **Trace determinism** — a sim-clock traced loadgen run is a pure
//!    function of `(scenario, seed, parameters)`: the Chrome-trace JSON
//!    and the metrics exposition are byte-identical across repeated runs
//!    and across profiling thread counts, and tracing never perturbs the
//!    report (traced and untraced runs agree on every counter and
//!    latency).
//! 2. **Span taxonomy** — every served request renders as a tree whose
//!    children cover the documented phases: queue, cache lookup, the
//!    four compile phases on misses, and the service envelope with
//!    per-kernel launch attribution.
//! 3. **Chaos tracing** — fault-injected runs emit identical span trees
//!    per `(seed, mix)`, and the resilience events (`retry`, `backoff`,
//!    `degrade`) appear in the stream; a different fault seed perturbs
//!    the tree.
//! 4. **The `metrics` protocol command** round-trips the Prometheus-style
//!    exposition over TCP, `# EOF`-framed, byte-identical to the
//!    server-side registry render.

use gsuite::serve::fault::FaultPlan;
use gsuite::serve::{
    run_loadgen, run_loadgen_traced, serve_on, ArrivalMode, ClockMode, LoadSpec, ProtocolClient,
    ServeConfig,
};
use gsuite::telemetry::json;

fn traced_spec() -> LoadSpec {
    LoadSpec {
        requests: 48,
        seed: 42,
        arrival: ArrivalMode::Closed { clients: 4 },
        clock: ClockMode::Sim,
        ..LoadSpec::default()
    }
}

#[test]
fn sim_traces_and_metrics_are_byte_identical_across_runs_and_threads() {
    let spec = traced_spec();
    let (report_a, trace_a) = run_loadgen_traced(&spec).expect("traced run");
    let (report_b, trace_b) = run_loadgen_traced(&spec).expect("traced rerun");

    let json_a = trace_a.to_chrome_json();
    assert_eq!(json_a, trace_b.to_chrome_json(), "trace must be replayable");
    json::validate(&json_a).expect("exported trace is valid JSON");
    assert_eq!(
        report_a.metrics().render(),
        report_b.metrics().render(),
        "metrics exposition must be replayable"
    );

    // The profiling fan-out width must not leak into the span stream.
    let wide = LoadSpec {
        threads: 4,
        ..traced_spec()
    };
    let (report_w, trace_w) = run_loadgen_traced(&wide).expect("wide traced run");
    assert_eq!(json_a, trace_w.to_chrome_json(), "threads leak into trace");
    assert_eq!(report_a.metrics().render(), report_w.metrics().render());

    // Tracing is observation-only: the untraced report agrees on every
    // counter and latency; only the phases block is trace-derived.
    let untraced = run_loadgen(&spec).expect("untraced run");
    assert!(untraced.phases.is_empty());
    assert!(!report_a.phases.is_empty());
    let mut stripped = report_a.clone();
    stripped.phases = Vec::new();
    assert_eq!(stripped, untraced, "tracing must not perturb the report");
}

#[test]
fn span_trees_cover_the_request_taxonomy() {
    let (_report, trace) = run_loadgen_traced(&traced_spec()).expect("traced run");
    assert_eq!(trace.root_count(), 48, "one request root per request");
    for name in [
        "request",
        "queue",
        "cache_lookup",
        "build",
        "compile.lower",
        "compile.optimize",
        "compile.decorate",
        "compile.schedule",
        "service",
        "kernel",
    ] {
        assert!(
            trace.spans.iter().any(|s| s.name == name),
            "span taxonomy is missing {name:?}"
        );
    }
    // Every non-root span hangs off a recorded parent: the stream
    // renders as complete trees.
    let tree = trace.render_tree();
    assert!(tree.contains("request"), "{tree}");
    for s in &trace.spans {
        if let Some(parent) = s.parent {
            assert!(
                trace.spans.iter().any(|p| p.id == parent),
                "dangling parent id {parent}"
            );
        }
    }
}

#[test]
fn chaos_span_trees_are_deterministic_per_seed_and_mix() {
    let mut spec = LoadSpec {
        fault: Some(FaultPlan::mixed(7, 0.25)),
        ..traced_spec()
    };
    spec.resilience.deadline_ms = Some(900.0);
    spec.resilience.retry = gsuite::serve::fault::RetryPolicy::retries(2);
    let (_ra, trace_a) = run_loadgen_traced(&spec).expect("chaos traced run");
    let (_rb, trace_b) = run_loadgen_traced(&spec).expect("chaos traced rerun");
    assert_eq!(
        trace_a.render_tree(),
        trace_b.render_tree(),
        "same (seed, mix), same span tree"
    );
    assert_eq!(trace_a.to_chrome_json(), trace_b.to_chrome_json());

    // A 25% mixed fault rate leaves visible resilience spans.
    assert!(
        trace_a.spans.iter().any(|s| matches!(
            s.name.as_str(),
            "retry" | "backoff" | "degrade" | "cancelled"
        )),
        "fault injection must surface in the span stream"
    );

    // A different fault seed perturbs the tree (resilience held fixed).
    let other = LoadSpec {
        fault: Some(FaultPlan::mixed(8, 0.25)),
        resilience: spec.resilience,
        ..traced_spec()
    };
    let (_ro, trace_o) = run_loadgen_traced(&other).expect("other seed");
    assert_ne!(
        trace_a.render_tree(),
        trace_o.render_tree(),
        "fault seed must matter"
    );
}

#[test]
fn metrics_protocol_round_trips_over_tcp() {
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    let serve_thread =
        std::thread::spawn(move || serve_on(listener, ServeConfig::golden()).expect("serves"));

    let mut client = ProtocolClient::connect(&addr).expect("connect");
    let ok = client
        .round_trip("model=gcn dataset=cora scale=0.05")
        .expect("request round-trips");
    assert!(ok.starts_with("ok id=0 "), "{ok}");

    let text = client.round_trip_multi("metrics").expect("metrics frame");
    assert!(text.starts_with("# HELP"), "{text}");
    assert!(text.ends_with("# EOF\n"), "{text}");
    assert!(text.contains("gsuite_serve_completed_total 1"), "{text}");
    assert!(
        text.contains("# TYPE gsuite_serve_queue_depth gauge"),
        "{text}"
    );

    // Ordinary single-line commands still work on the same connection.
    let stats = client.round_trip("stats").expect("stats line");
    assert!(stats.contains("completed=1"), "{stats}");

    assert_eq!(client.round_trip("shutdown").expect("bye"), "ok bye");
    serve_thread.join().expect("server exits cleanly");
}
