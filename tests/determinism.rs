//! Determinism guarantees of the profiling stack.
//!
//! Two properties every trajectory metric in this repository rests on:
//!
//! 1. **Parallel profiling is bit-identical to serial profiling** — the
//!    launch fan-out of [`PipelineRun::profile_par`] merges results in
//!    launch order, so core count (or `GSUITE_THREADS`) can never change a
//!    reported number.
//! 2. **Simulation is a pure function of (config, workload)** — two runs of
//!    [`Simulator::run`] on the same workload produce identical `SimStats`,
//!    including the trace-streaming buffer-pool path.

use gsuite::core::config::{CompModel, GnnModel, RunConfig};
use gsuite::core::pipeline::PipelineRun;
use gsuite::gpu::{GpuConfig, SimOptions, Simulator};
use gsuite::graph::datasets::Dataset;
use gsuite::profile::{HwProfiler, SimProfiler};

fn gcn_mp() -> RunConfig {
    RunConfig {
        model: GnnModel::Gcn,
        comp: CompModel::Mp,
        dataset: Dataset::Cora,
        scale: 0.05,
        layers: 2,
        hidden: 8,
        functional_math: false,
        ..RunConfig::default()
    }
}

#[test]
fn profile_par_bit_identical_to_serial_on_hw_backend() {
    let cfg = gcn_mp();
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    let hw = HwProfiler::v100();
    let serial = run.profile(&hw);
    let parallel = run.profile_par(&hw);
    assert_eq!(
        serial, parallel,
        "parallel profiling must be bit-identical to serial"
    );
}

#[test]
fn profile_par_bit_identical_to_serial_on_sim_backend() {
    let cfg = gcn_mp();
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    let sim = SimProfiler::scaled(4).max_ctas(Some(128));
    let serial = run.profile(&sim);
    let parallel = run.profile_par(&sim);
    assert_eq!(serial, parallel);
    // And the parallel path is itself stable across invocations.
    assert_eq!(parallel, run.profile_par(&sim));
}

#[test]
fn simulator_runs_are_reproducible() {
    let cfg = gcn_mp();
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    let sim = Simulator::new(
        GpuConfig::v100_scaled(4),
        SimOptions {
            max_ctas: Some(256),
            max_cycles: None,
        },
    );
    for launch in &run.launches {
        let a = sim.run(launch.workload.as_ref());
        let b = sim.run(launch.workload.as_ref());
        assert_eq!(a, b, "{}: SimStats must be identical across runs", a.kernel);
    }
}

#[test]
fn thread_count_does_not_change_results() {
    // par_map with 1 worker vs many workers over real profiling work.
    let cfg = gcn_mp();
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    let hw = HwProfiler::v100();
    let one = gsuite_par::par_map_threads(&run.launches, 1, |_, l| hw_profile(&hw, l));
    let many = gsuite_par::par_map_threads(&run.launches, 8, |_, l| hw_profile(&hw, l));
    assert_eq!(one, many);
}

fn hw_profile(
    hw: &HwProfiler,
    launch: &gsuite::core::kernels::Launch,
) -> gsuite::profile::KernelStats {
    use gsuite::profile::Profiler as _;
    hw.profile(launch.workload.as_ref())
}
