//! Determinism guarantees of the profiling stack.
//!
//! Two properties every trajectory metric in this repository rests on:
//!
//! 1. **Parallel profiling is bit-identical to serial profiling** — the
//!    launch fan-out of [`PipelineRun::profile_par`] merges results in
//!    launch order, so core count (or `GSUITE_THREADS`) can never change a
//!    reported number.
//! 2. **Simulation is a pure function of (config, workload)** — two runs of
//!    [`Simulator::run`] on the same workload produce identical `SimStats`,
//!    including the trace-streaming buffer-pool path.
//! 3. **The scenario runner inherits both** — a scenario grid executed
//!    serially is bit-identical to the same grid fanned across cores, and
//!    repeated runs with the same spec match exactly.

use gsuite::core::config::{CompModel, GnnModel, RunConfig};
use gsuite::core::pipeline::PipelineRun;
use gsuite::gpu::{GpuConfig, SimOptions, Simulator};
use gsuite::graph::datasets::Dataset;
use gsuite::profile::{HwProfiler, SimProfiler};
use gsuite::scenarios::{registry, run_scenario_threads, BenchOpts, GpuSpec, ScenarioSpec};

fn gcn_mp() -> RunConfig {
    RunConfig {
        model: GnnModel::Gcn,
        comp: CompModel::Mp,
        dataset: Dataset::Cora,
        scale: 0.05,
        layers: 2,
        hidden: 8,
        functional_math: false,
        ..RunConfig::default()
    }
}

#[test]
fn profile_par_bit_identical_to_serial_on_hw_backend() {
    let cfg = gcn_mp();
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    let hw = HwProfiler::v100();
    let serial = run.profile(&hw);
    let parallel = run.profile_par(&hw);
    assert_eq!(
        serial, parallel,
        "parallel profiling must be bit-identical to serial"
    );
}

#[test]
fn profile_par_bit_identical_to_serial_on_sim_backend() {
    let cfg = gcn_mp();
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    let sim = SimProfiler::scaled(4).max_ctas(Some(128));
    let serial = run.profile(&sim);
    let parallel = run.profile_par(&sim);
    assert_eq!(serial, parallel);
    // And the parallel path is itself stable across invocations.
    assert_eq!(parallel, run.profile_par(&sim));
}

#[test]
fn simulator_runs_are_reproducible() {
    let cfg = gcn_mp();
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    let sim = Simulator::new(
        GpuConfig::v100_scaled(4),
        SimOptions {
            max_ctas: Some(256),
            max_cycles: None,
        },
    );
    for launch in &run.launches {
        let a = sim.run(launch.workload.as_ref());
        let b = sim.run(launch.workload.as_ref());
        assert_eq!(a, b, "{}: SimStats must be identical across runs", a.kernel);
    }
}

#[test]
fn thread_count_does_not_change_results() {
    // par_map with 1 worker vs many workers over real profiling work.
    let cfg = gcn_mp();
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    let hw = HwProfiler::v100();
    let one = gsuite_par::par_map_threads(&run.launches, 1, |_, l| hw_profile(&hw, l));
    let many = gsuite_par::par_map_threads(&run.launches, 8, |_, l| hw_profile(&hw, l));
    assert_eq!(one, many);
}

fn hw_profile(
    hw: &HwProfiler,
    launch: &gsuite::core::kernels::Launch,
) -> gsuite::profile::KernelStats {
    use gsuite::profile::Profiler as _;
    hw.profile(launch.workload.as_ref())
}

/// A small mixed-backend grid: two models × both comps on the analytical
/// V100 plus a scaled cycle sim — every phase of the runner (graph cache,
/// pipeline cache, profiling fan-out) under both backend kinds.
fn scenario_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "determinism-grid",
        title: "determinism test grid",
        models: vec![GnnModel::Gcn, GnnModel::Sage],
        datasets: vec![Dataset::Cora],
        gpus: vec![GpuSpec::HwV100, GpuSpec::SimSms(4)],
        ..ScenarioSpec::default()
    }
}

#[test]
fn run_scenario_serial_vs_parallel_bit_identical() {
    let opts = BenchOpts::golden();
    let spec = scenario_spec();
    let serial = run_scenario_threads(&spec, &opts, 1);
    let parallel = run_scenario_threads(&spec, &opts, 8);
    assert_eq!(
        serial.cells, parallel.cells,
        "expansion must not depend on threads"
    );
    assert_eq!(
        serial.outcomes, parallel.outcomes,
        "scenario outcomes must be bit-identical across worker counts"
    );
}

#[test]
fn run_scenario_repeated_runs_identical() {
    let opts = BenchOpts::golden();
    let spec = scenario_spec();
    let a = run_scenario_threads(&spec, &opts, 4);
    let b = run_scenario_threads(&spec, &opts, 4);
    assert_eq!(a.cells, b.cells);
    assert_eq!(
        a.outcomes, b.outcomes,
        "same spec + same seed => same numbers"
    );
}

#[test]
fn registry_scenario_render_is_thread_independent() {
    // End-to-end through a real registry entry: the rendered report (the
    // text the golden suite snapshots) must not depend on the worker
    // count either.
    let opts = BenchOpts::golden();
    let scenario = registry::find("fig5").expect("fig5 registered");
    let spec = scenario.spec();
    let serial = scenario.render(&run_scenario_threads(&spec, &opts, 1), &opts);
    let parallel = scenario.render(&run_scenario_threads(&spec, &opts, 8), &opts);
    assert_eq!(serial.render(&opts), parallel.render(&opts));
}
