//! Mini-batch sampling guarantees, locked at the workspace level:
//!
//! 1. **Sampler determinism** — the same `(graph, seed, seed nodes,
//!    fanout)` tuple yields a byte-identical subgraph on every run, and
//!    different draw seeds yield genuinely different subgraphs.
//! 2. **Grid determinism** — the `minibatch` scenario's profiles and
//!    rendered report are byte-identical across profiling thread counts
//!    (the property the golden snapshot and the CI smoke rest on).
//! 3. **Serve ≡ batch** — a served `batch_size=`/`fanout=` request,
//!    round-tripped through the wire format, profiles bit-identically
//!    to the batch runner's corresponding `minibatch` cell, and a
//!    `seed_node=` ego-net request profiles identically across server
//!    processes.

use gsuite::core::plan::OptLevel;
use gsuite::graph::{batch_schedule, NeighborSampler};
use gsuite::scenarios::{registry, BenchOpts};
use gsuite::serve::{ServeConfig, ServeRequest, Server};

// ---------------------------------------------------------------------------
// 1. Sampler determinism.
// ---------------------------------------------------------------------------

#[test]
fn sampled_subgraphs_replay_exactly() {
    // Dense enough that fanout 3 forces real draws at every hop.
    let g = gsuite::graph::GraphGenerator::new(200, 2400)
        .seed(11)
        .build_graph(8)
        .expect("generator args valid");
    let seeds: Vec<u32> = batch_schedule(g.num_nodes(), 24, 42)[0].clone();
    let sampler = NeighborSampler::new(vec![3, 2]).seed(42);
    let a = sampler.sample(&g, &seeds).expect("sample");
    for _ in 0..3 {
        let b = sampler.sample(&g, &seeds).expect("sample");
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.local_to_global, b.local_to_global);
        assert_eq!(a.graph.features(), b.graph.features());
    }
    // The draw seed is part of the subgraph's identity.
    let c = NeighborSampler::new(vec![3, 2])
        .seed(43)
        .sample(&g, &seeds)
        .expect("sample");
    assert_ne!(
        a.graph.edges(),
        c.graph.edges(),
        "different draw seeds must sample different neighbors"
    );
}

// ---------------------------------------------------------------------------
// 2. Grid determinism across thread counts.
// ---------------------------------------------------------------------------

#[test]
fn minibatch_grid_is_identical_across_thread_counts() {
    let opts = BenchOpts::golden();
    let scenario = registry::find("minibatch").expect("minibatch registered");
    let (r1, rep1) = scenario.run_threads(&opts, 1);
    let (r4, rep4) = scenario.run_threads(&opts, 4);
    assert_eq!(
        rep1.render(&opts),
        rep4.render(&opts),
        "rendered minibatch report must not depend on --threads"
    );
    for ((cell, o1), (_, o4)) in r1.iter().zip(r4.iter()) {
        assert_eq!(o1.profile(), o4.profile(), "cell {}", cell.label());
    }
}

// ---------------------------------------------------------------------------
// 3. Serve ≡ batch for sampled requests.
// ---------------------------------------------------------------------------

#[test]
fn served_sampled_requests_match_batch_cells_bit_for_bit() {
    let opts = BenchOpts::golden();
    let scenario = registry::find("minibatch").expect("minibatch registered");
    let (batch, _) = scenario.run(&opts);

    let server = Server::start(ServeConfig {
        workers: 2,
        opts: opts.clone(),
        ..ServeConfig::default()
    });
    // One corner of the grid per (model, dataset): O2, batch 32, fanout
    // 5x5 — each request round-tripped through the wire format first, so
    // the comparison covers the protocol keys end to end.
    let picked: Vec<_> = batch
        .iter()
        .filter(|(cell, _)| {
            cell.config.batch_size == 32
                && cell.config.fanout == vec![5, 5]
                && cell.config.opt == OptLevel::O2
        })
        .collect();
    assert!(
        !picked.is_empty(),
        "minibatch grid lost its O2/32/5x5 corner"
    );
    for (cell, outcome) in picked {
        let wire = ServeRequest::from_cell(cell).to_line();
        let req = ServeRequest::parse_line(&wire).expect("wire line parses");
        let done = server
            .submit(req)
            .expect("accepted")
            .recv()
            .expect("completion delivered");
        let served = done.outcome.expect("minibatch cells profile");
        let batch_profile = outcome.profile().expect("batch cell profiled");
        assert_eq!(
            batch_profile,
            served.as_ref(),
            "served sampled request differs from batch cell {} (wire {wire:?})",
            cell.label()
        );
    }
    server.shutdown();
}

#[test]
fn seed_node_requests_profile_identically_across_servers() {
    let opts = BenchOpts::golden();
    let line = "model=gcn dataset=cora scale=0.05 seed_node=7 fanout=5x5 backend=hw";
    let req = ServeRequest::parse_line(line).expect("valid line");
    let serve_once = |req: ServeRequest| {
        let server = Server::start(ServeConfig {
            workers: 1,
            opts: opts.clone(),
            ..ServeConfig::default()
        });
        let done = server
            .submit(req)
            .expect("accepted")
            .recv()
            .expect("completion delivered");
        server.shutdown();
        done.outcome.expect("ego-net request profiles")
    };
    let a = serve_once(req.clone());
    let b = serve_once(req);
    assert_eq!(
        a.as_ref(),
        b.as_ref(),
        "single ego-net profile must be identical across server processes"
    );
}
