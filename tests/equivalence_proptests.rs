//! Property-based integration tests: the MP ≡ SpMM equivalence (the
//! paper's Eqs. 1–4) over random graphs, shapes and seeds, through the
//! full public pipeline API — plus trace parity between the streaming
//! `trace_into` path and the legacy `trace()` shim for all six kernels.

use gsuite::core::config::{CompModel, GnnModel, RunConfig};
use gsuite::core::kernels::KernelKind;
use gsuite::core::models::build_model;
use gsuite::core::OptLevel;
use gsuite::gpu::TraceBuf;
use gsuite::graph::{Graph, GraphGenerator, GraphTopology};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (5usize..40, 1usize..6, 0u64..200, 1usize..12).prop_map(|(nodes, deg, seed, feat)| {
        let edges = (nodes * deg).min(nodes * (nodes - 1) / 2);
        GraphGenerator::new(nodes, edges)
            .topology(GraphTopology::PowerLaw { exponent: 0.8 })
            .seed(seed)
            .build_graph(feat)
            .expect("valid generator args")
    })
}

fn config(model: GnnModel, comp: CompModel, layers: usize, hidden: usize, seed: u64) -> RunConfig {
    RunConfig {
        model,
        comp,
        layers,
        hidden,
        seed,
        ..RunConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gcn_mp_equals_spmm(graph in arb_graph(), layers in 1usize..3, hidden in 1usize..8, seed in 0u64..100) {
        let (_, mp) = build_model(&graph, &config(GnnModel::Gcn, CompModel::Mp, layers, hidden, seed)).unwrap();
        let (_, sp) = build_model(&graph, &config(GnnModel::Gcn, CompModel::Spmm, layers, hidden, seed)).unwrap();
        prop_assert!(
            mp.approx_eq(&sp, 1e-3),
            "GCN max diff {}",
            mp.max_abs_diff(&sp).unwrap()
        );
    }

    #[test]
    fn gin_mp_equals_spmm(graph in arb_graph(), layers in 1usize..3, hidden in 1usize..8, seed in 0u64..100) {
        let (_, mp) = build_model(&graph, &config(GnnModel::Gin, CompModel::Mp, layers, hidden, seed)).unwrap();
        let (_, sp) = build_model(&graph, &config(GnnModel::Gin, CompModel::Spmm, layers, hidden, seed)).unwrap();
        prop_assert!(
            mp.approx_eq(&sp, 1e-3),
            "GIN max diff {}",
            mp.max_abs_diff(&sp).unwrap()
        );
    }

    #[test]
    fn outputs_are_seed_stable(graph in arb_graph(), seed in 0u64..100) {
        let cfg = config(GnnModel::Sage, CompModel::Mp, 2, 4, seed);
        let (_, a) = build_model(&graph, &cfg).unwrap();
        let (_, b) = build_model(&graph, &cfg).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn launch_counts_are_shape_independent(graph in arb_graph(), seed in 0u64..50) {
        // The kernel *sequence* depends only on (model, comp, layers) —
        // never on the topology or features.
        let cfg = config(GnnModel::Gcn, CompModel::Mp, 2, 4, seed);
        let (plan, _) = build_model(&graph, &cfg).unwrap();
        prop_assert_eq!(plan.launch_count(), 9);
        let kinds: Vec<String> = plan.kinds().iter().map(|k| k.to_string()).collect();
        prop_assert_eq!(
            kinds[..4].join(","),
            "scatter,sgemm,indexSelect,scatter"
        );
    }

    #[test]
    fn profile_mode_matches_functional_launches(graph in arb_graph(), seed in 0u64..50) {
        let functional = config(GnnModel::Gin, CompModel::Mp, 1, 4, seed);
        let profile_only = RunConfig { functional_math: false, ..functional.clone() };
        let (fp, _) = build_model(&graph, &functional).unwrap();
        let (pp, _) = build_model(&graph, &profile_only).unwrap();
        let fl = fp.schedule(OptLevel::O0).launches;
        let pl = pp.schedule(OptLevel::O0).launches;
        prop_assert_eq!(fl.len(), pl.len());
        for (a, b) in fl.iter().zip(&pl) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.workload.grid(), b.workload.grid());
        }
    }

    #[test]
    fn streaming_and_legacy_traces_are_identical(graph in arb_graph(), seed in 0u64..50) {
        // For every kernel of every gSuite pipeline, the zero-allocation
        // streaming path (`trace_into` into a recycled arena) and the
        // legacy owned-buffer shim (`trace()`) must emit the same
        // instruction stream — including the gather side-buffer contents
        // that `MemRef::Gather` references by `(start, len)`.
        let mut seen: Vec<KernelKind> = Vec::new();
        // One dirty, repeatedly reused buffer across *all* kernels and
        // warps, as the simulator's buffer pool does.
        let mut reused = TraceBuf::new();
        for (model, comp) in gsuite::scenarios::gsuite_pairs() {
            let cfg = config(model, comp, 2, 4, seed);
            let (plan, _) = build_model(&graph, &cfg).unwrap();
            let launches = plan.schedule(OptLevel::O0).launches;
            for launch in &launches {
                if !seen.contains(&launch.kind) {
                    seen.push(launch.kind);
                }
                let grid = launch.workload.grid();
                let cta_samples = [0, grid.ctas / 2, grid.ctas - 1];
                let warp_samples = [0, grid.warps_per_cta - 1];
                for &cta in &cta_samples {
                    for &warp in &warp_samples {
                        let legacy = launch.workload.trace(cta, warp);
                        reused.clear();
                        launch.workload.trace_into(&mut reused, cta, warp);
                        prop_assert_eq!(
                            &reused,
                            &legacy,
                            "{} cta {} warp {}: streamed != legacy",
                            launch.workload.name(), cta, warp
                        );
                    }
                }
            }
        }
        // The five gSuite pipelines exercise every Table II kernel kind.
        for kind in [
            KernelKind::IndexSelect,
            KernelKind::Scatter,
            KernelKind::Sgemm,
            KernelKind::Spmm,
            KernelKind::Spgemm,
            KernelKind::Elementwise,
        ] {
            prop_assert!(seen.contains(&kind), "kernel kind {kind:?} untested");
        }
    }

    #[test]
    fn trace_is_a_pure_function_of_warp_coordinates(graph in arb_graph(), seed in 0u64..50) {
        // Repeated streaming of one warp appends identical instructions —
        // trace generation holds no hidden state (the property that lets
        // the simulator regenerate traces on CTA residency churn).
        let cfg = config(GnnModel::Gcn, CompModel::Spmm, 1, 4, seed);
        let (plan, _) = build_model(&graph, &cfg).unwrap();
        let launches = plan.schedule(OptLevel::O0).launches;
        let mut buf = TraceBuf::new();
        for launch in &launches {
            let grid = launch.workload.grid();
            let cta = grid.ctas - 1;
            let first = launch.workload.trace(cta, 0);
            for _ in 0..3 {
                buf.clear();
                launch.workload.trace_into(&mut buf, cta, 0);
                prop_assert_eq!(&buf, &first, "{}", launch.workload.name());
            }
        }
    }
}
