//! Integration tests of the architectural-metric path: real GNN kernel
//! workloads through the cycle simulator, checking the invariants and the
//! qualitative shapes the paper's figures rest on.

use gsuite::core::config::{CompModel, GnnModel, RunConfig};
use gsuite::core::kernels::KernelKind;
use gsuite::core::pipeline::PipelineRun;
use gsuite::gpu::{GpuConfig, SimOptions, Simulator};
use gsuite::graph::datasets::Dataset;

use gsuite::profile::{KernelStats, Profiler, SimProfiler};

fn profile_kernels(cfg: &RunConfig, sim: &SimProfiler) -> Vec<(KernelKind, KernelStats)> {
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, cfg).unwrap();
    run.launches
        .iter()
        .map(|l| (l.kind, sim.profile(l.workload.as_ref())))
        .collect()
}

fn base_config() -> RunConfig {
    RunConfig {
        model: GnnModel::Gin,
        comp: CompModel::Mp,
        dataset: Dataset::Cora,
        scale: 0.05,
        layers: 1,
        hidden: 8,
        functional_math: false,
        ..RunConfig::default()
    }
}

#[test]
fn simulator_invariants_hold_for_every_kernel_kind() {
    let sim = SimProfiler::scaled(4).max_ctas(Some(128));
    let mut kinds_seen = Vec::new();
    for comp in [CompModel::Mp, CompModel::Spmm] {
        let cfg = RunConfig {
            comp,
            model: GnnModel::Gcn,
            ..base_config()
        };
        for (kind, stats) in profile_kernels(&cfg, &sim) {
            kinds_seen.push(kind);
            assert!(stats.time_ms > 0.0, "{kind}: zero time");
            assert!(stats.l1.hits <= stats.l1.accesses, "{kind}");
            assert!(stats.l2.hits <= stats.l2.accesses, "{kind}");
            assert!(stats.instr_mix.total() > 0, "{kind}");
            let stalls = stats.stalls.expect("sim reports stalls");
            assert_eq!(
                stalls.issued,
                stats.instr_mix.total(),
                "{kind}: one issued warp-slot per instruction"
            );
            assert!((0.0..=1.0).contains(&stats.compute_utilization), "{kind}");
            assert!((0.0..=1.0).contains(&stats.memory_utilization), "{kind}");
        }
    }
    for expected in [
        KernelKind::Scatter,
        KernelKind::Sgemm,
        KernelKind::IndexSelect,
        KernelKind::Spgemm,
        KernelKind::Spmm,
    ] {
        assert!(kinds_seen.contains(&expected), "missing {expected}");
    }
}

#[test]
fn hot_destination_scatter_slower_than_spread() {
    // The paper's atomic-contention observation: a hot destination
    // serializes the scatter reduce. Same unique edge count in both
    // topologies, only the destination distribution differs.
    use gsuite::graph::EdgeList;
    use gsuite::tensor::DenseMatrix;
    let n = 2_000usize;
    let sim = SimProfiler::scaled(4);
    let time_for = |pairs: Vec<(u32, u32)>| -> f64 {
        let edges = EdgeList::from_pairs(n, &pairs).unwrap();
        let graph = gsuite::graph::Graph::new(edges, DenseMatrix::zeros(n, 16)).unwrap();
        let cfg = RunConfig {
            functional_math: false,
            layers: 1,
            hidden: 8,
            ..RunConfig::default()
        };
        use gsuite::core::models::build_model;
        let (plan, _) = build_model(&graph, &cfg).unwrap();
        plan.schedule(gsuite::core::OptLevel::O0)
            .launches
            .iter()
            .filter(|l| l.kind == KernelKind::Scatter)
            .map(|l| sim.profile(l.workload.as_ref()).time_ms)
            .sum()
    };
    // Hot: everyone points at node 0. Spread: a ring.
    let hot = time_for((1..n as u32).map(|i| (i, 0)).collect());
    let spread = time_for((0..n as u32 - 1).map(|i| (i, i + 1)).collect());
    assert!(
        hot > spread * 1.5,
        "hot-destination scatter ({hot:.4} ms) should far exceed ring ({spread:.4} ms)"
    );
}

#[test]
fn wider_features_increase_aggregation_time() {
    let sim = SimProfiler::scaled(4).max_ctas(Some(256));
    let time_at = |hidden: usize| -> f64 {
        let cfg = RunConfig {
            hidden,
            model: GnnModel::Gcn, // aggregation runs at hidden width
            ..base_config()
        };
        profile_kernels(&cfg, &sim)
            .into_iter()
            .filter(|(k, _)| *k == KernelKind::IndexSelect)
            .map(|(_, s)| s.time_ms)
            .sum()
    };
    assert!(time_at(64) > time_at(4));
}

#[test]
fn cta_sampling_reports_fraction_and_extrapolates() {
    let cfg = RunConfig {
        model: GnnModel::Gin, // big gather grids
        ..base_config()
    };
    let graph = cfg.load_graph();
    let run = PipelineRun::build(&graph, &cfg).unwrap();
    let is = run
        .launches
        .iter()
        .find(|l| l.kind == KernelKind::IndexSelect)
        .unwrap();
    let full = Simulator::new(GpuConfig::v100_scaled(4), SimOptions::default());
    let sampled = Simulator::new(
        GpuConfig::v100_scaled(4),
        SimOptions {
            max_ctas: Some(8),
            max_cycles: None,
        },
    );
    let f = full.run(is.workload.as_ref());
    let s = sampled.run(is.workload.as_ref());
    assert!((f.sampled_fraction - 1.0).abs() < 1e-12);
    assert!(s.sampled_fraction < 1.0);
    // The extrapolated time estimate lands within a small factor.
    let ratio = s.time_ms / f.time_ms;
    assert!(
        (0.2..5.0).contains(&ratio),
        "extrapolation off by {ratio}x ({} vs {})",
        s.time_ms,
        f.time_ms
    );
}

#[test]
fn gcn_aggregation_idles_more_than_gin_on_small_graphs() {
    // Fig. 7's headline: GCN MP kernels (hidden width) leave the machine
    // idle on small datasets; GIN (input width) keeps it busy.
    let sim = SimProfiler::scaled(16).max_ctas(Some(2048));
    let idle_share = |model: GnnModel| -> f64 {
        let cfg = RunConfig {
            model,
            dataset: Dataset::Cora,
            scale: 0.25,
            layers: 1,
            hidden: 8,
            functional_math: false,
            ..RunConfig::default()
        };
        let mut idle = 0u64;
        let mut total = 0u64;
        for (kind, stats) in profile_kernels(&cfg, &sim) {
            if kind == KernelKind::IndexSelect || kind == KernelKind::Scatter {
                let occ = stats.occupancy.expect("sim occupancy");
                idle += occ.idle;
                total += occ.total();
            }
        }
        idle as f64 / total.max(1) as f64
    };
    let gcn = idle_share(GnnModel::Gcn);
    let gin = idle_share(GnnModel::Gin);
    assert!(
        gcn > gin,
        "GCN idle share ({gcn:.3}) should exceed GIN's ({gin:.3})"
    );
}

#[test]
fn narrow_features_land_in_low_occupancy_buckets() {
    // LiveJournal's f=1 drives SpMM/aggregation warps into the W8 bucket.
    let sim = SimProfiler::scaled(4).max_ctas(Some(256));
    let cfg = RunConfig {
        dataset: Dataset::LiveJournal,
        scale: 0.0002,
        model: GnnModel::Gin,
        comp: CompModel::Spmm,
        layers: 1,
        hidden: 8,
        functional_math: false,
        ..RunConfig::default()
    };
    for (kind, stats) in profile_kernels(&cfg, &sim) {
        if kind == KernelKind::Spmm {
            let occ = stats.occupancy.expect("sim occupancy");
            assert!(
                occ.w8 > occ.w32,
                "f=1 SpMM should be W8-heavy: w8={} w32={}",
                occ.w8,
                occ.w32
            );
        }
    }
}
