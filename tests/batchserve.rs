//! The cross-request batching layer's guarantees, locked at the
//! workspace level — the PR's differential batched ≡ unbatched
//! contract:
//!
//! 1. **Member bit-identity** — for every model × computational model ×
//!    framework combination the pipeline can build, each member of a
//!    merged batch ([`PipelineRun::build_merged`]) produces exactly the
//!    output the solo build produces, bit for bit; combinations the
//!    merge former refuses (`merge_class == None` for a single-GPU,
//!    non-sweep config) are exactly the statically-unbuildable ones.
//! 2. **Batch-of-one ≡ solo** — a merged batch with one member compiles
//!    to the same launch stream, peak-bytes accounting and output as
//!    the plain solo pipeline.
//! 3. **Template-cache parity** — a repeat-shape merged batch served
//!    from the template cache is bit-identical to the full merged
//!    compile (output, parts, peak bytes, launch kinds), and the cache
//!    state advances hit/miss/instantiate exactly once each.
//! 4. **Serving-layer determinism** — a batched sim-clock loadgen run
//!    is a pure function of `(scenario, seed, parameters)`: reports,
//!    Chrome-trace JSON and metrics exposition are byte-identical
//!    across repeated runs and `--threads`; with `max_batch == 1` the
//!    report collapses to the unbatched report byte-for-byte.
//! 5. **Former properties** — the streaming [`BatchFormer`] matches a
//!    brute-force reference model on random arrival sequences ×
//!    policies, never violates `max_batch`/`max_queue_delay_ms`, never
//!    starves a request, and preserves FIFO-within-batch order
//!    (mirrors the LRU/breaker oracle style in `tests/serve.rs`).

use proptest::prelude::*;

use gsuite::core::config::{CompModel, FrameworkKind, GnnModel, RunConfig};
use gsuite::core::pipeline::{PipelineRun, WorkerScratch};
use gsuite::core::plan::batchmerge::merge_class;
use gsuite::core::plan::template::TemplateCache;
use gsuite::serve::sim::{BatchArrival, BatchFormer, BatchPolicy, FormedBatch, FormerEvent};
use gsuite::serve::{run_loadgen, run_loadgen_traced, ArrivalMode, ClockMode, LoadSpec};
use gsuite::telemetry::json;

/// Bitwise f32 equality — the differential layer's definition of
/// "identical": not approximately equal, the same bytes.
fn bits(m: &gsuite::tensor::DenseMatrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn ego_config(model: GnnModel, comp: CompModel, framework: FrameworkKind, node: u32) -> RunConfig {
    RunConfig {
        model,
        comp,
        framework,
        scale: 0.05,
        hidden: 8,
        functional_math: true,
        seed_node: Some(node),
        fanout: vec![4, 4],
        ..RunConfig::default()
    }
}

// ---------------------------------------------------------------------------
// 1. Every model × format × framework: merged members ≡ solo builds.
// ---------------------------------------------------------------------------

#[test]
fn every_model_and_format_mix_merges_bit_identical_to_solo() {
    let models = [
        GnnModel::Gcn,
        GnnModel::Gin,
        GnnModel::Sage,
        GnnModel::Gat,
        GnnModel::Sgc,
        GnnModel::Rgcn,
    ];
    let comps = [CompModel::Mp, CompModel::Spmm];
    let frameworks = [
        FrameworkKind::GSuite,
        FrameworkKind::PygLike,
        FrameworkKind::DglLike,
    ];
    let (mut covered, mut refused) = (0usize, 0usize);
    for framework in frameworks {
        for model in models {
            for comp in comps {
                let configs: Vec<RunConfig> = [3u32, 9, 27]
                    .iter()
                    .map(|&n| ego_config(model, comp, framework, n))
                    .collect();
                let graph = configs[0].load_graph();
                let Some(class) = merge_class(&configs[0]) else {
                    // The former refuses exactly the statically-unbuildable
                    // combinations: the solo build must fail too, so a
                    // merged batch never carries a poison member.
                    refused += 1;
                    assert!(
                        PipelineRun::build(&graph, &configs[0]).is_err(),
                        "{model:?}/{comp:?}/{framework:?}: refused to merge yet solo-buildable"
                    );
                    continue;
                };
                covered += 1;
                for c in &configs[1..] {
                    assert_eq!(merge_class(c).as_ref(), Some(&class), "seed node leaked");
                }
                let (run, parts) =
                    PipelineRun::build_merged(&graph, &configs).unwrap_or_else(|e| {
                        panic!("{model:?}/{comp:?}/{framework:?}: merged build failed: {e}")
                    });
                assert_eq!(parts.len(), configs.len());
                let mut stacked = Vec::new();
                for (config, part) in configs.iter().zip(&parts) {
                    let solo = PipelineRun::build(&graph, config).expect("solo build");
                    assert_eq!(
                        bits(&part.output),
                        bits(&solo.output),
                        "{model:?}/{comp:?}/{framework:?} seed_node={:?}: member diverged",
                        config.seed_node
                    );
                    assert!(part.nodes > 0 && part.edges > 0);
                    stacked.extend(bits(&part.output));
                }
                // The combined plan's output is the members stacked row-wise.
                assert_eq!(bits(&run.output), stacked, "stacking order broke");
            }
        }
    }
    // 3 frameworks × 6 models × 2 comps = 36 combos; the refused set is
    // the fixed unsupported list, everything else is proven above.
    assert_eq!(covered + refused, 36);
    assert!(covered >= 29, "only {covered} combos covered");
}

/// Full-graph requests with *different* models over the same dataset
/// merge block-diagonally, and every member keeps its solo output.
#[test]
fn heterogeneous_full_graph_batch_members_match_solo() {
    let base = RunConfig {
        scale: 0.05,
        hidden: 8,
        functional_math: true,
        ..RunConfig::default()
    };
    let configs = vec![
        base.clone(),
        RunConfig {
            model: GnnModel::Gin,
            seed: 7,
            ..base.clone()
        },
        RunConfig {
            model: GnnModel::Sgc,
            ..base.clone()
        },
    ];
    let class = merge_class(&configs[0]).expect("full-graph mergeable");
    for c in &configs[1..] {
        assert_eq!(
            merge_class(c).as_ref(),
            Some(&class),
            "model leaked into class"
        );
    }
    let graph = base.load_graph();
    let (_, parts) = PipelineRun::build_merged(&graph, &configs).expect("merged build");
    for (config, part) in configs.iter().zip(&parts) {
        let solo = PipelineRun::build(&graph, config).expect("solo build");
        assert_eq!(bits(&part.output), bits(&solo.output), "{}", config.label());
        assert_eq!(
            (part.nodes, part.edges),
            (graph.num_nodes(), graph.num_edges())
        );
    }
}

// ---------------------------------------------------------------------------
// 2. Batch of one ≡ the solo pipeline, peak bytes included.
// ---------------------------------------------------------------------------

#[test]
fn batch_of_one_is_bit_identical_to_the_solo_pipeline() {
    let config = ego_config(GnnModel::Gcn, CompModel::Mp, FrameworkKind::GSuite, 11);
    let graph = config.load_graph();
    let solo = PipelineRun::build(&graph, &config).expect("solo build");
    let (merged, parts) =
        PipelineRun::build_merged(&graph, std::slice::from_ref(&config)).expect("merged build");
    assert_eq!(parts.len(), 1);
    assert_eq!(bits(&merged.output), bits(&solo.output));
    assert_eq!(bits(&parts[0].output), bits(&solo.output));
    assert_eq!(
        merged.peak_device_bytes, solo.peak_device_bytes,
        "a batch of one must not change the memory plan"
    );
    let kinds = |run: &PipelineRun| run.launches.iter().map(|l| l.kind).collect::<Vec<_>>();
    assert_eq!(kinds(&merged), kinds(&solo), "launch stream diverged");
}

// ---------------------------------------------------------------------------
// 3. Template-cache parity: hit ≡ miss, cache state advances exactly.
// ---------------------------------------------------------------------------

#[test]
fn template_hit_reproduces_the_full_merged_compile() {
    let configs: Vec<RunConfig> = [5u32, 17, 23]
        .iter()
        .map(|&n| ego_config(GnnModel::Gin, CompModel::Spmm, FrameworkKind::GSuite, n))
        .collect();
    let graph = configs[0].load_graph();
    let templates = TemplateCache::new();
    let mut scratch = WorkerScratch::new();

    let (cold, cold_parts) =
        PipelineRun::build_merged_with_templates(&graph, &configs, &templates, &mut scratch)
            .expect("cold merged build");
    let after_miss = templates.stats();
    assert_eq!((after_miss.misses, after_miss.hits), (1, 0));
    assert_eq!(after_miss.entries, 1, "cold build must capture a template");

    let (warm, warm_parts) =
        PipelineRun::build_merged_with_templates(&graph, &configs, &templates, &mut scratch)
            .expect("warm merged build");
    let after_hit = templates.stats();
    assert_eq!((after_hit.misses, after_hit.hits), (1, 1));
    assert_eq!(after_hit.instantiates, 1);

    assert_eq!(bits(&warm.output), bits(&cold.output));
    assert_eq!(warm.peak_device_bytes, cold.peak_device_bytes);
    let kinds = |run: &PipelineRun| run.launches.iter().map(|l| l.kind).collect::<Vec<_>>();
    assert_eq!(kinds(&warm), kinds(&cold));
    assert_eq!(warm_parts.len(), cold_parts.len());
    for (w, c) in warm_parts.iter().zip(&cold_parts) {
        assert_eq!(bits(&w.output), bits(&c.output));
        assert_eq!((w.nodes, w.edges), (c.nodes, c.edges));
    }
}

// ---------------------------------------------------------------------------
// 4. Serving-layer determinism: reports, traces, metrics.
// ---------------------------------------------------------------------------

fn batched_spec() -> LoadSpec {
    LoadSpec {
        requests: 64,
        seed: 42,
        arrival: ArrivalMode::Open { rate_rps: 400.0 },
        clock: ClockMode::Sim,
        batch: Some(BatchPolicy {
            max_batch: 4,
            max_queue_delay_ms: 5.0,
            max_backlog: 0,
        }),
        ..LoadSpec::default()
    }
}

#[test]
fn batched_sim_runs_are_byte_identical_across_runs_and_threads() {
    let spec = batched_spec();
    let (report_a, trace_a) = run_loadgen_traced(&spec).expect("traced batched run");
    let (report_b, trace_b) = run_loadgen_traced(&spec).expect("traced batched rerun");

    let json_a = trace_a.to_chrome_json();
    assert_eq!(
        json_a,
        trace_b.to_chrome_json(),
        "batched trace must replay"
    );
    json::validate(&json_a).expect("exported trace is valid JSON");
    assert_eq!(report_a.render(), report_b.render());
    assert_eq!(report_a.to_json(), report_b.to_json());
    assert_eq!(report_a.metrics().render(), report_b.metrics().render());

    let wide = LoadSpec {
        threads: 4,
        ..batched_spec()
    };
    let (report_w, trace_w) = run_loadgen_traced(&wide).expect("wide batched run");
    assert_eq!(json_a, trace_w.to_chrome_json(), "threads leak into trace");
    assert_eq!(report_a.metrics().render(), report_w.metrics().render());

    // The run actually batched, and the orchestration spans are
    // accounted in the phase breakdown.
    let batch = report_a.batch.as_ref().expect("batch summary present");
    assert!(batch.batches > 0, "no batches dispatched");
    assert!(batch.batched_requests >= batch.batches);
    for phase in ["batch.form", "batch.scatter"] {
        assert!(
            report_a.phases.iter().any(|(name, _)| name == phase),
            "missing {phase} phase"
        );
    }
    let render = report_a.render();
    assert!(render.contains("batch:"), "render must surface the summary");
}

#[test]
fn max_batch_one_report_collapses_to_the_unbatched_report() {
    let unbatched = LoadSpec {
        batch: None,
        ..batched_spec()
    };
    let degenerate = LoadSpec {
        batch: Some(BatchPolicy {
            max_batch: 1,
            max_queue_delay_ms: 0.0,
            max_backlog: 0,
        }),
        ..batched_spec()
    };
    let solo = run_loadgen(&unbatched).expect("unbatched run");
    let batched = run_loadgen(&degenerate).expect("max_batch=1 run");
    let mut stripped = batched.clone();
    stripped.batch = None;
    assert_eq!(
        stripped, solo,
        "max_batch=1 must serve every request exactly like the unbatched path"
    );
}

// ---------------------------------------------------------------------------
// 5. The batch former vs a brute-force reference model.
// ---------------------------------------------------------------------------

/// The brute-force former: no ordering cleverness, no streaming state
/// discipline — it re-scans every open batch at every step. Same
/// observable semantics as [`BatchFormer`] by construction of the spec,
/// not by sharing code.
struct ModelFormer {
    policy: BatchPolicy,
    open: Vec<(f64, usize, Vec<BatchArrival>)>,
}

impl ModelFormer {
    fn new(policy: BatchPolicy) -> Self {
        ModelFormer {
            policy,
            open: Vec::new(),
        }
    }

    fn dispatch_expired(&mut self, now: f64, out: &mut Vec<FormerEvent>) {
        // Oldest head first, full scan every time.
        while let Some(i) = self
            .open
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .map(|(i, _)| i)
        {
            let (head, _, _) = self.open[i];
            if head + self.policy.max_queue_delay_ms > now {
                break;
            }
            let (head_ms, _, members) = self.open.remove(i);
            out.push(FormerEvent::Dispatch(FormedBatch {
                dispatch_ms: head_ms + self.policy.max_queue_delay_ms,
                head_ms,
                members,
            }));
        }
    }

    fn offer(&mut self, arrival: BatchArrival, out: &mut Vec<FormerEvent>) {
        self.dispatch_expired(arrival.at_ms, out);
        let singleton = |a: BatchArrival| {
            FormerEvent::Dispatch(FormedBatch {
                dispatch_ms: a.at_ms,
                head_ms: a.at_ms,
                members: vec![a],
            })
        };
        let Some(group) = arrival.group else {
            out.push(singleton(arrival));
            return;
        };
        let joinable = self
            .open
            .iter()
            .enumerate()
            .filter(|(_, (_, g, _))| *g == group)
            .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .map(|(i, _)| i);
        if let Some(i) = joinable {
            self.open[i].2.push(arrival);
            if self.open[i].2.len() >= self.policy.max_batch {
                let (head_ms, _, members) = self.open.remove(i);
                let filled = members.last().expect("non-empty").at_ms;
                out.push(FormerEvent::Dispatch(FormedBatch {
                    dispatch_ms: filled,
                    head_ms,
                    members,
                }));
            }
        } else if self.policy.max_backlog > 0 && self.open.len() >= self.policy.max_backlog {
            out.push(FormerEvent::Shed(arrival));
        } else if self.policy.max_batch <= 1 {
            out.push(singleton(arrival));
        } else {
            self.open.push((arrival.at_ms, group, vec![arrival]));
        }
    }

    fn flush(&mut self, out: &mut Vec<FormerEvent>) {
        self.open.sort_by(|a, b| a.0.total_cmp(&b.0));
        for (head_ms, _, members) in self.open.drain(..) {
            out.push(FormerEvent::Dispatch(FormedBatch {
                dispatch_ms: head_ms + self.policy.max_queue_delay_ms,
                head_ms,
                members,
            }));
        }
    }
}

fn run_real(policy: BatchPolicy, arrivals: &[BatchArrival]) -> Vec<FormerEvent> {
    let mut former = BatchFormer::new(policy);
    let mut events = Vec::new();
    for a in arrivals {
        former.offer(a.clone(), &mut |e| events.push(e));
    }
    former.flush(&mut |e| events.push(e));
    events
}

fn run_model(policy: BatchPolicy, arrivals: &[BatchArrival]) -> Vec<FormerEvent> {
    let mut model = ModelFormer::new(policy);
    let mut events = Vec::new();
    for a in arrivals {
        model.offer(a.clone(), &mut events);
    }
    model.flush(&mut events);
    events
}

/// The satellite's property bundle, checked on the real former's event
/// stream directly (independent of the reference comparison).
fn check_former_invariants(policy: BatchPolicy, arrivals: &[BatchArrival], events: &[FormerEvent]) {
    let cap = policy.max_batch.max(1);
    let mut resolved: Vec<u64> = Vec::new();
    let mut last_event_ms = f64::NEG_INFINITY;
    for event in events {
        match event {
            FormerEvent::Dispatch(batch) => {
                assert!(!batch.members.is_empty(), "empty dispatch");
                assert!(batch.members.len() <= cap, "max_batch violated");
                assert_eq!(batch.head_ms, batch.members[0].at_ms);
                assert!(
                    batch.dispatch_ms <= batch.head_ms + policy.max_queue_delay_ms,
                    "head starved past its delay budget"
                );
                assert!(batch.dispatch_ms >= batch.members.last().expect("non-empty").at_ms);
                // FIFO within the batch: members keep arrival order.
                for pair in batch.members.windows(2) {
                    assert!(pair[0].index < pair[1].index, "batch reordered members");
                    assert!(pair[0].at_ms <= pair[1].at_ms);
                }
                assert!(batch.dispatch_ms >= last_event_ms, "time ran backwards");
                last_event_ms = batch.dispatch_ms;
                resolved.extend(batch.members.iter().map(|m| m.index));
            }
            FormerEvent::Shed(a) => {
                assert!(a.group.is_some(), "group-less arrivals never shed");
                assert!(policy.max_backlog > 0, "shed with no backlog bound");
                assert!(a.at_ms >= last_event_ms, "time ran backwards");
                last_event_ms = a.at_ms;
                resolved.push(a.index);
            }
        }
    }
    // No request starves, none is duplicated: after flush, every arrival
    // resolved exactly once.
    let mut expected: Vec<u64> = arrivals.iter().map(|a| a.index).collect();
    expected.sort_unstable();
    resolved.sort_unstable();
    assert_eq!(resolved, expected, "arrivals lost or duplicated");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn former_matches_brute_force_reference(
        max_batch in 1usize..6,
        delay_halves in 0u8..8,
        max_backlog in 0usize..4,
        steps in proptest::collection::vec(
            // (gap, group): half-ms gaps keep every timestamp binary-exact,
            // so reference and real former face identical tie-breaks;
            // group 0 encodes "unmergeable" (`None`).
            (0u8..5, 0usize..4),
            0..60,
        ),
    ) {
        let policy = BatchPolicy {
            max_batch,
            max_queue_delay_ms: f64::from(delay_halves) * 0.5,
            max_backlog,
        };
        let mut at_ms = 0.0;
        let arrivals: Vec<BatchArrival> = steps
            .iter()
            .enumerate()
            .map(|(i, &(gap, group))| {
                at_ms += f64::from(gap) * 0.5;
                let group = group.checked_sub(1);
                BatchArrival { index: i as u64, key: i % 5, group, at_ms }
            })
            .collect();
        let real = run_real(policy, &arrivals);
        let model = run_model(policy, &arrivals);
        prop_assert_eq!(&real, &model, "streaming former diverged from reference");
        check_former_invariants(policy, &arrivals, &real);
    }
}
