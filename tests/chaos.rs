//! Chaos-mode guarantees, locked at the workspace level:
//!
//! 1. **Fault replay determinism** — a sim-clock loadgen run with fault
//!    injection and the full resilience policy enabled is a pure function
//!    of `(spec, fault seed)`: byte-identical reports (text and JSON)
//!    across repeated runs and across profiling thread counts.
//! 2. **Worker supervision** — N injected panics produce exactly N
//!    counted crashes and N respawns, and every submitted request still
//!    completes with a typed reject code: nothing is lost or hung.
//! 3. **Breaker correctness** — the closed/open/half-open circuit
//!    breaker agrees with a brute-force reference state machine under
//!    random admit/record/clock-advance sequences.
//! 4. **Cancellation hygiene** — a deadline that cancels a build mid-way
//!    leaves the pipeline cache and device-memory accounting exactly as
//!    if the request had never arrived.

use proptest::prelude::*;

use gsuite::scenarios::BenchOpts;
use gsuite::serve::fault::{
    BreakerConfig, BreakerState, CircuitBreaker, FaultPlan, FaultSpec, RejectReason,
    ResilienceConfig, RetryPolicy,
};
use gsuite::serve::{run_loadgen, LoadSpec, ServeConfig, ServeRequest, Server};

// ---------------------------------------------------------------------------
// 1. Fault replay determinism (the acceptance criterion).
// ---------------------------------------------------------------------------

fn chaos_loadspec() -> LoadSpec {
    LoadSpec {
        requests: 96,
        fault: Some(FaultPlan::mixed(7, 0.25)),
        resilience: ResilienceConfig {
            deadline_ms: Some(900.0),
            retry: RetryPolicy::retries(2),
            breaker: Some(BreakerConfig::default()),
            degrade: true,
            stale_ttl_ms: Some(5_000.0),
        },
        opts: BenchOpts::golden(),
        ..LoadSpec::default()
    }
}

#[test]
fn injected_fault_loadgen_is_byte_identical_across_runs_and_threads() {
    let a = run_loadgen(&chaos_loadspec()).expect("chaos loadgen runs");
    let b = run_loadgen(&chaos_loadspec()).expect("chaos loadgen runs");
    assert_eq!(a, b, "same (spec, fault seed), same report");
    assert_eq!(a.render(), b.render(), "byte-identical text report");
    assert_eq!(a.to_json(), b.to_json(), "byte-identical JSON report");

    // The profiling fan-out width must not leak into fault draws.
    for threads in [1, 3, 8] {
        let t = run_loadgen(&LoadSpec {
            threads,
            ..chaos_loadspec()
        })
        .expect("chaos loadgen runs");
        assert_eq!(a.render(), t.render(), "threads={threads}");
        assert_eq!(a.to_json(), t.to_json(), "threads={threads}");
    }

    // The injection actually did something, and the report reflects it.
    assert!(a.fault_mode, "fault runs flip the report into fault mode");
    let res = a.resilience;
    assert!(
        res.retries + res.timeouts + res.crashed + res.degraded > 0,
        "a 25% mixed fault rate must leave visible resilience traffic: {}",
        a.render()
    );
    assert!(a.availability() > 0.0 && a.availability() <= 1.0);

    // A different fault seed perturbs the outcome stream.
    let other = run_loadgen(&LoadSpec {
        fault: Some(FaultPlan::mixed(8, 0.25)),
        ..chaos_loadspec()
    })
    .expect("chaos loadgen runs");
    assert_ne!(a.render(), other.render(), "fault seed must matter");
}

// ---------------------------------------------------------------------------
// 2. Worker supervision under injected panics.
// ---------------------------------------------------------------------------

#[test]
fn injected_panics_are_all_supervised_and_respawned() {
    let crash_plan = FaultPlan {
        seed: 3,
        spec: FaultSpec {
            crash_rate: 1.0,
            ..FaultSpec::none()
        },
    };
    let server = Server::start(ServeConfig {
        workers: 2,
        fault: Some(crash_plan),
        ..ServeConfig::golden()
    });
    // Distinct configurations: no coalescing, one injected panic each.
    let n = 5u64;
    let rxs: Vec<_> = (0..n)
        .map(|i| {
            let line = format!("model=gcn dataset=cora scale=0.0{}", 2 + i);
            let req = ServeRequest::parse_line(&line).expect("parses");
            server.submit(req).expect("accepted")
        })
        .collect();
    for rx in rxs {
        let done = rx.recv().expect("crashed requests still complete");
        assert_eq!(done.reject, Some(RejectReason::Crashed));
        assert!(done.outcome.is_err());
        assert!(
            done.to_line().contains("code=crashed"),
            "{}",
            done.to_line()
        );
    }
    let stats = server.stats();
    assert_eq!(stats.crashed, n, "every injected panic is counted");
    assert_eq!(stats.respawns, n, "one respawn per crash");
    assert_eq!(stats.completed, n, "no request lost or hung");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// 3. Circuit breaker vs a brute-force reference state machine.
// ---------------------------------------------------------------------------

/// An independent oracle for the breaker's documented semantics.
struct ModelBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    window: Vec<bool>,
    opened_at_ms: f64,
    probes: usize,
    trips: u64,
}

impl ModelBreaker {
    fn new(cfg: BreakerConfig) -> Self {
        ModelBreaker {
            cfg,
            state: BreakerState::Closed,
            window: Vec::new(),
            opened_at_ms: 0.0,
            probes: 0,
            trips: 0,
        }
    }

    fn tick(&mut self, now_ms: f64) {
        if self.state == BreakerState::Open && now_ms >= self.opened_at_ms + self.cfg.cooldown_ms {
            self.state = BreakerState::HalfOpen;
            self.probes = 0;
        }
    }

    fn admit(&mut self, now_ms: f64) -> bool {
        self.tick(now_ms);
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => {
                if self.probes < self.cfg.half_open_probes {
                    self.probes += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn trip(&mut self, now_ms: f64) {
        self.state = BreakerState::Open;
        self.opened_at_ms = now_ms;
        self.window.clear();
        self.probes = 0;
        self.trips += 1;
    }

    fn record(&mut self, now_ms: f64, success: bool) {
        self.tick(now_ms);
        match self.state {
            BreakerState::Closed => {
                self.window.push(success);
                let excess = self.window.len().saturating_sub(self.cfg.window);
                self.window.drain(..excess);
                if self.window.len() >= self.cfg.min_samples.max(1) {
                    let failures = self.window.iter().filter(|ok| !**ok).count();
                    if failures as f64 / self.window.len() as f64 >= self.cfg.fail_threshold {
                        self.trip(now_ms);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if success {
                    self.state = BreakerState::Closed;
                    self.window.clear();
                } else {
                    self.trip(now_ms);
                }
            }
            BreakerState::Open => {} // stale outcome from before the trip
        }
    }
}

#[test]
fn breaker_walks_the_documented_state_machine() {
    let cfg = BreakerConfig {
        window: 4,
        min_samples: 2,
        fail_threshold: 0.5,
        cooldown_ms: 100.0,
        half_open_probes: 1,
    };
    let mut b = CircuitBreaker::new(cfg);
    assert_eq!(b.state(0.0), BreakerState::Closed);
    // Two failures trip it open.
    assert!(b.admit(0.0));
    b.record(1.0, false);
    assert!(b.admit(2.0));
    b.record(3.0, false);
    assert_eq!(b.state(4.0), BreakerState::Open);
    assert_eq!(b.trips(), 1);
    assert!(!b.admit(50.0), "open rejects before the cooldown");
    // Cooldown elapses: half-open admits exactly one probe.
    assert_eq!(b.state(103.0), BreakerState::HalfOpen);
    assert!(b.admit(104.0));
    assert!(!b.admit(105.0), "probe budget spent");
    // Probe failure re-opens; probe success after the next cooldown closes.
    b.record(106.0, false);
    assert_eq!(b.state(107.0), BreakerState::Open);
    assert_eq!(b.trips(), 2);
    assert!(b.admit(206.5));
    b.record(207.0, true);
    assert_eq!(b.state(208.0), BreakerState::Closed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random (clock advance, outcome) sequences: admissions, states and
    /// trip counts agree with the oracle at every step.
    #[test]
    fn breaker_matches_reference_model(
        ops in proptest::collection::vec((0u32..150, proptest::bool::ANY), 0..200),
    ) {
        let cfg = BreakerConfig {
            window: 6,
            min_samples: 3,
            fail_threshold: 0.5,
            cooldown_ms: 80.0,
            half_open_probes: 2,
        };
        let mut real = CircuitBreaker::new(cfg);
        let mut model = ModelBreaker::new(cfg);
        let mut now_ms = 0.0;
        for (advance, success) in ops {
            now_ms += f64::from(advance);
            let admitted = real.admit(now_ms);
            prop_assert_eq!(admitted, model.admit(now_ms), "admit at t={}", now_ms);
            if admitted {
                real.record(now_ms, success);
                model.record(now_ms, success);
            }
            prop_assert_eq!(real.state(now_ms), model.state, "state at t={}", now_ms);
            prop_assert_eq!(real.trips(), model.trips, "trips at t={}", now_ms);
        }
    }
}

// ---------------------------------------------------------------------------
// 4. Deadline cancellation leaves accounting untouched.
// ---------------------------------------------------------------------------

#[test]
fn cancelled_deadline_leaves_cache_and_memory_accounting_consistent() {
    // Server A sees a request whose deadline has effectively already
    // expired (cancelled at the first build checkpoint), then a clean
    // run of the same configuration. Server B sees only the clean run.
    let line = "model=gcn dataset=cora scale=0.05";
    let server_a = Server::start(ServeConfig::golden());
    let doomed = ServeRequest {
        deadline_ms: Some(0.000_001),
        ..ServeRequest::parse_line(line).expect("parses")
    };
    let done = server_a
        .submit(doomed)
        .expect("accepted")
        .recv()
        .expect("delivered");
    assert_eq!(done.reject, Some(RejectReason::DeadlineExceeded));
    let after_timeout = server_a.stats();
    assert_eq!(after_timeout.timeouts, 1);
    assert_eq!(after_timeout.cache.misses, 0, "never reached the cache");
    assert_eq!(after_timeout.cache.insertions, 0, "nothing was built");
    assert_eq!(after_timeout.cache.bytes_in_use, 0, "no bytes leaked");
    assert_eq!(after_timeout.peak_device_bytes, 0, "no device accounting");

    let clean = |server: &Server| {
        let req = ServeRequest::parse_line(line).expect("parses");
        server
            .submit(req)
            .expect("accepted")
            .recv()
            .expect("delivered")
    };
    let from_a = clean(&server_a);
    let server_b = Server::start(ServeConfig::golden());
    let from_b = clean(&server_b);

    // The cancelled request left no trace: profiles are bit-identical
    // and every cache/memory counter matches the fresh server.
    assert_eq!(
        from_a.outcome.as_ref().expect("a builds"),
        from_b.outcome.as_ref().expect("b builds"),
    );
    let (a, b) = (server_a.stats(), server_b.stats());
    assert_eq!(a.cache.misses, b.cache.misses);
    assert_eq!(a.cache.insertions, b.cache.insertions);
    assert_eq!(a.cache.bytes_in_use, b.cache.bytes_in_use);
    assert_eq!(a.cache.entries, b.cache.entries);
    assert_eq!(a.peak_device_bytes, b.peak_device_bytes);
    assert_eq!(a.shard_peak_device_bytes, b.shard_peak_device_bytes);
    server_a.shutdown();
    server_b.shutdown();
}
