//! Plan-template equivalence suite — the lock on the serve fast path
//! (`gsuite_core::plan::template`):
//!
//! * An **instantiated** pipeline (template hit: skip
//!   lower/optimize/decorate, rebind the cached plan, re-schedule) is
//!   **bit-identical** to a full compile — same launch kinds, grids and
//!   full sampled address traces, same functional output, same peak
//!   device bytes — for every model × format × O0/O2, including
//!   mini-batch sampled configs.
//! * Sharded multi-GPU configs are explicitly *not* templatable
//!   (`TemplateKey::of` → `None`): `build_with_templates` still builds
//!   them, identically, without touching the cache.
//! * The same equivalence holds on random power-law graphs (proptest).

use gsuite::core::config::{CompModel, GnnModel, RunConfig};
use gsuite::core::pipeline::PipelineRun;
use gsuite::core::plan::template::{TemplateCache, TemplateKey};
use gsuite::core::OptLevel;
use gsuite::gpu::TraceBuf;
use gsuite::graph::datasets::Dataset;
use gsuite::graph::{Graph, GraphGenerator, GraphTopology};
use gsuite::scenarios::BenchOpts;
use proptest::prelude::*;

/// Every `(model, comp)` pair the suite can build (extension models
/// included; the format axis is implied by the computational model —
/// see `tests/plan_equivalence.rs`).
fn buildable_pairs() -> Vec<(GnnModel, CompModel)> {
    let mut pairs = Vec::new();
    for model in GnnModel::EXTENDED {
        for comp in CompModel::ALL {
            if comp == CompModel::Spmm && matches!(model, GnnModel::Sage | GnnModel::Gat) {
                continue; // no SpMM lowering (paper §V-A)
            }
            pairs.push((model, comp));
        }
    }
    pairs
}

/// A complete behavioural fingerprint of a launch stream: kind, workload
/// name, grid, and the full traces of a deterministic warp sample.
/// Traces embed every operand address, so equal fingerprints mean
/// byte-identical scheduled kernels — ops, addresses and launches alike.
fn fingerprint(
    run: &PipelineRun,
) -> Vec<(
    gsuite::core::kernels::KernelKind,
    String,
    gsuite::gpu::Grid,
    Vec<TraceBuf>,
)> {
    run.launches
        .iter()
        .map(|l| {
            let grid = l.workload.grid();
            let mut traces = Vec::new();
            for cta in [0, grid.ctas / 2, grid.ctas - 1] {
                for warp in [0, grid.warps_per_cta - 1] {
                    traces.push(l.workload.trace(cta, warp));
                }
            }
            (l.kind, l.workload.name(), grid, traces)
        })
        .collect()
}

/// Asserts a template-instantiated build of `config` is bit-identical
/// to a full compile: first build through a fresh cache populates the
/// template (and must itself equal `PipelineRun::build`), second build
/// is served by `Template::instantiate` and must match in every
/// observable — launches, addresses, output, peak bytes.
fn check_instantiate_equivalence(graph: &Graph, config: &RunConfig, ctx: &str) {
    let full = PipelineRun::build(graph, config).expect("full build");
    let templates = TemplateCache::new();
    let cold = PipelineRun::build_with_templates(graph, config, &templates).expect("cold build");
    let warm = PipelineRun::build_with_templates(graph, config, &templates).expect("warm build");

    for (run, label) in [(&cold, "cold"), (&warm, "instantiated")] {
        assert_eq!(
            fingerprint(&full),
            fingerprint(run),
            "{ctx}: {label} launch stream must be byte-identical to a full compile"
        );
        assert_eq!(
            full.output, run.output,
            "{ctx}: {label} functional output drifted"
        );
        assert_eq!(
            full.peak_device_bytes, run.peak_device_bytes,
            "{ctx}: {label} peak device bytes drifted"
        );
        assert_eq!(
            full.launch_count(),
            run.launch_count(),
            "{ctx}: {label} launch count drifted"
        );
    }

    // The warm build really took the fast path: no lower/optimize/
    // decorate time, and the cache counted one instantiate.
    assert_eq!(
        warm.compile_phases.full_compile_ms(),
        0.0,
        "{ctx}: instantiated build must skip lower/optimize/decorate"
    );
    let s = templates.stats();
    assert_eq!(
        (s.hits, s.misses, s.instantiates, s.entries),
        (1, 1, 1, 1),
        "{ctx}: expected exactly one miss (populate) then one instantiate"
    );
}

#[test]
fn instantiated_equals_full_compile_for_every_model_format_and_opt() {
    let opts = BenchOpts::golden();
    let dataset = Dataset::Cora;
    let graph = dataset.load_scaled(opts.scale_for(dataset));
    for (model, comp) in buildable_pairs() {
        for opt in [OptLevel::O0, OptLevel::O2] {
            let config = RunConfig {
                model,
                comp,
                dataset,
                scale: opts.scale_for(dataset),
                layers: 2,
                hidden: 8,
                opt,
                functional_math: true,
                ..RunConfig::default()
            };
            check_instantiate_equivalence(
                &graph,
                &config,
                &format!("{model}-{comp} @ {opt:?} on {dataset}"),
            );
        }
    }
}

#[test]
fn instantiated_equals_full_compile_for_minibatch_configs() {
    let opts = BenchOpts::golden();
    let dataset = Dataset::Cora;
    let graph = dataset.load_scaled(opts.scale_for(dataset));
    for opt in [OptLevel::O0, OptLevel::O2] {
        let config = RunConfig {
            dataset,
            scale: opts.scale_for(dataset),
            batch_size: 8,
            fanout: vec![4, 3],
            opt,
            functional_math: true,
            ..RunConfig::default()
        };
        check_instantiate_equivalence(&graph, &config, &format!("minibatch @ {opt:?}"));

        // A different sampling axis is a different compile shape — the
        // key must split, never alias.
        let other = RunConfig {
            batch_size: 4,
            ..config.clone()
        };
        assert_ne!(
            TemplateKey::of(&graph, &config),
            TemplateKey::of(&graph, &other),
            "batch_size is compile-relevant and must split template keys"
        );
    }
}

#[test]
fn sharded_configs_bypass_the_cache_but_still_build_identically() {
    let opts = BenchOpts::golden();
    let dataset = Dataset::Cora;
    let graph = dataset.load_scaled(opts.scale_for(dataset));
    let config = RunConfig {
        dataset,
        scale: opts.scale_for(dataset),
        gpus_per_run: 2,
        ..RunConfig::default()
    };
    assert_eq!(
        TemplateKey::of(&graph, &config),
        None,
        "sharded multi-GPU configs are not templatable"
    );
    let full = PipelineRun::build(&graph, &config).expect("full sharded build");
    let templates = TemplateCache::new();
    let a = PipelineRun::build_with_templates(&graph, &config, &templates).expect("build a");
    let b = PipelineRun::build_with_templates(&graph, &config, &templates).expect("build b");
    for run in [&a, &b] {
        assert_eq!(fingerprint(&full), fingerprint(run));
        assert_eq!(full.output, run.output);
        assert_eq!(full.peak_device_bytes, run.peak_device_bytes);
    }
    let s = templates.stats();
    assert_eq!(
        (s.hits, s.misses, s.instantiates, s.entries),
        (0, 0, 0, 0),
        "sharded builds must never touch the template cache"
    );
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (5usize..40, 1usize..6, 0u64..200, 1usize..12).prop_map(|(nodes, deg, seed, feat)| {
        let edges = (nodes * deg).min(nodes * (nodes - 1) / 2);
        GraphGenerator::new(nodes, edges)
            .topology(GraphTopology::PowerLaw { exponent: 0.8 })
            .seed(seed)
            .build_graph(feat)
            .expect("valid generator args")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn instantiated_equals_full_compile_on_random_graphs(
        graph in arb_graph(), layers in 1usize..4, hidden in 1usize..8,
        opt_o2 in proptest::bool::ANY
    ) {
        let config = RunConfig {
            layers,
            hidden,
            opt: if opt_o2 { OptLevel::O2 } else { OptLevel::O0 },
            functional_math: true,
            ..RunConfig::default()
        };
        let full = PipelineRun::build(&graph, &config).unwrap();
        let templates = TemplateCache::new();
        let _cold = PipelineRun::build_with_templates(&graph, &config, &templates).unwrap();
        let warm = PipelineRun::build_with_templates(&graph, &config, &templates).unwrap();
        prop_assert_eq!(fingerprint(&full), fingerprint(&warm));
        prop_assert_eq!(&full.output, &warm.output);
        prop_assert_eq!(full.peak_device_bytes, warm.peak_device_bytes);
        prop_assert_eq!(templates.stats().instantiates, 1);
    }
}
