//! The serving layer's guarantees, locked at the workspace level:
//!
//! 1. **Cache correctness** — the byte-accounted LRU's capacity
//!    accounting, eviction order and hit/miss counters match a
//!    brute-force reference model under random operation sequences, and
//!    the N-way sharded cache matches N independent single-lock caches
//!    (same hash routing, same capacity partition) op for op.
//! 2. **Serve ≡ batch** — a profile served by [`gsuite::serve::Server`]
//!    is bit-identical to the same configuration's cell in the batch
//!    [`gsuite::scenarios::run_scenario`] grid.
//! 3. **Loadgen reproducibility** — a sim-clock load-generation run is a
//!    pure function of `(scenario, seed, parameters)`: identical
//!    per-request latencies and counters across repeated runs and across
//!    profiling thread counts, with a non-zero cache hit rate for a mix
//!    with repeated configurations (the PR's acceptance criterion).
//! 4. **The TCP protocol** round-trips requests, stats and shutdown.

use proptest::prelude::*;

use gsuite::scenarios::{registry, BenchOpts};
use gsuite::serve::{
    run_loadgen, serve_on, ArrivalMode, ByteLru, ClockMode, LoadSpec, ProtocolClient, ServeConfig,
    ServeRequest, Server, ShardedByteLru,
};

// ---------------------------------------------------------------------------
// 1. LRU property tests against a reference model.
// ---------------------------------------------------------------------------

/// A brute-force LRU oracle: recency list of `(key, bytes)`, MRU last.
struct ModelLru {
    capacity: u64,
    entries: Vec<(u8, u64)>,
    hits: u64,
    misses: u64,
    evictions: u64,
    rejected: u64,
}

impl ModelLru {
    fn new(capacity: u64) -> Self {
        ModelLru {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            rejected: 0,
        }
    }

    fn used(&self) -> u64 {
        self.entries.iter().map(|&(_, b)| b).sum()
    }

    fn get(&mut self, key: u8) -> bool {
        match self.entries.iter().position(|&(k, _)| k == key) {
            Some(i) => {
                self.hits += 1;
                let e = self.entries.remove(i);
                self.entries.push(e);
                true
            }
            None => {
                self.misses += 1;
                false
            }
        }
    }

    fn insert(&mut self, key: u8, bytes: u64) {
        if bytes > self.capacity {
            self.rejected += 1;
            return;
        }
        if let Some(i) = self.entries.iter().position(|&(k, _)| k == key) {
            self.entries.remove(i);
        }
        while self.used() + bytes > self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
        self.entries.push((key, bytes));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random op sequences: the cache agrees with the oracle on hits,
    /// misses, evictions, rejections, byte accounting and exact LRU order,
    /// and never exceeds its capacity.
    #[test]
    fn lru_matches_reference_model(
        capacity in 1u64..400,
        ops in proptest::collection::vec((proptest::bool::ANY, 0u8..12, 1u64..120), 0..64),
    ) {
        let mut cache: ByteLru<u8, u8> = ByteLru::new(capacity);
        let mut model = ModelLru::new(capacity);
        for (is_insert, key, bytes) in ops {
            if is_insert {
                cache.insert(key, key, bytes);
                model.insert(key, bytes);
            } else {
                let cached = cache.get(&key).copied();
                let modeled = model.get(key);
                prop_assert_eq!(cached.is_some(), modeled, "lookup of {}", key);
            }
            prop_assert!(cache.bytes_in_use() <= capacity, "capacity exceeded");
            prop_assert_eq!(cache.bytes_in_use(), model.used());
            // Exact recency order, LRU first.
            let order: Vec<u8> = cache.keys().copied().collect();
            let expect: Vec<u8> = model.entries.iter().map(|&(k, _)| k).collect();
            prop_assert_eq!(order, expect);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits, model.hits);
        prop_assert_eq!(stats.misses, model.misses);
        prop_assert_eq!(stats.evictions, model.evictions);
        prop_assert_eq!(stats.rejected, model.rejected);
        prop_assert_eq!(stats.entries, model.entries.len());
    }

    /// Hot keys survive: repeatedly touching one key keeps it resident
    /// through arbitrary churn that evicts everything else.
    #[test]
    fn lru_touch_protects_hot_keys(
        churn in proptest::collection::vec((1u8..12, 40u64..100), 1..32),
    ) {
        let mut cache: ByteLru<u8, ()> = ByteLru::new(200);
        cache.insert(0, (), 100);
        for (key, bytes) in churn {
            assert!(cache.get(&0).is_some(), "hot key evicted");
            cache.insert(key, (), bytes); // <=100 bytes free: never evicts 0
        }
        assert!(cache.contains(&0));
    }

    /// The sharded cache is exactly N independent single-lock caches: a
    /// brute-force reference — one plain [`ByteLru`] per shard, keys
    /// routed by the same hash, capacity partitioned the same way —
    /// agrees with [`ShardedByteLru`] on every lookup, every insert
    /// acceptance, the eviction-storm sweep and the aggregate counters.
    #[test]
    fn sharded_lru_matches_single_lock_reference(
        capacity in 1u64..400,
        shards in 1usize..6,
        ops in proptest::collection::vec((0u8..3, 0u8..12, 1u64..120), 0..64),
    ) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        let sharded: ShardedByteLru<u8, u8> = ShardedByteLru::new(capacity, shards);
        let n = shards as u64;
        let (each, remainder) = (capacity / n, capacity % n);
        let mut reference: Vec<ByteLru<u8, u8>> = (0..n)
            .map(|i| ByteLru::new(each + u64::from(i < remainder)))
            .collect();
        let route = |key: u8| -> usize {
            let mut h = DefaultHasher::new();
            key.hash(&mut h);
            (h.finish() % n) as usize
        };
        for (op, key, bytes) in ops {
            match op {
                0 => {
                    let accepted = sharded.insert(key, key, bytes);
                    prop_assert_eq!(accepted, reference[route(key)].insert(key, key, bytes));
                }
                1 => {
                    let got = sharded.get(&key);
                    prop_assert_eq!(got, reference[route(key)].get(&key).copied());
                }
                _ => {
                    // Round-robin storm, one LRU victim per shard pass.
                    let victims = (bytes % 4) as usize;
                    let mut dropped = 0;
                    while dropped < victims {
                        let before = dropped;
                        for shard in reference.iter_mut() {
                            if dropped == victims {
                                break;
                            }
                            dropped += shard.evict_lru(1);
                        }
                        if dropped == before {
                            break;
                        }
                    }
                    prop_assert_eq!(sharded.evict_lru(victims), dropped);
                }
            }
        }
        let mut expect = gsuite::serve::LruStats::default();
        for shard in &reference {
            let s = shard.stats();
            expect.hits += s.hits;
            expect.misses += s.misses;
            expect.insertions += s.insertions;
            expect.evictions += s.evictions;
            expect.rejected += s.rejected;
            expect.bytes_in_use += s.bytes_in_use;
            expect.capacity_bytes += s.capacity_bytes;
            expect.entries += s.entries;
        }
        prop_assert_eq!(sharded.stats(), expect);
        prop_assert_eq!(sharded.len(), reference.iter().map(|s| s.len()).sum::<usize>());
    }
}

// ---------------------------------------------------------------------------
// 2. Serve-mode results are bit-identical to the batch scenario runner.
// ---------------------------------------------------------------------------

#[test]
fn served_profiles_match_batch_run_scenario() {
    let opts = BenchOpts::golden();
    let scenario = registry::find("serve-mix").expect("serve-mix registered");
    let (batch, _) = scenario.run(&opts);

    let server = Server::start(ServeConfig {
        workers: 4,
        opts: opts.clone(),
        ..ServeConfig::default()
    });
    // Submit every cell of the grid and compare outcomes pairwise.
    let receivers: Vec<_> = batch
        .cells
        .iter()
        .map(|cell| {
            server
                .submit(ServeRequest::from_cell(cell))
                .expect("accepted")
        })
        .collect();
    for ((cell, outcome), rx) in batch.iter().zip(receivers) {
        let done = rx.recv().expect("completion delivered");
        match (outcome.profile(), &done.outcome) {
            (Some(batch_profile), Ok(served)) => {
                assert_eq!(
                    batch_profile,
                    served.as_ref(),
                    "served profile differs from batch cell {}",
                    cell.label()
                );
            }
            (None, Err(_)) => {} // unsupported in both worlds
            (batch_side, served_side) => panic!(
                "outcome kind mismatch for {}: batch={:?} served={:?}",
                cell.label(),
                batch_side.is_some(),
                served_side.is_ok()
            ),
        }
    }
    let stats = server.stats();
    assert_eq!(stats.completed, batch.cells.len() as u64);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// 3. Loadgen reproducibility (the acceptance criterion).
// ---------------------------------------------------------------------------

fn golden_loadspec() -> LoadSpec {
    LoadSpec {
        requests: 64,
        opts: BenchOpts::golden(),
        ..LoadSpec::default()
    }
}

#[test]
fn loadgen_sim_is_reproducible_across_runs_and_threads() {
    let base = golden_loadspec();
    let a = run_loadgen(&base).expect("loadgen runs");
    let b = run_loadgen(&base).expect("loadgen runs");
    assert_eq!(a, b, "same spec, same report — down to every latency");
    assert_eq!(a.render(), b.render());

    // The profiling fan-out width must not leak into the report.
    for threads in [1, 3, 8] {
        let t = run_loadgen(&LoadSpec {
            threads,
            ..golden_loadspec()
        })
        .expect("loadgen runs");
        assert_eq!(a.latencies_ms, t.latencies_ms, "threads={threads}");
        assert_eq!(a.cache, t.cache, "threads={threads}");
        assert_eq!(a.throughput_rps, t.throughput_rps, "threads={threads}");
        assert_eq!(a.coalesced, t.coalesced, "threads={threads}");
    }

    // A mix with repeated configurations must pay off: hits > 0, and the
    // sampled stream covers the whole request budget.
    assert!(a.cache.hit_rate() > 0.0, "repeated configs must hit");
    assert_eq!(a.completed, 64);
    assert!(a.latency.p50_ms <= a.latency.p95_ms);
    assert!(a.latency.p95_ms <= a.latency.p99_ms);
    assert!(a.latency.p99_ms <= a.latency.max_ms);

    // Different seeds change the stream (and thus, generically, the tail).
    let other = run_loadgen(&LoadSpec {
        seed: 7,
        ..golden_loadspec()
    })
    .expect("loadgen runs");
    assert_ne!(a.latencies_ms, other.latencies_ms);
}

#[test]
fn loadgen_open_loop_sheds_under_pressure() {
    // An arrival rate far beyond the modeled service rate with a tiny
    // queue: the bounded queue must shed deterministically.
    let spec = LoadSpec {
        arrival: ArrivalMode::Open { rate_rps: 5000.0 },
        requests: 64,
        workers: 1,
        queue_cap: 2,
        slo_ms: Some(1.0),
        ..golden_loadspec()
    };
    let a = run_loadgen(&spec).expect("loadgen runs");
    assert!(a.rejected > 0, "overload must shed: {}", a.render());
    assert_eq!(a.completed + a.rejected, 64);
    assert_eq!(a, run_loadgen(&spec).expect("loadgen runs"));
    // A 1 ms SLO under overload is hopeless — attainment must reflect it.
    let slo = a.slo.expect("slo configured");
    assert!(!slo.met());
    assert!(slo.attainment < 1.0);
}

#[test]
fn loadgen_coalesces_simultaneous_identical_requests() {
    // One distinct configuration arriving faster than it completes: every
    // overlapping request shares the single in-flight execution.
    let spec = LoadSpec {
        scenario: "gpusweep".to_string(), // small grid, distinct configs
        arrival: ArrivalMode::Open { rate_rps: 10000.0 },
        requests: 32,
        workers: 4,
        queue_cap: 64,
        ..golden_loadspec()
    };
    let report = run_loadgen(&spec).expect("loadgen runs");
    assert!(
        report.coalesced > 0,
        "burst of identical configs must coalesce: {}",
        report.render()
    );
}

#[test]
fn loadgen_wall_clock_smoke() {
    // Wall mode is a measurement, not a pure function — only shape checks.
    let report = run_loadgen(&LoadSpec {
        clock: ClockMode::Wall,
        requests: 16,
        arrival: ArrivalMode::Closed { clients: 4 },
        workers: 2,
        ..golden_loadspec()
    })
    .expect("loadgen runs");
    assert_eq!(report.completed, 16);
    assert_eq!(report.clock, "wall");
    assert!(report.throughput_rps > 0.0);
    assert!(report.latency.max_ms > 0.0);
    assert!(report.cache.hit_rate() > 0.0);
}

// ---------------------------------------------------------------------------
// 4. TCP protocol round trip.
// ---------------------------------------------------------------------------

#[test]
fn tcp_protocol_round_trips_and_shuts_down() {
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    let serve_thread =
        std::thread::spawn(move || serve_on(listener, ServeConfig::golden()).expect("serves"));

    let mut client = ProtocolClient::connect(&addr).expect("connect");
    let ok = client
        .round_trip("model=gcn dataset=cora scale=0.05")
        .expect("request round-trips");
    assert!(ok.starts_with("ok id=0 cache=miss "), "{ok}");

    // The same configuration again: a cache hit, served over the wire.
    let hit = client
        .round_trip("model=gcn dataset=cora scale=0.05")
        .expect("request round-trips");
    assert!(hit.contains("cache=hit"), "{hit}");

    // Malformed lines answer errors without dropping the connection.
    let err = client.round_trip("model=transformer").expect("error line");
    assert!(err.starts_with("err "), "{err}");

    let stats = client.round_trip("stats").expect("stats line");
    assert!(stats.contains("cache_hits=1"), "{stats}");
    assert!(stats.contains("completed=2"), "{stats}");

    assert_eq!(client.round_trip("shutdown").expect("bye"), "ok bye");
    serve_thread.join().expect("server exits cleanly");
}

#[test]
fn qos_keys_round_trip_and_reject_codes_are_typed() {
    // deadline_ms= / fault_seed= survive a parse → render → parse loop…
    let req = ServeRequest::parse_line(
        "model=gin dataset=citeseer scale=0.05 deadline_ms=250 fault_seed=9",
    )
    .expect("QoS keys parse");
    assert_eq!(req.deadline_ms, Some(250.0));
    assert_eq!(req.fault_seed, Some(9));
    let reparsed = ServeRequest::parse_line(&req.to_line()).expect("round-trips");
    assert_eq!(reparsed.deadline_ms, Some(250.0));
    assert_eq!(reparsed.fault_seed, Some(9));

    // …but never fragment the cache identity: two requests differing
    // only in QoS keys are the same work.
    let plain = ServeRequest::parse_line("model=gin dataset=citeseer scale=0.05").expect("parses");
    assert_eq!(req, plain, "QoS keys are excluded from request identity");

    // Over the wire: an expired deadline answers a typed reject code and
    // leaves the server healthy for the same configuration afterwards.
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    let serve_thread =
        std::thread::spawn(move || serve_on(listener, ServeConfig::golden()).expect("serves"));
    let mut client = ProtocolClient::connect(&addr).expect("connect");
    let timed_out = client
        .round_trip("model=gcn dataset=cora scale=0.05 deadline_ms=0.000001")
        .expect("reject round-trips");
    assert!(timed_out.starts_with("err "), "{timed_out}");
    assert!(timed_out.contains("code=deadline-exceeded"), "{timed_out}");

    let ok = client
        .round_trip("model=gcn dataset=cora scale=0.05")
        .expect("clean request round-trips");
    assert!(ok.starts_with("ok "), "{ok}");
    assert!(ok.contains("cache=miss"), "{ok}");

    let stats = client.round_trip("stats").expect("stats line");
    assert!(stats.contains("timeouts=1"), "{stats}");

    assert_eq!(client.round_trip("shutdown").expect("bye"), "ok bye");
    serve_thread.join().expect("server exits cleanly");
}

#[test]
fn idle_connections_do_not_block_shutdown() {
    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    let serve_thread =
        std::thread::spawn(move || serve_on(listener, ServeConfig::golden()).expect("serves"));

    // A connection that never sends anything must not pin the server open.
    let _idle = ProtocolClient::connect(&addr).expect("idle connect");
    let mut client = ProtocolClient::connect(&addr).expect("connect");
    assert_eq!(client.round_trip("shutdown").expect("bye"), "ok bye");

    // Bounded join: a hang here is exactly the regression being guarded.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(serve_thread.join());
    });
    rx.recv_timeout(std::time::Duration::from_secs(30))
        .expect("server must shut down despite the idle connection")
        .expect("server exits cleanly");
}
