//! Sharded multi-GPU execution: the cross-layer locks.
//!
//! * 1-shard configurations are the *same code path* as the historical
//!   single-GPU pipeline — profiles are byte-identical, which is why the
//!   golden suite passed the sharding PR with zero regenerations.
//! * Sharded builds and the `multigpu` scenario are deterministic across
//!   runs and thread counts.
//! * The sharding invariants hold end-to-end: shards partition the node
//!   set, halo traffic is exactly the cross-shard edge frontier, the
//!   makespan is bounded by the summed work.

use gsuite::core::config::{CompModel, GnnModel, RunConfig};
use gsuite::core::pipeline::PipelineRun;
use gsuite::graph::datasets::Dataset;
use gsuite::graph::{GraphFormat, PartitionStrategy};
use gsuite::profile::HwProfiler;
use gsuite::scenarios::{registry, run_scenario_threads, BenchOpts, ScenarioSpec};

fn base_config() -> RunConfig {
    RunConfig {
        model: GnnModel::Gcn,
        comp: CompModel::Mp,
        dataset: Dataset::Cora,
        scale: 0.05,
        layers: 2,
        hidden: 16,
        functional_math: false,
        ..RunConfig::default()
    }
}

#[test]
fn one_shard_is_byte_identical_to_the_single_gpu_path() {
    let single = base_config();
    let one_shard = RunConfig {
        gpus_per_run: 1,
        partitioner: PartitionStrategy::EdgeCut, // ignored at 1 shard
        ..base_config()
    };
    let graph = single.load_graph();
    let a = PipelineRun::build(&graph, &single).unwrap();
    let b = PipelineRun::build(&graph, &one_shard).unwrap();
    assert!(a.sharding.is_none() && b.sharding.is_none());
    assert_eq!(a.plan.kinds(), b.plan.kinds());
    assert_eq!(a.peak_device_bytes, b.peak_device_bytes);
    let hw = HwProfiler::v100();
    let (pa, pb) = (a.profile(&hw), b.profile(&hw));
    assert_eq!(pa, pb, "1-shard profile is bit-identical to single-GPU");
    assert!(pa.sharding.is_none());
    assert_eq!(pa.device_time_ms(), pa.parallel_time_ms());
}

#[test]
fn sharded_invariants_hold_for_every_strategy() {
    let graph = base_config().load_graph();
    for strategy in PartitionStrategy::ALL {
        for shards in [2usize, 4] {
            let cfg = RunConfig {
                gpus_per_run: shards,
                partitioner: strategy,
                ..base_config()
            };
            let run = PipelineRun::build(&graph, &cfg).unwrap();
            let profile = run.profile(&HwProfiler::v100());
            let sh = profile
                .sharding
                .as_ref()
                .unwrap_or_else(|| panic!("{strategy} x{shards}: sharded profile expected"));
            assert_eq!(sh.shards.len(), shards, "{strategy}");
            assert_eq!(
                sh.shards.iter().map(|s| s.owned_nodes).sum::<u64>(),
                graph.num_nodes() as u64,
                "{strategy}: shards partition the node set"
            );
            assert_eq!(sh.total_edges, graph.num_edges() as u64);
            // Cross-shard traffic exists and is accounted per shard.
            assert!(sh.cut_edges > 0, "{strategy}");
            assert_eq!(
                sh.halo_bytes(),
                sh.shards.iter().map(|s| s.halo_in_bytes).sum::<u64>()
            );
            // Makespan = slowest shard; bounded by total summed work.
            let makespan = sh.makespan_ms();
            assert!(makespan > 0.0);
            assert!(makespan <= profile.device_time_ms() + 1e-12);
            assert_eq!(profile.parallel_time_ms(), makespan);
            // One device's memory is the reported peak.
            assert_eq!(profile.peak_device_bytes, sh.max_shard_peak_bytes());
            // Exchange launches carry interconnect-priced records.
            assert!(profile.kernels.iter().any(|k| k.kernel == "exchange"));
        }
    }
}

#[test]
fn sharded_profiles_are_deterministic_across_builds_and_par_profiling() {
    let cfg = RunConfig {
        gpus_per_run: 4,
        partitioner: PartitionStrategy::EdgeCut,
        ..base_config()
    };
    let graph = cfg.load_graph();
    let hw = HwProfiler::v100();
    let a = PipelineRun::build(&graph, &cfg).unwrap().profile(&hw);
    let b = PipelineRun::build(&graph, &cfg).unwrap().profile(&hw);
    assert_eq!(a, b, "rebuild is bit-identical");
    let c = PipelineRun::build(&graph, &cfg).unwrap().profile_par(&hw);
    assert_eq!(a, c, "parallel profiling is bit-identical");
}

/// A small shard-axis grid for the thread-independence lock (the full
/// `multigpu` registry grid is covered by the golden suite).
fn mini_multigpu_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "mini-multigpu",
        title: "thread-independence grid",
        models: vec![GnnModel::Gcn],
        datasets: vec![Dataset::Cora],
        comp_models: vec![CompModel::Mp],
        formats: vec![GraphFormat::Coo],
        gpus_per_run: vec![1, 4],
        partitioner: PartitionStrategy::EdgeCut,
        ..ScenarioSpec::default()
    }
}

#[test]
fn sharded_scenario_cells_are_thread_count_independent() {
    let opts = BenchOpts::golden();
    let serial = run_scenario_threads(&mini_multigpu_spec(), &opts, 1);
    let parallel = run_scenario_threads(&mini_multigpu_spec(), &opts, 4);
    assert_eq!(serial.cells.len(), 2);
    assert_eq!(serial.cells, parallel.cells);
    for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
        assert_eq!(a, b, "partitioning and profiling are thread-independent");
    }
}

#[test]
fn scenario_shard_override_forces_the_axis() {
    let opts = BenchOpts {
        shards_override: Some(2),
        partitioner_override: Some(PartitionStrategy::Range),
        ..BenchOpts::golden()
    };
    let result = run_scenario_threads(&mini_multigpu_spec(), &opts, 2);
    // The [1, 4] axis collapses to the forced single value.
    assert_eq!(result.cells.len(), 1);
    assert_eq!(result.cells[0].config.gpus_per_run, 2);
    assert_eq!(result.cells[0].config.partitioner, PartitionStrategy::Range);
}

#[test]
fn multigpu_scenario_scaling_efficiency_is_reported_for_every_shard_count() {
    // The acceptance bar: `run-scenario multigpu` reports scaling
    // efficiency for 1/2/4/8 shards. Rendering is locked byte-exactly by
    // tests/golden/multigpu.txt; here we assert the semantic content.
    let (result, report) = registry::find("multigpu")
        .expect("multigpu registered")
        .run(&BenchOpts::golden());
    let text = report.render(&BenchOpts::golden());
    for shards in [1usize, 2, 4, 8] {
        let p = result
            .profile_at(0, |c| {
                c.model == GnnModel::Gin && c.dataset == Dataset::PubMed && c.gpus_per_run == shards
            })
            .expect("profiled");
        assert!(p.parallel_time_ms() > 0.0);
    }
    assert!(text.contains("efficiency"));
    assert!(text.contains("100.0%"), "1-shard rows are the baseline");
}
