//! Golden-profile regression tests: every scenario in the registry runs at
//! a fixed small mode ([`BenchOpts::golden`]: quick scales, 32-CTA
//! sampling cap) and its rendered report is diffed byte-for-byte against a
//! committed snapshot under `tests/golden/`.
//!
//! These snapshots are what locks the reproduction's numbers — Fig. 3–9,
//! Table II/IV and the beyond-paper scenarios — against silent drift: any
//! change to the kernels, trace generation, cache models, simulator,
//! profilers, graph generators or report formatting that moves a single
//! digit fails here.
//!
//! Regenerating after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! git diff tests/golden/   # review every number that moved
//! ```

use std::fs;
use std::path::PathBuf;

use gsuite::scenarios::{registry, BenchOpts};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn update_mode() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Runs one registry scenario in golden mode and checks (or regenerates)
/// its snapshot.
fn check_scenario(name: &str) {
    let scenario = registry::find(name).unwrap_or_else(|| panic!("{name} not in registry"));
    let opts = BenchOpts::golden();
    let (_result, report) = scenario.run(&opts);
    let rendered = report.render(&opts);
    let path = golden_dir().join(format!("{name}.txt"));

    if update_mode() {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        fs::write(&path, &rendered).expect("write golden file");
        eprintln!("updated {}", path.display());
        return;
    }

    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate with UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    if rendered != expected {
        let diff_at = expected
            .lines()
            .zip(rendered.lines())
            .position(|(a, b)| a != b);
        let context = match diff_at {
            Some(i) => format!(
                "first difference at line {}:\n  golden: {:?}\n  actual: {:?}",
                i + 1,
                expected.lines().nth(i).unwrap_or(""),
                rendered.lines().nth(i).unwrap_or("")
            ),
            None => format!(
                "line counts differ (golden {} vs actual {})",
                expected.lines().count(),
                rendered.lines().count()
            ),
        };
        panic!(
            "golden mismatch for scenario {name} ({}).\n{context}\n\
             If the change is intentional, regenerate with:\n  \
             UPDATE_GOLDEN=1 cargo test --test golden\nand review the diff.",
            path.display()
        );
    }
}

#[test]
fn golden_covers_every_registry_scenario() {
    // A snapshot test per scenario exists below; this guard fails when a
    // new registry entry is added without golden coverage.
    let tested = [
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "table2",
        "table4",
        "xmodels",
        "gpusweep",
        "serve-mix",
        "planopt",
        "multigpu",
        "minibatch",
        "hetero",
        "chaos",
        "servebatch",
    ];
    let registered: Vec<&str> = registry::all().iter().map(|s| s.name).collect();
    assert_eq!(
        registered, tested,
        "registry and golden suite out of sync — add a golden_<name> test and snapshot"
    );
}

macro_rules! golden_test {
    ($($name:ident),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                check_scenario(&stringify!($name)["golden_".len()..]);
            }
        )*
    };
}

golden_test!(
    golden_fig3,
    golden_fig4,
    golden_fig5,
    golden_fig6,
    golden_fig7,
    golden_fig8,
    golden_fig9,
    golden_table2,
    golden_table4,
    golden_xmodels,
    golden_gpusweep,
    golden_planopt,
    golden_multigpu,
    golden_minibatch,
    golden_hetero,
    golden_chaos,
    golden_servebatch,
);

// Hyphenated registry names don't fit the identifier-derived macro above.
#[test]
fn golden_serve_mix() {
    check_scenario("serve-mix");
}
