//! Plan-IR equivalence suite (the kernel-dataflow refactor's lock):
//!
//! * **O0 is the golden-compatibility mode** — for every model × dataset
//!   × format, building at O0 twice yields byte-identical launch
//!   sequences (kinds, grids and full sampled instruction/address
//!   traces — addresses included, so the bump layout itself is locked).
//!   Together with the golden-profile suite (whose snapshots predate the
//!   refactor and must pass unchanged) this pins the O0 path to the
//!   historical direct-emission behaviour.
//! * **O2 is a pure launch-stream optimization** — functional output is
//!   *exactly* equal to O0 (ops are fused/hoisted, never renumerated:
//!   host math happens at lowering, before any pass), launch counts and
//!   peak device bytes never increase, and per-kind counts only shrink
//!   (fusion removes elementwise ops, hoisting removes duplicated
//!   scatters/SpGEMMs; sgemm count is invariant).

use gsuite::core::config::{CompModel, GnnModel, RunConfig};
use gsuite::core::kernels::KernelKind;
use gsuite::core::pipeline::PipelineRun;
use gsuite::core::OptLevel;
use gsuite::gpu::TraceBuf;
use gsuite::graph::datasets::Dataset;
use gsuite::graph::{Graph, GraphGenerator, GraphTopology};
use gsuite::scenarios::BenchOpts;
use proptest::prelude::*;

/// Every `(model, comp)` pair the suite can build, extension models
/// included. The format axis is implied: MP consumes the COO edge index,
/// SpMM the CSR adjacency (`gsuite_scenarios::format_feeds_comp`), so
/// covering both computational models covers every format.
fn buildable_pairs() -> Vec<(GnnModel, CompModel)> {
    let mut pairs = Vec::new();
    for model in GnnModel::EXTENDED {
        for comp in CompModel::ALL {
            if comp == CompModel::Spmm && matches!(model, GnnModel::Sage | GnnModel::Gat) {
                continue; // no SpMM lowering (paper §V-A)
            }
            pairs.push((model, comp));
        }
    }
    pairs
}

/// A complete behavioural fingerprint of a launch stream: kind, workload
/// name, grid, and the full traces of a deterministic warp sample
/// (traces embed every operand address, so two equal fingerprints mean
/// byte-identical scheduled kernels).
fn fingerprint(run: &PipelineRun) -> Vec<(KernelKind, String, gsuite::gpu::Grid, Vec<TraceBuf>)> {
    run.launches
        .iter()
        .map(|l| {
            let grid = l.workload.grid();
            let mut traces = Vec::new();
            for cta in [0, grid.ctas / 2, grid.ctas - 1] {
                for warp in [0, grid.warps_per_cta - 1] {
                    traces.push(l.workload.trace(cta, warp));
                }
            }
            (l.kind, l.workload.name(), grid, traces)
        })
        .collect()
}

fn kind_counts(run: &PipelineRun) -> Vec<(KernelKind, usize)> {
    let mut counts: Vec<(KernelKind, usize)> = Vec::new();
    for l in &run.launches {
        match counts.iter_mut().find(|(k, _)| *k == l.kind) {
            Some((_, c)) => *c += 1,
            None => counts.push((l.kind, 1)),
        }
    }
    counts
}

fn count_of(counts: &[(KernelKind, usize)], kind: KernelKind) -> usize {
    counts
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|&(_, c)| c)
        .unwrap_or(0)
}

/// Checks one `(graph, config)` point: O0 rebuild determinism, O2 exact
/// functional equality, and the monotone O2 structural guarantees.
fn check_point(graph: &Graph, config: &RunConfig, ctx: &str) {
    let o0_a = PipelineRun::build(graph, config).expect("O0 builds");
    let o0_b = PipelineRun::build(graph, config).expect("O0 rebuilds");
    assert_eq!(
        fingerprint(&o0_a),
        fingerprint(&o0_b),
        "{ctx}: O0 launch stream must be byte-identical across builds"
    );

    let cfg_o2 = RunConfig {
        opt: OptLevel::O2,
        ..config.clone()
    };
    let o2_a = PipelineRun::build(graph, &cfg_o2).expect("O2 builds");
    let o2_b = PipelineRun::build(graph, &cfg_o2).expect("O2 rebuilds");
    assert_eq!(
        fingerprint(&o2_a),
        fingerprint(&o2_b),
        "{ctx}: O2 schedule must be deterministic"
    );

    // Functional output: exact equality, not approximate — the passes
    // must not renumerate anything.
    assert_eq!(
        o0_a.output, o2_a.output,
        "{ctx}: O2 functional output must equal O0 exactly"
    );

    // Structure: O2 only removes work.
    assert!(
        o2_a.launch_count() <= o0_a.launch_count(),
        "{ctx}: O2 must not add launches"
    );
    assert!(
        o2_a.peak_device_bytes <= o0_a.peak_device_bytes,
        "{ctx}: O2 peak {} exceeds O0 {}",
        o2_a.peak_device_bytes,
        o0_a.peak_device_bytes
    );
    let (c0, c2) = (kind_counts(&o0_a), kind_counts(&o2_a));
    for &(kind, n2) in &c2 {
        assert!(n2 <= count_of(&c0, kind), "{ctx}: O2 grew {kind} launches");
    }
    assert_eq!(
        count_of(&c0, KernelKind::Sgemm),
        count_of(&c2, KernelKind::Sgemm),
        "{ctx}: fusion folds relus into sgemms, never removes sgemms"
    );
}

#[test]
fn o0_locked_and_o2_equivalent_for_every_model_dataset_format() {
    let opts = BenchOpts::golden();
    for dataset in Dataset::ALL {
        let graph = dataset.load_scaled(opts.scale_for(dataset));
        for (model, comp) in buildable_pairs() {
            let config = RunConfig {
                model,
                comp,
                dataset,
                scale: opts.scale_for(dataset),
                layers: 2,
                hidden: 8,
                functional_math: true,
                ..RunConfig::default()
            };
            check_point(&graph, &config, &format!("{model}-{comp} on {dataset}"));
        }
    }
}

#[test]
fn o2_strictly_improves_the_hoistable_pipelines() {
    // The acceptance bar, at the pipeline level: GCN-SpMM rebuilds its
    // SpGEMM normalization chain per layer and GIN re-uploads its
    // aggregation matrix / re-launches activations — at O2 both must
    // strictly shrink in launches *and* peak bytes on multiple datasets.
    let opts = BenchOpts::golden();
    for dataset in [Dataset::Cora, Dataset::PubMed] {
        let graph = dataset.load_scaled(opts.scale_for(dataset));
        for (model, comp) in [
            (GnnModel::Gcn, CompModel::Spmm),
            (GnnModel::Gin, CompModel::Mp),
            (GnnModel::Gin, CompModel::Spmm),
        ] {
            let config = RunConfig {
                model,
                comp,
                dataset,
                scale: opts.scale_for(dataset),
                functional_math: false,
                ..RunConfig::default()
            };
            let o0 = PipelineRun::build(&graph, &config).unwrap();
            let o2 = PipelineRun::build(
                &graph,
                &RunConfig {
                    opt: OptLevel::O2,
                    ..config
                },
            )
            .unwrap();
            assert!(
                o2.launch_count() < o0.launch_count(),
                "{model}-{comp} on {dataset}: expected strictly fewer launches"
            );
            assert!(
                o2.peak_device_bytes < o0.peak_device_bytes,
                "{model}-{comp} on {dataset}: expected strictly lower peak"
            );
            assert!(!o2.plan.decisions().is_empty());
        }
    }
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (5usize..40, 1usize..6, 0u64..200, 1usize..12).prop_map(|(nodes, deg, seed, feat)| {
        let edges = (nodes * deg).min(nodes * (nodes - 1) / 2);
        GraphGenerator::new(nodes, edges)
            .topology(GraphTopology::PowerLaw { exponent: 0.8 })
            .seed(seed)
            .build_graph(feat)
            .expect("valid generator args")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn o2_equals_o0_on_random_graphs(graph in arb_graph(), layers in 1usize..4,
                                     hidden in 1usize..8, seed in 0u64..100) {
        for (model, comp) in buildable_pairs() {
            let config = RunConfig {
                model,
                comp,
                layers,
                hidden,
                seed,
                functional_math: true,
                ..RunConfig::default()
            };
            let o0 = PipelineRun::build(&graph, &config).unwrap();
            let o2 = PipelineRun::build(&graph, &RunConfig {
                opt: OptLevel::O2,
                ..config
            }).unwrap();
            prop_assert_eq!(&o0.output, &o2.output, "{}-{} output drifted", model, comp);
            prop_assert!(o2.launch_count() <= o0.launch_count());
            prop_assert!(o2.peak_device_bytes <= o0.peak_device_bytes);
        }
    }
}
