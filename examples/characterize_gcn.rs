//! Architectural characterization of one pipeline on BOTH measurement
//! backends — the paper's dual nvprof/GPGPU-Sim methodology (Figs. 6–8)
//! in miniature.
//!
//! ```sh
//! cargo run --release --example characterize_gcn
//! ```

use gsuite::core::config::{CompModel, GnnModel, RunConfig};
use gsuite::core::pipeline::PipelineRun;
use gsuite::gpu::StallReason;
use gsuite::profile::{HwProfiler, SimProfiler, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = RunConfig {
        model: GnnModel::Gcn,
        comp: CompModel::Mp,
        scale: 0.25,
        layers: 2,
        hidden: 16,
        functional_math: false, // characterization only
        ..RunConfig::default()
    };
    let graph = config.load_graph();
    let run = PipelineRun::build(&graph, &config)?;
    println!("{} | {} launches\n", run.label, run.launch_count());

    // Backend 1: the analytical hardware model (nvprof stand-in).
    let hw = run.profile(&HwProfiler::v100());
    // Backend 2: the cycle-level simulator (GPGPU-Sim stand-in) on a
    // 16-SM scaled V100 with CTA sampling.
    let sim = run.profile(&SimProfiler::scaled(16).max_ctas(Some(512)));

    // Fig. 8-style comparison: cache hit rates, NVProf vs Sim.
    let mut cache = TextTable::new(&["kernel", "L1 NVProf", "L1 Sim", "L2 NVProf", "L2 Sim"]);
    for (h, s) in hw
        .merged_by_kernel()
        .iter()
        .zip(sim.merged_by_kernel().iter())
    {
        cache.row_owned(vec![
            h.kernel.clone(),
            format!("{:.1}%", h.l1.hit_rate() * 100.0),
            format!("{:.1}%", s.l1.hit_rate() * 100.0),
            format!("{:.1}%", h.l2.hit_rate() * 100.0),
            format!("{:.1}%", s.l2.hit_rate() * 100.0),
        ]);
    }
    println!(
        "cache hit rates (NVProf-like vs cycle sim):\n{}",
        cache.render()
    );

    // Fig. 6-style stall reasons (simulator only — nvprof cannot see them).
    let mut stalls = TextTable::new(&["kernel", "MemDep", "ExecDep", "Issued", "IFetch", "NotSel"]);
    for k in sim.merged_by_kernel() {
        let b = k.stalls.expect("sim reports stalls");
        let p = |r: StallReason| format!("{:.1}%", b.fraction(r) * 100.0);
        stalls.row_owned(vec![
            k.kernel.clone(),
            p(StallReason::MemoryDependency),
            p(StallReason::ExecutionDependency),
            p(StallReason::InstructionIssued),
            p(StallReason::InstructionFetch),
            p(StallReason::NotSelected),
        ]);
    }
    println!("issue-stall distribution (cycle sim):\n{}", stalls.render());

    // Fig. 7-style occupancy.
    let mut occ = TextTable::new(&["kernel", "Stall", "Idle", "W8", "W20", "W32"]);
    for k in sim.merged_by_kernel() {
        let o = k.occupancy.expect("sim reports occupancy");
        let f = o.fractions();
        occ.row_owned(vec![
            k.kernel.clone(),
            format!("{:.1}%", f[0].1 * 100.0),
            format!("{:.1}%", f[1].1 * 100.0),
            format!("{:.1}%", f[2].1 * 100.0),
            format!("{:.1}%", f[3].1 * 100.0),
            format!("{:.1}%", f[4].1 * 100.0),
        ]);
    }
    println!("warp occupancy (cycle sim):\n{}", occ.render());
    Ok(())
}
