//! Quickstart: build a GNN inference pipeline with a few parameters and
//! profile it — the paper's "plug-and-play" usage (§IV).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gsuite::core::config::{CompModel, GnnModel, RunConfig};
use gsuite::core::pipeline::PipelineRun;
use gsuite::profile::{HwProfiler, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's pitch: a desired GNN pipeline from a handful of
    // parameters. Everything else (kernels, datasets, weights) is derived.
    let config = RunConfig {
        model: GnnModel::Gcn,
        comp: CompModel::Mp,
        scale: 0.25, // a quarter-size Cora for a fast first run
        layers: 2,
        hidden: 16,
        ..RunConfig::default()
    };

    let graph = config.load_graph();
    let stats = graph.stats();
    println!("{}", config.label());
    println!(
        "graph: {} nodes, {} edges, feature length {}\n",
        stats.nodes, stats.edges, stats.feature_len
    );

    // Build: runs inference functionally AND records every kernel launch.
    let run = PipelineRun::build(&graph, &config)?;
    println!(
        "pipeline: {} kernel launches, output shape {:?}",
        run.launch_count(),
        run.output.shape()
    );

    // Profile on the analytical V100 model (the nvprof stand-in).
    let profile = run.profile(&HwProfiler::v100());
    let mut table = TextTable::new(&["kernel", "time (ms)", "instructions", "L1 hit"]);
    for k in &profile.kernels {
        table.row_owned(vec![
            k.kernel.clone(),
            format!("{:.4}", k.time_ms),
            k.instr_mix.total().to_string(),
            format!("{:.1}%", k.l1.hit_rate() * 100.0),
        ]);
    }
    println!("\n{}", table.render());
    println!(
        "device {:.3} ms + host {:.3} ms = end-to-end {:.3} ms",
        profile.device_time_ms(),
        profile.host_overhead_ms,
        profile.total_time_ms()
    );
    Ok(())
}
