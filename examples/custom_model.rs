//! Extendability: build a *new* GNN model from the core kernels in a
//! plug-and-play manner — the paper's §IV claim that "a new GNN model can
//! be built by utilizing these kernels".
//!
//! The model here is a small graph attention-ish variant that gSuite does
//! not ship: `h' = ReLU( mean_N(h) · W + (1+ε)·h · W )` — mean aggregation
//! like SAGE, epsilon self-weighting like GIN, one shared weight.
//!
//! ```sh
//! cargo run --release --example custom_model
//! ```

use std::sync::Arc;

use gsuite::core::models::Builder;
use gsuite::graph::GraphGenerator;
use gsuite::profile::{HwProfiler, Profiler};
use gsuite::tensor::ops::Reduce;
use gsuite::tensor::DenseMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic power-law graph standing in for a custom dataset.
    let graph = GraphGenerator::new(2_000, 12_000).seed(7).build_graph(64)?;
    println!(
        "custom model on a {}-node / {}-edge power-law graph",
        graph.num_nodes(),
        graph.num_edges()
    );

    let eps = 0.2f32;
    let hidden = 32;
    let w = DenseMatrix::from_fn(graph.feature_dim(), hidden, |r, c| {
        (((r * 37 + c * 11) % 23) as f32 - 11.0) * 0.01
    });

    // The same Builder the built-in models use: every call both computes
    // the math and records the CUDA-style kernel launch.
    let mut b = Builder::new(&graph, true);
    let n = graph.num_nodes();
    let x = b.input_features();

    // mean over N(v) ∪ {v}: indexSelect -> scatter-sum -> row-scale
    let (src, dst) = b.edges_with_loops();
    let (deg_base, deg) = b.degree_vector();
    let msgs = b.index_select(&x, &src, None)?;
    let summed = b.scatter(&msgs, &dst, n, Reduce::Sum)?;
    let inv_deg: Arc<Vec<f32>> = Arc::new(deg.iter().map(|d| 1.0 / d).collect());
    let mean = b.row_scale(&summed, &inv_deg, deg_base);

    // (1+ε)·h + mean, one shared linear, ReLU
    let combined = b.axpy(1.0 + eps, &x, &mean)?;
    let out = b.linear(&combined, &w, true)?;
    b.set_output(out);

    // The builder lowers to a Plan; scheduling at O0 reproduces the
    // classic launch stream, O2 runs the optimization passes (the final
    // linear's fused ReLU already comes from the builder here, but
    // layer-invariant re-uploads and dead buffers would be cleaned up).
    let (mut plan, output) = b.finish();
    let o0 = plan.schedule(gsuite::core::OptLevel::O0);
    plan.optimize(gsuite::core::OptLevel::O2);
    let o2 = plan.schedule(gsuite::core::OptLevel::O2);
    println!(
        "pipeline: {} launches, output shape {:?}, checksum {:.6}",
        o0.launches.len(),
        output.shape(),
        output.sum()
    );
    println!(
        "plan @O2: {} launches, peak device bytes {} (O0: {})\n",
        o2.launches.len(),
        o2.peak_device_bytes,
        o0.peak_device_bytes
    );

    // Characterize the custom pipeline exactly like a built-in one.
    let profiler = HwProfiler::v100();
    println!("kernel            time (ms)   instr");
    for launch in &o0.launches {
        let stats = profiler.profile(launch.workload.as_ref());
        println!(
            "{:<16}  {:>9.4}   {}",
            launch.kind.name(),
            stats.time_ms,
            stats.instr_mix.total()
        );
    }
    Ok(())
}
