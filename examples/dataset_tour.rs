//! A tour of the dataset substrate: Table IV specs, synthetic generation,
//! scaling, and the graph formats of the paper's §II-D.
//!
//! ```sh
//! cargo run --release --example dataset_tour
//! ```

use gsuite::graph::datasets::Dataset;
use gsuite::graph::{gcn_norm_csr, GraphFormat, GraphGenerator, GraphTopology};
use gsuite::profile::TextTable;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table IV at a glance.
    let mut table = TextTable::new(&[
        "dataset",
        "short",
        "nodes",
        "edges",
        "feat",
        "avg deg (gen)",
    ]);
    for d in Dataset::ALL {
        let spec = d.spec();
        // Generate a 1% instance to inspect degree structure cheaply.
        let g = d.load_scaled(0.01);
        table.row_owned(vec![
            spec.name.to_string(),
            spec.short.to_string(),
            spec.nodes.to_string(),
            spec.edges.to_string(),
            spec.feature_len.to_string(),
            format!("{:.2}", g.stats().avg_degree),
        ]);
    }
    println!("{}", table.render());

    // Every format of §II-D from one graph.
    let g = Dataset::Cora.load_scaled(0.02);
    let coo = g.adjacency_coo();
    let csr = g.adjacency_csr();
    let csc = csr.transpose(); // CSC of A == CSR of A^T
    let dense = g.adjacency_dense();
    println!(
        "formats for {}: {} = {} nnz, {} = {} nnz, {} = {} nnz, {} = {}x{}",
        g.name(),
        GraphFormat::Coo,
        coo.nnz(),
        GraphFormat::Csr,
        csr.nnz(),
        GraphFormat::Csc,
        csc.nnz(),
        GraphFormat::Dense,
        dense.rows(),
        dense.cols(),
    );

    // GCN normalization chain (the SpMM pipeline's operand).
    let norm = gcn_norm_csr(&g.adjacency_csr_transposed());
    println!(
        "GCN-normalized adjacency: {} nnz, max entry {:.4}",
        norm.nnz(),
        norm.values().iter().cloned().fold(0.0f32, f32::max)
    );

    // Custom topologies for stress testing.
    for (name, topo) in [
        ("power-law", GraphTopology::PowerLaw { exponent: 1.0 }),
        ("uniform", GraphTopology::ErdosRenyi),
        ("ring", GraphTopology::Ring),
    ] {
        let t = GraphGenerator::new(10_000, 50_000)
            .topology(topo)
            .seed(3)
            .build_edges()?;
        let max_in = t.in_degrees().iter().copied().max().unwrap_or(0);
        println!("{name:<10} max in-degree: {max_in}");
    }
    Ok(())
}
