#!/usr/bin/env bash
# Compares the current tree's deterministic sim-clock serving benchmarks
# against the latest committed BENCH_*.json trajectory file and fails on
# any unexplained >10% regression — the per-PR bench-delta gate that
# keeps speed claims grounded (ROADMAP item 5).
#
# Only the sim-clock runs are compared: they are pure functions of
# (scenario, seed, parameters), so any drift is a code-behavior change,
# never host noise. Wall-clock runs are recorded in the trajectory files
# but deliberately not gated.
#
# Usage: scripts/bench_delta.sh [baseline.json]
#   baseline.json   trajectory file to compare against; defaults to the
#                   highest-numbered committed BENCH_pr*.json
#
# Environment:
#   BENCH_DELTA_ACCEPT="reason"   acknowledge an intended regression:
#                                 prints the reason and exits 0 so the
#                                 explanation lands in the CI log next
#                                 to the numbers it excuses.

set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${1:-}"
if [ -z "$BASELINE" ]; then
    BASELINE=$(ls BENCH_pr*.json 2>/dev/null | sort -V | tail -1 || true)
fi
if [ -z "$BASELINE" ] || [ ! -f "$BASELINE" ]; then
    echo "bench_delta: no committed BENCH_pr*.json baseline found; nothing to compare"
    exit 0
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cargo build --release --bin gsuite-cli
BIN=target/release/gsuite-cli

echo "== bench_delta: rerunning the sim-clock benchmarks of $BASELINE"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --clients 8 \
    --json "$TMP/sim_closed.json" > /dev/null
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --rate 200 \
    --workers 2 --queue 8 --slo-ms 250 --json "$TMP/sim_open.json" > /dev/null
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --clients 8 \
    --fault-seed 7 --fault-rate 0.25 --deadline-ms 900 --retries 2 --breaker \
    --json "$TMP/sim_chaos.json" > /dev/null

python3 - "$BASELINE" "$TMP" <<'EOF'
import json
import os
import sys

baseline_path, tmp = sys.argv[1], sys.argv[2]
with open(baseline_path) as f:
    results = json.load(f).get("results", {})

THRESHOLD = 0.10
rows = []
failures = []


def check(run, metric, old, new, better):
    """Record one metric delta; `better` is 'higher' or 'lower'."""
    if old is None or new is None or old == 0:
        return
    delta = (new - old) / old
    worse = delta < -THRESHOLD if better == "higher" else delta > THRESHOLD
    rows.append((run, metric, old, new, delta, worse))
    if worse:
        failures.append(f"{run}.{metric}: {old} -> {new} ({delta:+.1%})")


compared = 0
for run in ("sim_closed", "sim_open", "sim_chaos"):
    old = results.get(run)
    path = os.path.join(tmp, f"{run}.json")
    if not isinstance(old, dict) or not os.path.exists(path):
        continue
    with open(path) as f:
        new = json.load(f)
    compared += 1
    check(run, "throughput_rps", old.get("throughput_rps"),
          new.get("throughput_rps"), "higher")
    for p in ("p50", "p95", "p99"):
        check(run, f"latency_{p}_ms", old.get("latency_ms", {}).get(p),
              new.get("latency_ms", {}).get(p), "lower")

if compared == 0:
    print(f"bench_delta: {baseline_path} has no comparable sim-clock runs; skipping")
    sys.exit(0)

print(f"{'run':<12} {'metric':<18} {'baseline':>12} {'current':>12} {'delta':>8}")
for run, metric, old, new, delta, worse in rows:
    flag = "  << REGRESSION" if worse else ""
    print(f"{run:<12} {metric:<18} {old:>12.4f} {new:>12.4f} {delta:>+7.1%}{flag}")

if failures:
    reason = os.environ.get("BENCH_DELTA_ACCEPT")
    if reason:
        print(f"bench_delta: {len(failures)} regression(s) accepted: {reason}")
        sys.exit(0)
    print(f"bench_delta: {len(failures)} unexplained >10% regression(s) "
          f"vs {baseline_path}:")
    for f_ in failures:
        print(f"  {f_}")
    print("set BENCH_DELTA_ACCEPT=\"reason\" to acknowledge an intended change,")
    print("or record a new trajectory with scripts/serve_bench.sh and commit it.")
    sys.exit(1)

print(f"bench_delta: all sim-clock metrics within {THRESHOLD:.0%} of {baseline_path}")
EOF
