#!/usr/bin/env bash
# Chaos smoke: the seeded fault-injection path is exactly replayable.
# (1) A fault-injected sim-clock loadgen run is byte-identical across
# repeated runs and across profiling thread counts; (2) the report
# carries the availability/resilience columns; (3) the `chaos` registry
# scenario renders its fault-rate x policy table in quick mode.
#
# Usage: scripts/chaos_smoke.sh

set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --bin gsuite-cli
BIN=target/release/gsuite-cli
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

CHAOS_FLAGS=(--scenario serve-mix --seed 42 --requests 96
    --fault-seed 7 --fault-rate 0.25
    --deadline-ms 900 --retries 2 --breaker)

echo "== fault-injected loadgen: byte-identity across runs"
"$BIN" loadgen "${CHAOS_FLAGS[@]}" > "$TMP/run1.txt"
"$BIN" loadgen "${CHAOS_FLAGS[@]}" > "$TMP/run2.txt"
cmp "$TMP/run1.txt" "$TMP/run2.txt"

echo "== fault-injected loadgen: byte-identity across thread counts"
"$BIN" loadgen "${CHAOS_FLAGS[@]}" --threads 1 > "$TMP/t1.txt"
"$BIN" loadgen "${CHAOS_FLAGS[@]}" --threads 4 > "$TMP/t4.txt"
cmp "$TMP/t1.txt" "$TMP/t4.txt"
cmp "$TMP/run1.txt" "$TMP/t1.txt"

grep -q "availability=" "$TMP/run1.txt"
grep -q "resilience:" "$TMP/run1.txt"
cat "$TMP/run1.txt"

echo "== chaos scenario (quick)"
"$BIN" run-scenario chaos --quick

echo "chaos smoke OK"
