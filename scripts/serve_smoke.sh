#!/usr/bin/env bash
# Serving-layer smoke: (1) the sim-clock load generator is byte-identical
# across runs and profiling thread counts and emits a well-formed latency
# report; (2) a live server on an ephemeral port answers a seeded TCP
# burst and shuts down cleanly.
#
# Usage: scripts/serve_smoke.sh

set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --bin gsuite-cli
BIN=target/release/gsuite-cli
TMP="$(mktemp -d)"
SERVE_PID=""
# A failed assertion must not leave the background server listening.
trap 'if [ -n "$SERVE_PID" ]; then kill "$SERVE_PID" 2>/dev/null || true; fi; rm -rf "$TMP"' EXIT

echo "== sim-clock loadgen: reproducibility across thread counts"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 64 --threads 1 > "$TMP/lg1.txt"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 64 --threads 4 > "$TMP/lg2.txt"
cmp "$TMP/lg1.txt" "$TMP/lg2.txt"
grep -q "p99=" "$TMP/lg1.txt"
grep -q "^cache: .*hit-rate=" "$TMP/lg1.txt"
# Repeated configs in the mix must actually hit the cache.
if grep -q "^cache: .*hit-rate=0.0%" "$TMP/lg1.txt"; then
    echo "error: expected a non-zero cache hit rate" >&2
    exit 1
fi
cat "$TMP/lg1.txt"

echo "== traced loadgen: metrics exposition + per-phase block, still thread-independent"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 64 --threads 1 --metrics > "$TMP/m1.txt"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 64 --threads 4 --metrics > "$TMP/m2.txt"
cmp "$TMP/m1.txt" "$TMP/m2.txt"
grep -q "phases (ms):" "$TMP/m1.txt"
grep -q "gsuite_loadgen_completed_total 64" "$TMP/m1.txt"
grep -q "# EOF" "$TMP/m1.txt"
# Tracing is observation-only: the traced report minus its "phases"
# line is byte-identical to the untraced report.
head -n "$(( $(wc -l < "$TMP/lg1.txt") + 1 ))" "$TMP/m1.txt" \
    | grep -v "^phases (ms):" > "$TMP/m1_report.txt"
cmp "$TMP/m1_report.txt" "$TMP/lg1.txt"

echo "== plan templates: warmed compile phases flatline on repeat mixes"
# A 4 MiB cache keeps evicting built pipelines, so rebuilds must ride
# the plan-template fast path: once every compile shape in the mix has
# been seen, doubling the traffic adds ZERO lower/optimize/decorate
# milliseconds — only instantiate + schedule grow. Sim clock, so the
# totals are exact and host-independent.
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 128 --cache-mb 4 --metrics \
    | grep -E "^templates:|^phases" > "$TMP/warm128.txt"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --cache-mb 4 --metrics \
    | grep -E "^templates:|^phases" > "$TMP/warm256.txt"
python3 - "$TMP/warm128.txt" "$TMP/warm256.txt" <<'EOF'
import re
import sys


def parse(path):
    phases, hits = {}, 0
    for line in open(path):
        if line.startswith("templates:"):
            hits = int(re.search(r"hits=(\d+)", line).group(1))
        if line.startswith("phases"):
            phases = dict(
                (k, float(v)) for k, v in re.findall(r"(\S+)=([\d.]+)", line)
            )
    return hits, phases


hits1, p1 = parse(sys.argv[1])
hits2, p2 = parse(sys.argv[2])
full1 = sum(p1[f"compile.{k}"] for k in ("lower", "optimize", "decorate"))
full2 = sum(p2[f"compile.{k}"] for k in ("lower", "optimize", "decorate"))
assert hits1 > 0 and hits2 > hits1, f"template fast path inactive: {hits1}, {hits2}"
assert p2["compile.instantiate"] > p1["compile.instantiate"] > 0.0
assert full2 == full1, (
    f"warmed full-compile phases must not grow with traffic: {full1} -> {full2}"
)
print(f"warm OK: full-compile frozen at {full1:.4f} ms while "
      f"instantiate grew {p1['compile.instantiate']:.4f} -> "
      f"{p2['compile.instantiate']:.4f} ms ({hits1} -> {hits2} template hits)")
EOF

echo "== cross-request batching: batches form, report stays thread-independent"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 64 --rate 400 \
    --batch 4 --batch-delay-ms 5 --threads 1 > "$TMP/b1.txt"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 64 --rate 400 \
    --batch 4 --batch-delay-ms 5 --threads 4 > "$TMP/b2.txt"
cmp "$TMP/b1.txt" "$TMP/b2.txt"
grep -q "^batch: batches=" "$TMP/b1.txt"
# The former must actually merge something (a multi-member size bucket).
if ! grep -E "^batch: .*sizes .*[2-9]:[1-9]" "$TMP/b1.txt" > /dev/null; then
    echo "error: expected at least one multi-member batch" >&2
    cat "$TMP/b1.txt" >&2
    exit 1
fi
# max-batch 1 is batching OFF: byte-identical to the unbatched report.
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 64 --rate 400 > "$TMP/ub.txt"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 64 --rate 400 \
    --batch 1 > "$TMP/b_off.txt"
grep -v "^batch: " "$TMP/b_off.txt" > "$TMP/b_off_stripped.txt"
cmp "$TMP/b_off_stripped.txt" "$TMP/ub.txt"
cat "$TMP/b1.txt"

echo "== live server + TCP loadgen on an ephemeral port"
"$BIN" serve --port 0 --threads 2 > "$TMP/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$TMP/serve.log" && break
    sleep 0.1
done
ADDR="$(sed -n 's/.*listening on //p' "$TMP/serve.log" | head -1)"
if [ -z "$ADDR" ]; then
    echo "error: server never announced its address" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi
"$BIN" loadgen --connect "$ADDR" --scenario serve-mix --seed 7 \
    --requests 32 --clients 4 --slo-ms 5000 --stop-server | tee "$TMP/lgtcp.txt"
grep -q "clock=tcp" "$TMP/lgtcp.txt"
grep -q "p99=" "$TMP/lgtcp.txt"
grep -q "SLO:" "$TMP/lgtcp.txt"
wait "$SERVE_PID"
grep -q "gsuite-serve stopped" "$TMP/serve.log"

echo "serve smoke OK"
