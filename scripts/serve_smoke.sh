#!/usr/bin/env bash
# Serving-layer smoke: (1) the sim-clock load generator is byte-identical
# across runs and profiling thread counts and emits a well-formed latency
# report; (2) a live server on an ephemeral port answers a seeded TCP
# burst and shuts down cleanly.
#
# Usage: scripts/serve_smoke.sh

set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --bin gsuite-cli
BIN=target/release/gsuite-cli
TMP="$(mktemp -d)"
SERVE_PID=""
# A failed assertion must not leave the background server listening.
trap 'if [ -n "$SERVE_PID" ]; then kill "$SERVE_PID" 2>/dev/null || true; fi; rm -rf "$TMP"' EXIT

echo "== sim-clock loadgen: reproducibility across thread counts"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 64 --threads 1 > "$TMP/lg1.txt"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 64 --threads 4 > "$TMP/lg2.txt"
cmp "$TMP/lg1.txt" "$TMP/lg2.txt"
grep -q "p99=" "$TMP/lg1.txt"
grep -q "hit-rate=" "$TMP/lg1.txt"
# Repeated configs in the mix must actually hit the cache.
if grep -q "hit-rate=0.0%" "$TMP/lg1.txt"; then
    echo "error: expected a non-zero cache hit rate" >&2
    exit 1
fi
cat "$TMP/lg1.txt"

echo "== traced loadgen: metrics exposition + per-phase block, still thread-independent"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 64 --threads 1 --metrics > "$TMP/m1.txt"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 64 --threads 4 --metrics > "$TMP/m2.txt"
cmp "$TMP/m1.txt" "$TMP/m2.txt"
grep -q "phases (ms):" "$TMP/m1.txt"
grep -q "gsuite_loadgen_completed_total 64" "$TMP/m1.txt"
grep -q "# EOF" "$TMP/m1.txt"
# Tracing is observation-only: the traced report minus its "phases"
# line is byte-identical to the untraced report.
head -n "$(( $(wc -l < "$TMP/lg1.txt") + 1 ))" "$TMP/m1.txt" \
    | grep -v "^phases (ms):" > "$TMP/m1_report.txt"
cmp "$TMP/m1_report.txt" "$TMP/lg1.txt"

echo "== live server + TCP loadgen on an ephemeral port"
"$BIN" serve --port 0 --threads 2 > "$TMP/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$TMP/serve.log" && break
    sleep 0.1
done
ADDR="$(sed -n 's/.*listening on //p' "$TMP/serve.log" | head -1)"
if [ -z "$ADDR" ]; then
    echo "error: server never announced its address" >&2
    cat "$TMP/serve.log" >&2
    exit 1
fi
"$BIN" loadgen --connect "$ADDR" --scenario serve-mix --seed 7 \
    --requests 32 --clients 4 --slo-ms 5000 --stop-server | tee "$TMP/lgtcp.txt"
grep -q "clock=tcp" "$TMP/lgtcp.txt"
grep -q "p99=" "$TMP/lgtcp.txt"
grep -q "SLO:" "$TMP/lgtcp.txt"
wait "$SERVE_PID"
grep -q "gsuite-serve stopped" "$TMP/serve.log"

echo "serve smoke OK"
