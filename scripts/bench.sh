#!/usr/bin/env bash
# Runs the micro-benchmark suite and records a BENCH_<tag>.json trajectory
# file at the repository root (default tag: the current PR marker).
#
# Usage: scripts/bench.sh [tag]
#   tag   suffix for the output file, e.g. `pr1` -> BENCH_pr1.json
#
# Each bench binary measures best-of-5 batches (robust on noisy shared
# machines) and emits machine-readable JSON via `--json`; this script
# merges them with provenance (commit, date, host core count).

set -euo pipefail
cd "$(dirname "$0")/.."

TAG="${1:-pr1}"
OUT="BENCH_${TAG}.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

for bench in trace_replay kernels pipelines; do
    echo "== cargo bench --bench $bench"
    cargo bench --bench "$bench" -- --json "$TMP/$bench.json"
done

{
    echo '{'
    echo "  \"tag\": \"$TAG\","
    echo "  \"commit\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"host_cores\": $(nproc),"
    echo '  "results": {'
    first=1
    for bench in trace_replay kernels pipelines; do
        [ $first -eq 1 ] || echo ','
        first=0
        printf '    "%s": ' "$bench"
        sed 's/^/    /' "$TMP/$bench.json" | sed '1s/^    //'
    done
    echo ''
    echo '  }'
    echo '}'
} > "$OUT"

echo "wrote $OUT"
