#!/usr/bin/env bash
# Records the serving-layer trajectory numbers to BENCH_<tag>.json: the
# deterministic sim-clock benchmark (reproducible across hosts), a
# chaos-mode run (seeded fault injection under the resilience policy,
# with its availability figure), a cross-request-batching run plus the
# servebatch scenario's batched-vs-unbatched acceptance numbers, and a
# wall-clock measurement of the live threaded server on this machine.
#
# Usage: scripts/serve_bench.sh [tag]
#   tag   suffix for the output file, e.g. `pr3` -> BENCH_pr3.json
#
# Environment:
#   BENCH_NOTES="text"   recorded as a top-level "notes" field — use it
#                        to annotate accepted/intended deltas next to
#                        the numbers they explain.

set -euo pipefail
cd "$(dirname "$0")/.."

TAG="${1:-pr3}"
OUT="BENCH_${TAG}.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cargo build --release --bin gsuite-cli
BIN=target/release/gsuite-cli

# Sim-clock runs carry --metrics: the traced path adds the per-phase
# breakdown ("phases" JSON block — queue/build/compile.*/service/kernel
# milliseconds) without perturbing any headline number (tracing is
# observation-only; scripts/bench_delta.sh reads only throughput_rps and
# the latency percentiles either way).
echo "== loadgen (sim clock, closed loop)"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --clients 8 \
    --metrics --json "$TMP/sim_closed.json"
echo "== loadgen (sim clock, open loop with shedding)"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --rate 200 \
    --workers 2 --queue 8 --slo-ms 250 --metrics --json "$TMP/sim_open.json"
echo "== loadgen (sim clock, warm templates: small cache forces rebuilds)"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --clients 8 \
    --cache-mb 4 --metrics --json "$TMP/sim_warm.json"
echo "== loadgen (sim clock, chaos: seeded faults + resilience policy)"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --clients 8 \
    --fault-seed 7 --fault-rate 0.25 --deadline-ms 900 --retries 2 --breaker \
    --metrics --json "$TMP/sim_chaos.json"
echo "== loadgen (sim clock, open loop with cross-request batching)"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --rate 200 \
    --workers 2 --queue 8 --slo-ms 250 --batch 8 --batch-delay-ms 5 \
    --metrics --json "$TMP/sim_open_batched.json"
echo "== loadgen (wall clock, closed loop)"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --clients 8 \
    --clock wall --json "$TMP/wall_closed.json"

# Plan-template fast-path summary, from the warm-templates sim run
# (a 4 MiB cache keeps evicting pipelines, so rebuilds exercise the
# instantiate path against an installed template):
# hit rate, and the per-build compile-phase milliseconds of the
# instantiate path (compile.instantiate + compile.schedule) vs a full
# compile (compile.lower + optimize + decorate + schedule) — the
# ≥2× criterion the PR gate reads.
TEMPLATE_JSON="$(python3 - "$TMP/sim_warm.json" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    r = json.load(f)
phases = r.get("phases", {})
hits, misses = r.get("tpl_hits", 0), r.get("tpl_misses", 0)
inst = phases.get("compile.instantiate", 0.0)
full = sum(phases.get(f"compile.{p}", 0.0) for p in ("lower", "optimize", "decorate"))
sched = phases.get("compile.schedule", 0.0)
builds = hits + misses
# The schedule share is paid on both paths; apportion it by build count.
sched_each = sched / builds if builds else 0.0
inst_per = inst / hits + sched_each if hits else 0.0
full_per = full / misses + sched_each if misses else 0.0
print(json.dumps({
    "hit_rate": round(r.get("tpl_hit_rate", 0.0), 6),
    "instantiate_builds": hits,
    "full_builds": misses,
    "instantiate_ms_per_build": round(inst_per, 4),
    "full_compile_ms_per_build": round(full_per, 4),
    "compile_speedup": round(full_per / inst_per, 2) if inst_per else None,
}, indent=2))
EOF
)"
echo "== template fast path: $TEMPLATE_JSON"

# Cross-request batching summary, from the servebatch registry scenario
# (ego-net requests from distinct users: no cache hits, no coalescing —
# the regime batching exists for). The script asserts the acceptance
# shape: at the top offered rate, merged execution must at least DOUBLE
# the unbatched goodput while holding p99 within the SLO the unbatched
# path violates.
echo "== servebatch scenario (rate x policy sweep)"
"$BIN" run-scenario servebatch --csv "$TMP" > /dev/null
BATCH_JSON="$(python3 - "$TMP/servebatch.csv" <<'EOF'
import csv
import json
import sys

rows = list(csv.DictReader(open(sys.argv[1])))
top_rate = max(float(r["rate (rps)"]) for r in rows)
at_top = [r for r in rows if float(r["rate (rps)"]) == top_rate]
solo = next(r for r in at_top if r["policy"] == "unbatched")
batched = max(
    (r for r in at_top if r["policy"].startswith("batch<=") and "backlog" not in r["policy"]),
    key=lambda r: float(r["goodput (rps)"]),
)
def slo(r):
    return float(r["SLO"].rstrip("%")) / 100.0
speedup = float(batched["goodput (rps)"]) / float(solo["goodput (rps)"])
assert speedup >= 2.0, f"batched goodput speedup {speedup:.2f}x < 2x at {top_rate} rps"
assert slo(solo) < 0.99, f"unbatched SLO {slo(solo):.1%} should break at {top_rate} rps"
assert slo(batched) >= 0.99, f"batched SLO {slo(batched):.1%} must hold at {top_rate} rps"
print(json.dumps({
    "offered_rps": top_rate,
    "unbatched_goodput_rps": float(solo["goodput (rps)"]),
    "batched_goodput_rps": float(batched["goodput (rps)"]),
    "goodput_speedup": round(speedup, 2),
    "batched_policy": batched["policy"],
    "batched_avg_size": float(batched["avg-size"]),
    "unbatched_p99_ms": float(solo["p99 (ms)"]),
    "batched_p99_ms": float(batched["p99 (ms)"]),
    "unbatched_slo": round(slo(solo), 4),
    "batched_slo": round(slo(batched), 4),
}, indent=2))
EOF
)"
echo "== cross-request batching: $BATCH_JSON"

{
    echo '{'
    echo "  \"tag\": \"$TAG\","
    echo "  \"commit\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"host_cores\": $(nproc),"
    if [ -n "${BENCH_NOTES:-}" ]; then
        printf '  "notes": %s,\n' "$(python3 -c 'import json,sys; print(json.dumps(sys.argv[1]))' "$BENCH_NOTES")"
    fi
    printf '  "template": '
    sed 's/^/  /' <<<"$TEMPLATE_JSON" | sed '1s/^  //'
    echo ','
    printf '  "batch": '
    sed 's/^/  /' <<<"$BATCH_JSON" | sed '1s/^  //'
    echo ','
    echo '  "results": {'
    first=1
    for run in sim_closed sim_open sim_warm sim_chaos sim_open_batched wall_closed; do
        [ $first -eq 1 ] || echo ','
        first=0
        printf '    "%s": ' "$run"
        sed 's/^/    /' "$TMP/$run.json" | sed '1s/^    //'
    done
    echo ''
    echo '  }'
    echo '}'
} > "$OUT"

echo "wrote $OUT"
