#!/usr/bin/env bash
# Records the serving-layer trajectory numbers to BENCH_<tag>.json: the
# deterministic sim-clock benchmark (reproducible across hosts), a
# chaos-mode run (seeded fault injection under the resilience policy,
# with its availability figure), plus a wall-clock measurement of the
# live threaded server on this machine.
#
# Usage: scripts/serve_bench.sh [tag]
#   tag   suffix for the output file, e.g. `pr3` -> BENCH_pr3.json

set -euo pipefail
cd "$(dirname "$0")/.."

TAG="${1:-pr3}"
OUT="BENCH_${TAG}.json"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cargo build --release --bin gsuite-cli
BIN=target/release/gsuite-cli

# Sim-clock runs carry --metrics: the traced path adds the per-phase
# breakdown ("phases" JSON block — queue/build/compile.*/service/kernel
# milliseconds) without perturbing any headline number (tracing is
# observation-only; scripts/bench_delta.sh reads only throughput_rps and
# the latency percentiles either way).
echo "== loadgen (sim clock, closed loop)"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --clients 8 \
    --metrics --json "$TMP/sim_closed.json"
echo "== loadgen (sim clock, open loop with shedding)"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --rate 200 \
    --workers 2 --queue 8 --slo-ms 250 --metrics --json "$TMP/sim_open.json"
echo "== loadgen (sim clock, chaos: seeded faults + resilience policy)"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --clients 8 \
    --fault-seed 7 --fault-rate 0.25 --deadline-ms 900 --retries 2 --breaker \
    --metrics --json "$TMP/sim_chaos.json"
echo "== loadgen (wall clock, closed loop)"
"$BIN" loadgen --scenario serve-mix --seed 42 --requests 256 --clients 8 \
    --clock wall --json "$TMP/wall_closed.json"

{
    echo '{'
    echo "  \"tag\": \"$TAG\","
    echo "  \"commit\": \"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)\","
    echo "  \"date\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
    echo "  \"host_cores\": $(nproc),"
    echo '  "results": {'
    first=1
    for run in sim_closed sim_open sim_chaos wall_closed; do
        [ $first -eq 1 ] || echo ','
        first=0
        printf '    "%s": ' "$run"
        sed 's/^/    /' "$TMP/$run.json" | sed '1s/^    //'
    done
    echo ''
    echo '  }'
    echo '}'
} > "$OUT"

echo "wrote $OUT"
