//! # gSuite-rs
//!
//! A from-scratch Rust reproduction of *"gSuite: A Flexible and Framework
//! Independent Benchmark Suite for Graph Neural Network Inference on GPUs"*
//! (IISWC 2022, arXiv:2210.11601) — the benchmark suite, every substrate it
//! needs (graph datasets, dense/sparse math, a cycle-level SIMT GPU
//! simulator, an nvprof-like analytical profiler) and the harness that
//! regenerates every table and figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace members:
//!
//! | crate | contents |
//! |---|---|
//! | [`tensor`] | dense matrices, CSR/COO sparse, GEMM/SpMM/SpGEMM reference math |
//! | [`graph`]  | graph formats, conversions, normalization, Table IV datasets |
//! | [`gpu`]    | the cycle-level SIMT GPU simulator (GPGPU-Sim stand-in) |
//! | [`profile`]| kernel metrics, analytical profiler (nvprof stand-in), reports |
//! | [`core`]   | the gSuite core kernels, GNN models, pipelines, config, baselines |
//! | [`scenarios`] | the scenario engine: declarative experiment grids, the figure registry |
//! | [`serve`]  | the serving layer: benchmark service, LRU pipeline cache, load generator |
//! | [`telemetry`] | structured tracing + metrics: spans, Chrome-trace/Prometheus exporters |
//!
//! # Quickstart
//!
//! The README's library quickstart, verbatim — `cargo test --doc` runs
//! it, so the README can never drift from the API:
//!
//! ```
//! use gsuite::core::config::RunConfig;
//! use gsuite::core::pipeline::PipelineRun;
//! use gsuite::profile::HwProfiler;
//!
//! fn main() -> Result<(), gsuite::core::CoreError> {
//!     // Configure a 2-layer GCN on (a scaled) Cora, message-passing model.
//!     let config = RunConfig {
//!         scale: 0.05,
//!         hidden: 8,
//!         ..RunConfig::default()
//!     };
//!     let graph = config.load_graph();
//!     let run = PipelineRun::build(&graph, &config)?;
//!     let profile = run.profile(&HwProfiler::v100());
//!     println!("{}: {:.3} ms end-to-end", run.label, profile.total_time_ms());
//!     Ok(())
//! }
//! ```

pub use gsuite_core as core;
pub use gsuite_gpu as gpu;
pub use gsuite_graph as graph;
pub use gsuite_profile as profile;
pub use gsuite_scenarios as scenarios;
pub use gsuite_serve as serve;
pub use gsuite_telemetry as telemetry;
pub use gsuite_tensor as tensor;
