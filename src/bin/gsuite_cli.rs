//! The gSuite command-line interface — the paper's "pass a few parameters"
//! user surface (Fig. 1), the scenario registry, and the serving layer.
//!
//! ```text
//! gsuite-cli [--config FILE] [--model gcn|gin|sag] [--comp mp|spmm]
//!            [--dataset cora|citeseer|pubmed|reddit|livejournal]
//!            [--scale F] [--layers N] [--hidden N]
//!            [--framework gsuite|pyg|dgl] [--seed N]
//!            [--backend hw|sim] [--sim-sms N] [--max-ctas N] [--quiet]
//!
//! gsuite-cli run-scenario --list [--filter STR]
//! gsuite-cli run-scenario NAME [--quick|--full] [--csv DIR] [--threads N]
//!                              [--opt 0|2] [--shards N] [--partitioner NAME]
//!                              [--batch-size N] [--fanout 10x5] [--trace FILE]
//!
//! gsuite-cli docs-scenarios [--check|--write]
//!
//! gsuite-cli explain [MODEL] [--json] [pipeline flags ...]
//!
//! gsuite-cli serve   [--host H] [--port N] [--threads N] [--queue N]
//!                    [--cache-mb N] [--fault-seed N [--fault-rate F]]
//!                    [--batch N [--batch-delay-ms F] [--batch-backlog N]]
//!                    [--quick|--full]
//! gsuite-cli loadgen [--scenario NAME] [--seed N] [--requests N]
//!                    [--clients N | --rate RPS] [--clock sim|wall]
//!                    [--workers N] [--threads N] [--queue N] [--cache-mb N]
//!                    [--slo-ms F] [--fault-seed N [--fault-rate F]]
//!                    [--deadline-ms F] [--retries N] [--breaker]
//!                    [--batch N [--batch-delay-ms F] [--batch-backlog N]]
//!                    [--connect ADDR [--stop-server]]
//!                    [--json FILE] [--trace FILE] [--metrics] [--full]
//! gsuite-cli trace-export FILE [loadgen flags]   # sim clock, forced
//! ```
//!
//! Without a subcommand: builds the configured pipeline, runs it
//! functionally, profiles every kernel launch on the selected backend and
//! prints a characterization report. `run-scenario` executes a named
//! experiment grid from the registry; `serve` runs the benchmark service
//! over TCP; `loadgen` drives a workload mix through the service (or a
//! deterministic simulation of it) and reports throughput, latency
//! percentiles and SLO attainment.

use std::process::ExitCode;

use gsuite_core::config::RunConfig;
use gsuite_core::pipeline::PipelineRun;
use gsuite_profile::{HwProfiler, PipelineProfile, Profiler, SimProfiler, TextTable};
use gsuite_scenarios::{registry, BenchOpts};
use gsuite_serve::fault::{BreakerConfig, FaultPlan, RetryPolicy};
use gsuite_serve::sim::BatchPolicy;
use gsuite_serve::{
    loadgen_tcp, run_loadgen, run_loadgen_traced, serve_blocking, ArrivalMode, ClockMode,
    LoadReport, LoadSpec, ServeConfig,
};
use gsuite_telemetry::{Attr, ClockDomain, SpanSink, Trace};

/// A subcommand handler over its argument tail.
type Subcommand = fn(&[String]) -> Result<(), String>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dispatch: Option<Subcommand> = match args.first().map(String::as_str) {
        Some("run-scenario") => Some(run_scenario_cmd),
        Some("explain") => Some(explain_cmd),
        Some("serve") => Some(serve_cmd),
        Some("loadgen") => Some(loadgen_cmd),
        Some("trace-export") => Some(trace_export_cmd),
        Some("docs-scenarios") => Some(docs_scenarios_cmd),
        _ => None,
    };
    if let Some(cmd) = dispatch {
        return match cmd(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!("run with --help for usage");
                ExitCode::FAILURE
            }
        };
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run with --help for usage");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "gsuite-cli: framework-independent GNN inference benchmark\n\
         \n\
         pipeline flags (defaults in parentheses):\n\
           --config FILE          apply a key=value defaults file first\n\
           --model gcn|gin|sag    GNN model (gcn)\n\
           --comp mp|spmm         computational model (mp)\n\
           --dataset NAME         cora|citeseer|pubmed|reddit|livejournal (cora)\n\
           --scale F              dataset scale in (0,1] (1.0)\n\
           --layers N             GNN layers (2)\n\
           --hidden N             hidden width (16)\n\
           --framework NAME       gsuite|pyg|dgl (gsuite)\n\
           --seed N               weight seed (42)\n\
           --functional BOOL      compute real outputs host-side (true)\n\
           --opt 0|2              plan optimization level (0 = golden-compatible\n\
                                  launch stream, 2 = fusion/hoist/memory planning)\n\
           --shards N             modeled devices; N > 1 partitions the graph and\n\
                                  compiles one op DAG per shard + halo exchanges (1)\n\
           --partitioner NAME     hash|range|edgecut shard assignment (hash)\n\
           --batch-size N         neighbor-sampled mini-batch size; N > 0 compiles\n\
                                  every sampled batch into one plan (0 = full graph)\n\
           --fanout SPEC          per-hop sampling fanouts, e.g. 10x5 (10 per hop)\n\
           --seed-node N          compile one sampled ego-net around node N\n\
         \n\
         measurement flags:\n\
           --backend hw|sim       analytical profiler or cycle simulator (hw)\n\
           --sim-sms N            simulated SM count for --backend sim (8)\n\
           --max-ctas N           CTA sampling cap for --backend sim (2048)\n\
           --spans                append the run's span tree (compile phases,\n\
                                  per-kernel launches) to the report\n\
           --quiet                print only the summary line\n\
         \n\
         scenario registry:\n\
           run-scenario --list [--filter STR]   list registered scenarios\n\
           run-scenario NAME [--quick|--full] [--csv DIR] [--threads N]\n\
                        [--opt 0|2] [--shards N] [--partitioner NAME]\n\
                        [--batch-size N] [--fanout SPEC] [--trace FILE]\n\
                                  run one named experiment grid (the paper's\n\
                                  figures plus beyond-paper scenarios); --opt\n\
                                  forces one plan-optimization level on every\n\
                                  cell (see the planopt scenario for O0 vs O2),\n\
                                  --shards/--partitioner force the multi-GPU\n\
                                  axis (see the multigpu scenario),\n\
                                  --batch-size/--fanout force the mini-batch\n\
                                  axes (see the minibatch scenario);\n\
                                  --trace exports the grid as a Chrome-trace\n\
                                  JSON (Perfetto-loadable, sim clock)\n\
           docs-scenarios [--check|--write]\n\
                                  the generated markdown scenario reference\n\
                                  (docs/SCENARIOS.md); --check fails on drift\n\
         \n\
         plan IR:\n\
           explain [MODEL] [--json] [pipeline flags ...]\n\
                                  dump the configuration's kernel-dataflow plan\n\
                                  at O0 and O2: ops, pass decisions (fusion,\n\
                                  hoisting, dead buffers), per-buffer liveness,\n\
                                  planned addresses and peak device bytes;\n\
                                  --json emits the machine-readable dump\n\
         \n\
         serving layer (gsuite-serve):\n\
           serve [--host H] [--port N] [--threads N] [--queue N]\n\
                 [--cache-mb N] [--fault-seed N [--fault-rate F]]\n\
                 [--batch N [--batch-delay-ms F] [--batch-backlog N]]\n\
                 [--quick|--full]\n\
                                  run the benchmark service over TCP\n\
                                  (port 0 picks an ephemeral port);\n\
                                  --fault-seed injects a seeded mixed\n\
                                  fault plan at --fault-rate (0.1);\n\
                                  --batch merges up to N compatible\n\
                                  queued requests into one batched Plan\n\
                                  (window --batch-delay-ms, default 2;\n\
                                  --batch-backlog bounds open windows,\n\
                                  shedding mergeable submissions past it)\n\
           loadgen [--scenario NAME] [--seed N] [--requests N]\n\
                   [--clients N | --rate RPS] [--clock sim|wall]\n\
                   [--workers N] [--threads N] [--queue N] [--cache-mb N]\n\
                   [--slo-ms F] [--fault-seed N [--fault-rate F]]\n\
                   [--deadline-ms F] [--retries N] [--breaker]\n\
                   [--batch N [--batch-delay-ms F] [--batch-backlog N]]\n\
                   [--connect ADDR [--stop-server]]\n\
                   [--json FILE] [--trace FILE] [--metrics] [--full]\n\
                                  drive a seeded workload mix and report\n\
                                  throughput + p50/p95/p99 latency + SLO\n\
                                  (--clock sim, the default, is exactly\n\
                                  reproducible for a given seed — also\n\
                                  under --fault-seed chaos injection);\n\
                                  --deadline-ms / --retries / --breaker\n\
                                  enable the resilience policy; --batch\n\
                                  enables cross-request batching (open\n\
                                  loop only); --trace exports the run's\n\
                                  span stream as a Chrome-trace JSON,\n\
                                  --metrics appends a Prometheus-style\n\
                                  exposition + per-phase breakdown\n\
           trace-export FILE [loadgen flags]\n\
                                  run the loadgen on the (forced) sim clock\n\
                                  and export its span stream to FILE —\n\
                                  byte-identical across runs, hosts and\n\
                                  thread counts; the server-side `metrics`\n\
                                  protocol command exposes the same\n\
                                  registry over TCP"
    );
}

/// Parses the value following flag `i`, or errors naming the flag.
fn take_value(args: &[String], i: usize) -> Result<&str, String> {
    args.get(i + 1)
        .map(String::as_str)
        .ok_or_else(|| format!("flag {} needs a value", args[i]))
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str, expected: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} expects {expected} (got {value:?})"))
}

fn parse_positive(args: &[String], i: usize) -> Result<usize, String> {
    let n: usize = parse_num(take_value(args, i)?, args[i].as_str(), "a positive integer")?;
    if n == 0 {
        return Err(format!("{} expects a positive integer", args[i]));
    }
    Ok(n)
}

/// Parses `--fault-rate`'s value: a probability scale in (0, 1].
fn parse_fault_rate(args: &[String], i: usize) -> Result<f64, String> {
    let r: f64 = parse_num(take_value(args, i)?, "--fault-rate", "a rate in (0, 1]")?;
    if !(r > 0.0 && r <= 1.0) {
        return Err("--fault-rate expects a rate in (0, 1]".to_string());
    }
    Ok(r)
}

/// Resolves `--fault-seed` / `--fault-rate` into a mixed fault plan.
/// The seed is the opt-in; a rate without one is a mistake, not a plan.
fn resolve_fault(seed: Option<u64>, rate: Option<f64>) -> Result<Option<FaultPlan>, String> {
    match (seed, rate) {
        (Some(seed), rate) => Ok(Some(FaultPlan::mixed(seed, rate.unwrap_or(0.1)))),
        (None, Some(_)) => Err("--fault-rate only applies with --fault-seed N".to_string()),
        (None, None) => Ok(None),
    }
}

/// Resolves `--batch` / `--batch-delay-ms` / `--batch-backlog` into a
/// cross-request batching policy. `--batch N` is the opt-in; the other
/// two refine its forming window and admission bound.
fn resolve_batch(
    max: Option<usize>,
    delay_ms: Option<f64>,
    backlog: Option<usize>,
) -> Result<Option<BatchPolicy>, String> {
    match (max, delay_ms, backlog) {
        (None, None, None) => Ok(None),
        (None, ..) => {
            Err("--batch-delay-ms / --batch-backlog only apply with --batch N".to_string())
        }
        (Some(max_batch), delay, backlog) => {
            let defaults = BatchPolicy::default();
            Ok(Some(BatchPolicy {
                max_batch,
                max_queue_delay_ms: delay.unwrap_or(defaults.max_queue_delay_ms),
                max_backlog: backlog.unwrap_or(defaults.max_backlog),
            }))
        }
    }
}

/// Parses `--batch-delay-ms`'s value: a non-negative window.
fn parse_batch_delay(args: &[String], i: usize) -> Result<f64, String> {
    let d: f64 = parse_num(take_value(args, i)?, "--batch-delay-ms", "milliseconds")?;
    if d < 0.0 {
        return Err("--batch-delay-ms expects a non-negative window".to_string());
    }
    Ok(d)
}

/// `gsuite-cli run-scenario ...`: list, filter or execute registry
/// entries. Every flag is matched explicitly — unknown flags are an
/// error, not something to forward and misreport.
fn run_scenario_cmd(args: &[String]) -> Result<(), String> {
    let mut opts = BenchOpts::default();
    let mut list = false;
    let mut filter: Option<String> = None;
    let mut name: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut trace_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print_help();
                return Ok(());
            }
            "--list" => {
                list = true;
                i += 1;
            }
            "--filter" => {
                filter = Some(take_value(args, i)?.to_string());
                i += 2;
            }
            "--quick" => {
                opts.quick = true;
                i += 1;
            }
            "--full" => {
                opts.full = true;
                i += 1;
            }
            "--csv" => {
                opts.csv_dir = Some(take_value(args, i)?.into());
                i += 2;
            }
            "--threads" => {
                threads = Some(parse_positive(args, i)?);
                i += 2;
            }
            "--opt" => {
                let value = take_value(args, i)?;
                opts.opt_override = Some(
                    gsuite_core::OptLevel::parse(value)
                        .ok_or_else(|| format!("--opt expects 0|2 (got {value:?})"))?,
                );
                i += 2;
            }
            "--shards" => {
                opts.shards_override = Some(parse_positive(args, i)?);
                i += 2;
            }
            "--partitioner" => {
                let value = take_value(args, i)?;
                opts.partitioner_override = Some(
                    gsuite_graph::PartitionStrategy::parse(value).ok_or_else(|| {
                        format!("--partitioner expects hash|range|edgecut (got {value:?})")
                    })?,
                );
                i += 2;
            }
            "--batch-size" => {
                opts.batch_size_override = Some(parse_num(
                    take_value(args, i)?,
                    "--batch-size",
                    "a batch size (0 = full graph)",
                )?);
                i += 2;
            }
            "--fanout" => {
                let value = take_value(args, i)?;
                opts.fanout_override = Some(gsuite_graph::parse_fanout(value).ok_or_else(|| {
                    format!("--fanout expects x-separated per-hop fanouts, e.g. 10x5 (got {value:?})")
                })?);
                i += 2;
            }
            "--trace" => {
                trace_path = Some(take_value(args, i)?.to_string());
                i += 2;
            }
            flag if flag.starts_with("--") => {
                return Err(format!(
                    "unknown run-scenario flag {flag:?} (expected --list | --filter STR | \
                     --quick | --full | --csv DIR | --threads N | --opt 0|2 | --shards N | \
                     --partitioner hash|range|edgecut | --batch-size N | --fanout 10x5 | \
                     --trace FILE)"
                ));
            }
            other => {
                if name.replace(other.to_string()).is_some() {
                    return Err(format!("unexpected extra scenario name {other:?}"));
                }
                i += 1;
            }
        }
    }

    if let Some(n) = &name {
        if list || filter.is_some() {
            return Err(format!(
                "scenario name {n:?} conflicts with --list/--filter (run one or list, not both)"
            ));
        }
    }

    if list || filter.is_some() {
        let scenarios = match &filter {
            Some(f) => registry::matching(f),
            None => registry::all(),
        };
        if scenarios.is_empty() {
            return Err(format!(
                "no scenario matches filter {:?}",
                filter.as_deref().unwrap_or("")
            ));
        }
        println!(
            "registered scenarios ({} mode grid sizes):\n",
            mode_name(&opts)
        );
        println!("{}", registry::list_table(&scenarios, &opts).render());
        return Ok(());
    }

    let Some(name) = name else {
        return Err("run-scenario needs a scenario name (or --list)".to_string());
    };
    let scenario = registry::find(&name).ok_or_else(|| {
        let known: Vec<&str> = registry::all().iter().map(|s| s.name).collect();
        format!("unknown scenario {name:?} (registry: {})", known.join(", "))
    })?;
    let (result, report) = match threads {
        Some(t) => scenario.run_threads(&opts, t),
        None => scenario.run(&opts),
    };
    report.emit(&opts);
    if let Some(path) = trace_path {
        let trace = gsuite_scenarios::trace::scenario_trace(&result);
        write_trace(&path, &trace)?;
    }
    Ok(())
}

/// Exports a trace as Chrome-trace JSON, self-validating the document
/// before it touches disk, and announces the write.
fn write_trace(path: &str, trace: &Trace) -> Result<(), String> {
    let json = trace.to_chrome_json();
    gsuite_telemetry::json::validate(&json)
        .map_err(|e| format!("internal error: exported trace is not valid JSON: {e}"))?;
    std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!(
        "[trace] {path} ({} spans, {} roots, clock={})",
        trace.spans.len(),
        trace.root_count(),
        trace.clock.label()
    );
    Ok(())
}

/// `gsuite-cli docs-scenarios [--check|--write]`: the generated markdown
/// scenario reference. Prints to stdout by default; `--write` updates
/// `docs/SCENARIOS.md`, `--check` (CI) fails when the committed file has
/// drifted from the registry.
fn docs_scenarios_cmd(args: &[String]) -> Result<(), String> {
    let mut check = false;
    let mut write = false;
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => {
                print_help();
                return Ok(());
            }
            "--check" => check = true,
            "--write" => write = true,
            other => {
                return Err(format!(
                    "unknown docs-scenarios flag {other:?} (expected --check | --write)"
                ))
            }
        }
    }
    if check && write {
        return Err("--check and --write are mutually exclusive".to_string());
    }
    let docs = registry::scenario_docs(&BenchOpts::default());
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/SCENARIOS.md");
    if write {
        std::fs::create_dir_all(path.parent().expect("docs/ has a parent"))
            .map_err(|e| format!("cannot create docs/: {e}"))?;
        std::fs::write(&path, &docs)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
        return Ok(());
    }
    if check {
        let committed = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        if committed != docs {
            let drift = committed
                .lines()
                .zip(docs.lines())
                .position(|(a, b)| a != b)
                .map(|i| format!("first drift at line {}", i + 1))
                .unwrap_or_else(|| "line counts differ".to_string());
            return Err(format!(
                "docs/SCENARIOS.md is out of sync with the scenario registry ({drift}); \
                 regenerate with `gsuite-cli docs-scenarios --write` and commit the diff"
            ));
        }
        println!("docs/SCENARIOS.md is in sync with the registry");
        return Ok(());
    }
    print!("{docs}");
    Ok(())
}

/// `gsuite-cli explain [MODEL] [pipeline flags ...]`: dump the
/// configuration's kernel-dataflow plan at O0 and O2 — ops, pass
/// decisions, buffer liveness, planned addresses and peak device bytes.
fn explain_cmd(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return Ok(());
    }
    // The report always shows both optimization levels side by side, so
    // `--opt` would have no effect here — reject it rather than silently
    // ignoring it.
    if args
        .iter()
        .any(|a| a == "--opt" || a.starts_with("--opt=") || a.starts_with("--opt-level"))
    {
        return Err(
            "explain always renders both O0 and O2; drop --opt (use `run-scenario --opt` or \
             the top-level `--opt` flag to run at one level)"
                .to_string(),
        );
    }
    // `--json` switches to the machine-readable dump; it is not a
    // pipeline flag, so strip it before RunConfig sees the tail.
    let json = args.iter().any(|a| a == "--json");
    let args: Vec<String> = args.iter().filter(|a| *a != "--json").cloned().collect();
    // An optional leading positional names the model; everything else is
    // standard `--key value` pipeline flags.
    let mut rest = &args[..];
    let mut model: Option<gsuite_core::config::GnnModel> = None;
    if let Some(first) = args.first() {
        if !first.starts_with("--") {
            model = Some(gsuite_core::config::GnnModel::parse(first).ok_or_else(|| {
                format!("unknown model {first:?} (expected gcn|gin|sag|gat|sgc)")
            })?);
            rest = &args[1..];
        }
    }
    let mut config = RunConfig::from_args(rest).map_err(|e| e.to_string())?;
    if let Some(m) = model {
        config.model = m;
    }
    let graph = config.load_graph();
    let text = if json {
        gsuite_core::plan::explain::explain_json(&graph, &config).map_err(|e| e.to_string())?
    } else {
        gsuite_core::plan::explain::explain(&graph, &config).map_err(|e| e.to_string())?
    };
    print!("{text}");
    Ok(())
}

/// `gsuite-cli serve ...`: the benchmark service over TCP.
fn serve_cmd(args: &[String]) -> Result<(), String> {
    let mut host = "127.0.0.1".to_string();
    let mut port: u16 = 4816;
    let mut cfg = ServeConfig {
        workers: gsuite_par::default_threads(),
        ..ServeConfig::default()
    };
    let mut fault_seed: Option<u64> = None;
    let mut fault_rate: Option<f64> = None;
    let mut batch_max: Option<usize> = None;
    let mut batch_delay: Option<f64> = None;
    let mut batch_backlog: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print_help();
                return Ok(());
            }
            "--host" => {
                host = take_value(args, i)?.to_string();
                i += 2;
            }
            "--port" => {
                port = parse_num(take_value(args, i)?, "--port", "a port number")?;
                i += 2;
            }
            "--threads" | "--workers" => {
                cfg.workers = parse_positive(args, i)?;
                i += 2;
            }
            "--queue" => {
                cfg.queue_cap = parse_positive(args, i)?;
                i += 2;
            }
            "--cache-mb" => {
                let mb: u64 = parse_num(take_value(args, i)?, "--cache-mb", "an integer")?;
                cfg.cache_bytes = mb << 20;
                i += 2;
            }
            "--fault-seed" => {
                fault_seed = Some(parse_num(
                    take_value(args, i)?,
                    "--fault-seed",
                    "an integer",
                )?);
                i += 2;
            }
            "--fault-rate" => {
                fault_rate = Some(parse_fault_rate(args, i)?);
                i += 2;
            }
            "--batch" => {
                batch_max = Some(parse_positive(args, i)?);
                i += 2;
            }
            "--batch-delay-ms" => {
                batch_delay = Some(parse_batch_delay(args, i)?);
                i += 2;
            }
            "--batch-backlog" => {
                batch_backlog = Some(parse_num(
                    take_value(args, i)?,
                    "--batch-backlog",
                    "an integer",
                )?);
                i += 2;
            }
            "--quick" => {
                cfg.opts.quick = true;
                cfg.opts.full = false;
                i += 1;
            }
            "--full" => {
                cfg.opts.full = true;
                cfg.opts.quick = false;
                i += 1;
            }
            other => {
                return Err(format!(
                    "unknown serve flag {other:?} (expected --host H | --port N | --threads N | \
                     --queue N | --cache-mb N | --fault-seed N | --fault-rate F | \
                     --batch N | --batch-delay-ms F | --batch-backlog N | \
                     --quick | --full)"
                ));
            }
        }
    }
    cfg.fault = resolve_fault(fault_seed, fault_rate)?;
    cfg.batch = resolve_batch(batch_max, batch_delay, batch_backlog)?;
    println!(
        "gsuite-serve: {} workers, queue depth {}, cache {} MiB, {} scales{}",
        cfg.workers,
        cfg.queue_cap,
        cfg.cache_bytes >> 20,
        mode_name(&cfg.opts),
        match cfg.fault {
            Some(plan) => format!(", fault seed {}", plan.seed),
            None => String::new(),
        }
    );
    serve_blocking(&host, port, cfg).map_err(|e| format!("serve failed: {e}"))
}

/// `gsuite-cli loadgen ...`: drive a workload mix, in-process (simulated
/// or wall clock) or against a remote server.
/// Parsed `loadgen` command line, shared with `trace-export` (which is a
/// sim-clock loadgen run whose span stream goes to a file).
struct LoadgenArgs {
    spec: LoadSpec,
    connect: Option<String>,
    stop_server: bool,
    json_path: Option<String>,
    trace_path: Option<String>,
    metrics: bool,
}

/// Parse loadgen flags. Returns `Ok(None)` when `--help` was handled.
fn parse_loadgen_args(args: &[String]) -> Result<Option<LoadgenArgs>, String> {
    let mut spec = LoadSpec::default();
    let mut connect: Option<String> = None;
    let mut stop_server = false;
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics = false;
    let mut fault_seed: Option<u64> = None;
    let mut fault_rate: Option<f64> = None;
    let mut batch_max: Option<usize> = None;
    let mut batch_delay: Option<f64> = None;
    let mut batch_backlog: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print_help();
                return Ok(None);
            }
            "--scenario" => {
                spec.scenario = take_value(args, i)?.to_string();
                i += 2;
            }
            "--seed" => {
                spec.seed = parse_num(take_value(args, i)?, "--seed", "an integer")?;
                i += 2;
            }
            "--requests" => {
                spec.requests = parse_positive(args, i)?;
                i += 2;
            }
            "--clients" => {
                spec.arrival = ArrivalMode::Closed {
                    clients: parse_positive(args, i)?,
                };
                i += 2;
            }
            "--rate" => {
                let r: f64 = parse_num(take_value(args, i)?, "--rate", "requests per second")?;
                if r <= 0.0 {
                    return Err("--rate expects a positive requests-per-second value".to_string());
                }
                spec.arrival = ArrivalMode::Open { rate_rps: r };
                i += 2;
            }
            "--clock" => {
                spec.clock = match take_value(args, i)? {
                    "sim" => ClockMode::Sim,
                    "wall" => ClockMode::Wall,
                    other => return Err(format!("unknown clock {other:?} (expected sim|wall)")),
                };
                i += 2;
            }
            // --threads parallelizes the profiling pass only; the modeled
            // service's worker pool is --workers. Keeping them separate is
            // what makes sim-clock reports thread-count independent.
            "--threads" => {
                spec.threads = parse_positive(args, i)?;
                i += 2;
            }
            "--workers" => {
                spec.workers = parse_positive(args, i)?;
                i += 2;
            }
            "--queue" => {
                spec.queue_cap = parse_positive(args, i)?;
                i += 2;
            }
            "--cache-mb" => {
                let mb: u64 = parse_num(take_value(args, i)?, "--cache-mb", "an integer")?;
                spec.cache_bytes = mb << 20;
                i += 2;
            }
            "--slo-ms" => {
                spec.slo_ms = Some(parse_num(take_value(args, i)?, "--slo-ms", "milliseconds")?);
                i += 2;
            }
            "--fault-seed" => {
                fault_seed = Some(parse_num(
                    take_value(args, i)?,
                    "--fault-seed",
                    "an integer",
                )?);
                i += 2;
            }
            "--fault-rate" => {
                fault_rate = Some(parse_fault_rate(args, i)?);
                i += 2;
            }
            "--deadline-ms" => {
                let d: f64 = parse_num(take_value(args, i)?, "--deadline-ms", "milliseconds")?;
                if d <= 0.0 {
                    return Err("--deadline-ms expects a positive budget".to_string());
                }
                spec.resilience.deadline_ms = Some(d);
                i += 2;
            }
            "--retries" => {
                let n: u32 = parse_num(take_value(args, i)?, "--retries", "an integer")?;
                spec.resilience.retry = RetryPolicy::retries(n);
                i += 2;
            }
            "--breaker" => {
                spec.resilience.breaker = Some(BreakerConfig::default());
                i += 1;
            }
            "--batch" => {
                batch_max = Some(parse_positive(args, i)?);
                i += 2;
            }
            "--batch-delay-ms" => {
                batch_delay = Some(parse_batch_delay(args, i)?);
                i += 2;
            }
            "--batch-backlog" => {
                batch_backlog = Some(parse_num(
                    take_value(args, i)?,
                    "--batch-backlog",
                    "an integer",
                )?);
                i += 2;
            }
            "--connect" => {
                connect = Some(take_value(args, i)?.to_string());
                i += 2;
            }
            "--stop-server" => {
                stop_server = true;
                i += 1;
            }
            "--json" => {
                json_path = Some(take_value(args, i)?.to_string());
                i += 2;
            }
            "--trace" => {
                trace_path = Some(take_value(args, i)?.to_string());
                i += 2;
            }
            "--metrics" => {
                metrics = true;
                i += 1;
            }
            // The loadgen defaults to quick scales (a traffic benchmark
            // wants cheap per-request work); --full opts into Table IV
            // scales, --quick is accepted for symmetry.
            "--quick" => {
                spec.opts = BenchOpts::quick();
                i += 1;
            }
            "--full" => {
                spec.opts = BenchOpts {
                    full: true,
                    ..BenchOpts::default()
                };
                i += 1;
            }
            other => {
                return Err(format!(
                    "unknown loadgen flag {other:?} (expected --scenario NAME | --seed N | \
                     --requests N | --clients N | --rate RPS | --clock sim|wall | --workers N | \
                     --threads N | --queue N | --cache-mb N | --slo-ms F | --fault-seed N | \
                     --fault-rate F | --deadline-ms F | --retries N | --breaker | \
                     --batch N | --batch-delay-ms F | --batch-backlog N | \
                     --connect ADDR | --stop-server | --json FILE | --trace FILE | --metrics | \
                     --quick | --full)"
                ));
            }
        }
    }
    spec.fault = resolve_fault(fault_seed, fault_rate)?;
    spec.batch = resolve_batch(batch_max, batch_delay, batch_backlog)?;
    Ok(Some(LoadgenArgs {
        spec,
        connect,
        stop_server,
        json_path,
        trace_path,
        metrics,
    }))
}

fn loadgen_cmd(args: &[String]) -> Result<(), String> {
    let Some(la) = parse_loadgen_args(args)? else {
        return Ok(());
    };
    if la.stop_server && la.connect.is_none() {
        return Err("--stop-server only applies with --connect ADDR".to_string());
    }
    if la.trace_path.is_some() && la.connect.is_some() {
        return Err("--trace needs the in-process loadgen; drop --connect ADDR".to_string());
    }
    // --metrics alone is satisfied from the report's counters; --trace (or
    // --metrics on an in-process run, where it is free) takes the traced
    // path so per-phase totals are available too.
    let traced = la.trace_path.is_some() || (la.metrics && la.connect.is_none());
    let (report, trace) = match &la.connect {
        Some(addr) => (loadgen_tcp(addr, &la.spec, la.stop_server)?, None),
        None if traced => {
            let (report, trace) = run_loadgen_traced(&la.spec)?;
            (report, Some(trace))
        }
        None => (run_loadgen(&la.spec)?, None),
    };
    emit_loadgen_output(&report, trace.as_ref(), &la)
}

/// Shared `loadgen`/`trace-export` tail: report, then the optional
/// `--metrics` exposition, `--json` dump, and `--trace` export.
fn emit_loadgen_output(
    report: &LoadReport,
    trace: Option<&Trace>,
    la: &LoadgenArgs,
) -> Result<(), String> {
    print!("{}", report.render());
    if la.metrics {
        print!("{}", report.metrics().render());
    }
    if let Some(path) = &la.json_path {
        std::fs::write(path, report.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("[json] {path}");
    }
    if let (Some(path), Some(trace)) = (&la.trace_path, trace) {
        write_trace(path, trace)?;
    }
    Ok(())
}

/// `trace-export FILE [loadgen flags]` — a deterministic sim-clock loadgen
/// run whose span stream is exported as Chrome-trace JSON at FILE.
fn trace_export_cmd(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return Ok(());
    }
    let Some(file) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(
            "trace-export expects an output FILE as its first argument (then loadgen flags)"
                .to_string(),
        );
    };
    let Some(mut la) = parse_loadgen_args(&args[1..])? else {
        return Ok(());
    };
    if la.connect.is_some() {
        return Err("trace-export runs the in-process loadgen; drop --connect ADDR".to_string());
    }
    if matches!(la.spec.clock, ClockMode::Wall) {
        return Err(
            "trace-export is deterministic by design: sim clock only (drop --clock wall)"
                .to_string(),
        );
    }
    la.spec.clock = ClockMode::Sim;
    la.trace_path = Some(file.clone());
    let (report, trace) = run_loadgen_traced(&la.spec)?;
    emit_loadgen_output(&report, Some(&trace), &la)
}

fn mode_name(opts: &BenchOpts) -> &'static str {
    if opts.full {
        "full"
    } else if opts.quick {
        "quick"
    } else {
        "default"
    }
}

fn run(args: &[String]) -> Result<(), String> {
    // Split measurement flags (handled here) from pipeline flags
    // (handled by RunConfig).
    let mut backend = "hw".to_string();
    let mut sim_sms: usize = 8;
    let mut max_ctas: u64 = 2048;
    let mut quiet = false;
    let mut spans = false;
    let mut config_file: Option<String> = None;
    let mut pipeline_args: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => {
                backend = take_value(args, i)?.to_string();
                i += 2;
            }
            "--sim-sms" => {
                sim_sms = parse_num(take_value(args, i)?, "--sim-sms", "an integer")?;
                i += 2;
            }
            "--max-ctas" => {
                max_ctas = parse_num(take_value(args, i)?, "--max-ctas", "an integer")?;
                i += 2;
            }
            "--config" => {
                config_file = Some(take_value(args, i)?.to_string());
                i += 2;
            }
            "--quiet" => {
                quiet = true;
                i += 1;
            }
            "--spans" => {
                spans = true;
                i += 1;
            }
            _ => {
                pipeline_args.push(args[i].clone());
                i += 1;
            }
        }
    }

    let mut config = RunConfig::default();
    if let Some(path) = config_file {
        let content = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read config file {path}: {e}"))?;
        config.apply_file(&content).map_err(|e| e.to_string())?;
    }
    let overrides = RunConfig::from_args(&pipeline_args).map_err(|e| e.to_string())?;
    // CLI flags win over file defaults: re-apply them on top.
    if !pipeline_args.is_empty() {
        config = merge(config, overrides, &pipeline_args);
    }

    let profiler: Box<dyn Profiler> = match backend.as_str() {
        "hw" => Box::new(HwProfiler::v100()),
        "sim" => Box::new(SimProfiler::scaled(sim_sms.clamp(1, 80)).max_ctas(Some(max_ctas))),
        other => return Err(format!("unknown backend {other:?} (expected hw|sim)")),
    };

    let graph = config.load_graph();
    if !quiet {
        println!("gSuite-rs | {}", config.label());
        let stats = graph.stats();
        println!(
            "graph: {} nodes, {} edges, {} features | layers={} hidden={}\n",
            stats.nodes, stats.edges, stats.feature_len, config.layers, config.hidden
        );
    }
    let run = PipelineRun::build(&graph, &config).map_err(|e| e.to_string())?;
    let profile = run.profile(profiler.as_ref());

    if !quiet {
        if let Some(sharding) = &profile.sharding {
            // Sharded run: per-shard summary instead of per-op rows (the
            // flat launch stream spans every shard's plan).
            let mut table = TextTable::new(&[
                "shard",
                "device",
                "owned",
                "halo",
                "kernels (ms)",
                "exchange (ms)",
                "halo in (KiB)",
                "peak (KiB)",
            ]);
            for (i, s) in sharding.shards.iter().enumerate() {
                table.row_owned(vec![
                    i.to_string(),
                    format!("gpu{}", s.device),
                    s.owned_nodes.to_string(),
                    s.halo_nodes.to_string(),
                    format!("{:.4}", s.kernel_ms),
                    format!("{:.4}", s.exchange_ms),
                    format!("{:.1}", s.halo_in_bytes as f64 / 1024.0),
                    format!("{:.1}", s.peak_device_bytes as f64 / 1024.0),
                ]);
            }
            println!("{}", table.render());
            println!(
                "partition: {} x{} | edge cut {:.1}% ({}/{} edges) | halo {} KiB/inference | \
                 makespan {:.4} ms (slowest shard incl. exchanges)",
                sharding.strategy,
                sharding.shards.len(),
                sharding.edge_cut_fraction() * 100.0,
                sharding.cut_edges,
                sharding.total_edges,
                sharding.halo_bytes() / 1024,
                sharding.makespan_ms(),
            );
        } else {
            let mut table = TextTable::new(&[
                "#",
                "kernel",
                "op",
                "time (ms)",
                "instr",
                "L1 hit",
                "L2 hit",
                "comp util",
                "mem util",
            ]);
            // Per-op attribution: each profiled launch corresponds 1:1 to a
            // plan op, so the semantic op label rides along the Table II name.
            for (i, (k, op)) in profile.kernels.iter().zip(run.plan.ops()).enumerate() {
                table.row_owned(vec![
                    (i + 1).to_string(),
                    k.kernel.clone(),
                    op.label(),
                    format!("{:.4}", k.time_ms),
                    k.instr_mix.total().to_string(),
                    format!("{:.1}%", k.l1.hit_rate() * 100.0),
                    format!("{:.1}%", k.l2.hit_rate() * 100.0),
                    format!("{:.1}%", k.compute_utilization * 100.0),
                    format!("{:.1}%", k.memory_utilization * 100.0),
                ]);
            }
            println!("{}", table.render());
        }
        println!(
            "host overhead: {:.2} ms ({} launches, plan {}) | peak device bytes: {}",
            profile.host_overhead_ms,
            profile.kernels.len(),
            config.opt,
            profile.peak_device_bytes
        );
    }
    println!(
        "{} | backend={} | device {:.3} ms | end-to-end {:.3} ms | output checksum {:.6}",
        config.label(),
        profiler.backend(),
        profile.parallel_time_ms(),
        profile.total_time_ms(),
        run.output.sum()
    );
    if spans {
        println!(
            "\n{}",
            single_run_trace(&config, &run, &profile).render_tree()
        );
    }
    Ok(())
}

/// Builds the single-run span tree the `--spans` flag appends to the
/// report: one `request` root covering build (with the measured
/// `compile.*` phase children) then service (with one `kernel`/`exchange`
/// child per profiled launch, offset by the host launch overhead). Build
/// times are wall-measured; kernel times are the backend's modeled
/// milliseconds — the same mix a served request's trace carries.
fn single_run_trace(
    config: &RunConfig,
    run: &PipelineRun,
    profile: &PipelineProfile,
) -> gsuite_telemetry::Trace {
    let mut sink = SpanSink::new();
    let root = sink.reserve();
    let build_ms = run.compile_phases.total_ms();
    let service_ms = profile.total_time_ms();
    let build = sink.record("build", Some(root), 0, 0.0, build_ms, Vec::new());
    let mut t = 0.0;
    for (name, dur) in [
        ("compile.lower", run.compile_phases.lower_ms),
        ("compile.optimize", run.compile_phases.optimize_ms),
        ("compile.decorate", run.compile_phases.decorate_ms),
        ("compile.instantiate", run.compile_phases.instantiate_ms),
        ("compile.schedule", run.compile_phases.schedule_ms),
    ] {
        sink.record(name, Some(build), 0, t, dur, Vec::new());
        t += dur;
    }
    let service = sink.record(
        "service",
        Some(root),
        0,
        build_ms,
        service_ms,
        vec![Attr::f64("host_overhead_ms", profile.host_overhead_ms)],
    );
    let mut k_start = build_ms + profile.host_overhead_ms;
    for k in &profile.kernels {
        let name = if k.kernel == "exchange" {
            "exchange"
        } else {
            "kernel"
        };
        let mut attrs = vec![Attr::str("kernel", k.kernel.clone())];
        if k.kernel == "exchange" {
            attrs.push(Attr::u64("bytes", k.dram_bytes));
        }
        sink.record(name, Some(service), 0, k_start, k.time_ms, attrs);
        k_start += k.time_ms;
    }
    sink.record_with_id(
        root,
        "request",
        None,
        0,
        0.0,
        build_ms + service_ms,
        vec![Attr::str("key", config.label())],
    );
    sink.finish(ClockDomain::Wall)
}

/// Re-applies CLI overrides on top of file defaults. `RunConfig::from_args`
/// already validated `overrides`; we only need to know which keys the user
/// actually passed.
fn merge(mut base: RunConfig, overrides: RunConfig, raw_flags: &[String]) -> RunConfig {
    let passed = |key: &str| {
        raw_flags
            .iter()
            .any(|a| a == &format!("--{key}") || a.starts_with(&format!("--{key}=")))
    };
    if passed("model") {
        base.model = overrides.model;
    }
    if passed("comp") || passed("computational-model") {
        base.comp = overrides.comp;
    }
    if passed("dataset") {
        base.dataset = overrides.dataset;
    }
    if passed("scale") {
        base.scale = overrides.scale;
    }
    if passed("layers") {
        base.layers = overrides.layers;
    }
    if passed("hidden") {
        base.hidden = overrides.hidden;
    }
    if passed("framework") {
        base.framework = overrides.framework;
    }
    if passed("seed") {
        base.seed = overrides.seed;
    }
    if passed("functional") || passed("functional-math") {
        base.functional_math = overrides.functional_math;
    }
    if passed("opt") || passed("opt-level") {
        base.opt = overrides.opt;
    }
    if passed("shards") || passed("gpus") || passed("gpus-per-run") {
        base.gpus_per_run = overrides.gpus_per_run;
    }
    if passed("partitioner") {
        base.partitioner = overrides.partitioner;
    }
    if passed("batch_size") || passed("batch-size") {
        base.batch_size = overrides.batch_size;
    }
    if passed("fanout") {
        base.fanout = overrides.fanout;
    }
    if passed("seed_node") || passed("seed-node") {
        base.seed_node = overrides.seed_node;
    }
    base
}
